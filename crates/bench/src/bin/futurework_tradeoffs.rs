//! **Section IV (future work)** — quality/latency trade-offs via model
//! quantisation and approximate nearest-neighbor search.
//!
//! The paper closes by proposing "techniques to trade-off prediction
//! quality with inference latency, such as model quantisation \[36\] or
//! approximate nearest neighbor search \[37\]". This binary implements the
//! study: the decode stage (the dominant cost) is swapped between the
//! exhaustive f32 scan, an int8-quantised scan, and an IVF ANN index at
//! several probe depths; recall@21 against the exact ranking is measured
//! on a *real* embedding table alongside real wall-clock search time,
//! and the calibrated device models price each variant at cloud scale.
//!
//! Two catalog scales are measured: the 200k development scale and the
//! paper's C = 10^6 "SME" scale (d = 32 by the fourth-root heuristic),
//! where the trade-offs actually start to matter. At 10^6 the IVF index
//! is k-means-clustered **once** and re-probed via
//! [`IvfIndex::with_nprobe`], so the build cost is paid a single time.

use etude_bench::HarnessOptions;
use etude_metrics::report::{fmt_duration, Table};
use etude_models::retrieval::{ExactIndex, IvfIndex, MipsIndex, QuantizedIndex};
use etude_tensor::rng::Initializer;
use etude_tensor::Device;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// One measured configuration, for the shape checks.
struct Row {
    label: String,
    recall: f64,
    latency: Duration,
}

/// Measures every index variant at one catalog scale, appending rows to
/// the shared output table.
#[allow(clippy::too_many_arguments)]
fn run_scale(
    c: usize,
    d: usize,
    table_seed: u64,
    nlist: usize,
    nprobes: &[usize],
    queries: usize,
    table_out: &mut Table,
) -> Vec<Row> {
    println!("-- C = {c}, d = {d} --");
    let mut init = Initializer::new(table_seed);
    let table = init.embedding(c, d).into_vec().expect("dense");
    let queries: Vec<Vec<f32>> = {
        let mut rng = SmallRng::seed_from_u64(3);
        (0..queries)
            .map(|_| (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect()
    };

    let exact = ExactIndex::new(table.clone(), c, d);
    let quant = QuantizedIndex::from_f32(&table, c, d);
    // One k-means build, shared across every probe depth.
    let t_build = Instant::now();
    let ivf_base = IvfIndex::build(table.clone(), c, d, nlist, nprobes[0]);
    println!(
        "ivf build (nlist={nlist}): {}",
        fmt_duration(t_build.elapsed())
    );
    let ivfs: Vec<IvfIndex> = nprobes.iter().map(|&p| ivf_base.with_nprobe(p)).collect();

    let ground_truth: Vec<Vec<u32>> = queries.iter().map(|q| exact.search(q, 21).0).collect();
    let cpu = Device::cpu();
    let t4 = Device::t4();

    let mut rows: Vec<Row> = Vec::new();
    let mut measure = |index: &dyn MipsIndex, label: String| {
        let start = Instant::now();
        let mut recall_total = 0.0;
        for (q, truth) in queries.iter().zip(&ground_truth) {
            let (ids, _) = index.search(q, 21);
            recall_total += etude_models::retrieval::recall_at_k(truth, &ids);
        }
        let elapsed = start.elapsed() / queries.len() as u32;
        let recall = recall_total / queries.len() as f64;
        let spec = index.cost_spec();
        table_out.row([
            format!("{c}"),
            label.clone(),
            format!("{recall:.3}"),
            fmt_duration(elapsed),
            format!("{:.1}MB", index.memory_bytes() as f64 / 1e6),
            fmt_duration(cpu.profile().latency(&spec.at_batch(1))),
            fmt_duration(t4.profile().latency(&spec.at_batch(1))),
        ]);
        rows.push(Row {
            label,
            recall,
            latency: elapsed,
        });
    };

    measure(&exact, "exact-f32".into());
    measure(&quant, "int8".into());
    for ivf in &ivfs {
        measure(
            ivf,
            format!(
                "ivf nprobe={} ({:.0}% scanned)",
                ivf.nprobe(),
                100.0 * ivf.scan_fraction()
            ),
        );
    }
    rows
}

/// The shared shape checks: exact is the recall ceiling, int8 stays
/// close, IVF is monotone in nprobe and fast when aggressive.
fn shape_checks(c: usize, rows: &[Row]) {
    println!("shape checks (C = {c}):");
    let check = |name: &str, ok: bool| println!("  [{}] {name}", if ok { "ok" } else { "!!" });
    let exact = &rows[0];
    let quant = &rows[1];
    let ivf_first = &rows[2];
    let ivf_last = rows.last().unwrap();
    check(
        "exact search has recall 1.0",
        (exact.recall - 1.0).abs() < 1e-9,
    );
    check(
        "int8 quantisation keeps recall above 0.85",
        quant.recall > 0.85,
    );
    check(
        "IVF trades recall for speed monotonically in nprobe",
        rows[2..].windows(2).all(|w| w[0].recall <= w[1].recall),
    );
    check(
        &format!(
            "aggressive IVF ({}) is much faster than the exact scan",
            ivf_first.label
        ),
        ivf_first.latency.as_secs_f64() < 0.5 * exact.latency.as_secs_f64(),
    );
    check(
        &format!(
            "deep IVF ({}) approaches exact recall (>0.95)",
            ivf_last.label
        ),
        ivf_last.recall > 0.95,
    );
}

fn main() {
    let opts = HarnessOptions::from_args();
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!("== Future work: decode quality/latency trade-offs (quantisation, ANN) ==\n");

    let mut table_out = Table::new([
        "catalog",
        "index",
        "recall@21",
        "real_latency",
        "memory",
        "modelled_cpu",
        "modelled_t4",
    ]);

    // Development scale: 200k items at the heuristic dimension.
    let dev = run_scale(200_000, 22, 11, 512, &[8, 32, 96], 50, &mut table_out);
    shape_checks(200_000, &dev);

    // Paper SME scale: C = 10^6, d = ceil(10^6 ^ 0.25) = 32. A coarser
    // nlist keeps the one-time k-means build tractable; the probe sweep
    // reuses it. Skipped under --smoke (CI runs the 200k scale only).
    if !smoke {
        let sme = run_scale(1_000_000, 32, 13, 256, &[8, 32, 96], 25, &mut table_out);
        shape_checks(1_000_000, &sme);
    }

    opts.emit("futurework_tradeoffs", &table_out);
}
