//! **Table I** — Cost-efficient deployment options for SBR models in the
//! five e-Commerce scenarios.
//!
//! For every scenario and instance type, the harness searches the
//! smallest replica count meeting the paper's feasibility bar (p90 <= 50
//! ms at the target throughput) and prints the per-model checkmarks and
//! monthly costs, boldface... well, an asterisk marking the cheapest
//! option. The four models with RecBole implementation errors are
//! excluded, exactly as in the paper.

use etude_bench::HarnessOptions;
use etude_core::analysis::{cheapest_deployment, scan_deployments, FeasibilityVerdict};
use etude_core::Scenario;
use etude_metrics::report::{fmt_cost, Table};
use etude_models::ModelKind;
use std::collections::BTreeMap;

fn main() {
    let opts = HarnessOptions::from_args();
    println!("== Table I: cost-efficient deployment options (p90 <= 50ms) ==\n");

    let mut table = Table::new([
        "scenario",
        "catalog",
        "rps",
        "option",
        "amount",
        "cost/month",
        "core",
        "gru4rec",
        "narm",
        "sasrec",
        "sine",
        "stamp",
    ]);

    for scenario in Scenario::ALL {
        // (instance, replicas) -> per-model feasibility.
        let mut options: BTreeMap<(&str, usize), Vec<(ModelKind, bool)>> = BTreeMap::new();
        let mut per_model_best: Vec<(ModelKind, Option<FeasibilityVerdict>)> = Vec::new();
        for model in ModelKind::TABLE1 {
            let verdicts = scan_deployments(&scenario, model, opts.ramp(), true);
            for v in &verdicts {
                options
                    .entry((v.instance.name(), v.replicas))
                    .or_default()
                    .push((model, v.feasible));
            }
            per_model_best.push((model, cheapest_deployment(&verdicts).cloned()));
        }
        // The cheapest option that serves at least one model.
        let cheapest_cost = per_model_best
            .iter()
            .filter_map(|(_, v)| v.as_ref().map(|v| v.monthly_cost))
            .fold(f64::INFINITY, f64::min);

        // Render one row per (instance, replicas) option that at least one
        // model's search visited and where at least one model succeeded —
        // plus the "no model works" options on the largest count tried.
        let mut shown = Vec::new();
        for ((instance, replicas), feas) in &options {
            let any_feasible = feas.iter().any(|(_, ok)| *ok);
            if any_feasible {
                shown.push((*instance, *replicas, feas.clone()));
            }
        }
        if shown.is_empty() {
            table.row(vec![
                scenario.name.to_string(),
                scenario.catalog_size.to_string(),
                scenario.target_rps.to_string(),
                "(none feasible)".to_string(),
            ]);
            continue;
        }
        for (instance, replicas, feas) in shown {
            let cost = etude_cluster::InstanceType::parse(instance)
                .map(|i| i.monthly_cost() * replicas as f64)
                .unwrap_or(0.0);
            let marker = if (cost - cheapest_cost).abs() < 0.01 {
                "*"
            } else {
                ""
            };
            let mut row = vec![
                scenario.name.to_string(),
                scenario.catalog_size.to_string(),
                scenario.target_rps.to_string(),
                format!("{instance}{marker}"),
                replicas.to_string(),
                fmt_cost(cost),
            ];
            for model in ModelKind::TABLE1 {
                let mark = feas
                    .iter()
                    .find(|(m, _)| *m == model)
                    .map(|(_, ok)| if *ok { "yes" } else { "" })
                    .unwrap_or("");
                row.push(mark.to_string());
            }
            table.row(row);
        }
    }
    opts.emit("table1_cost", &table);

    println!("paper shape checks:");
    shape_checks(&opts);
}

fn shape_checks(opts: &HarnessOptions) {
    use etude_cluster::InstanceType;
    let check = |name: &str, ok: bool| {
        println!("  [{}] {name}", if ok { "ok" } else { "!!" });
    };

    // (i) Groceries runs on one $108 CPU machine.
    let groceries = scan_deployments(
        &Scenario::GROCERIES_SMALL,
        ModelKind::Core,
        opts.ramp(),
        true,
    );
    let best = cheapest_deployment(&groceries);
    check(
        "groceries (small) served by a single CPU machine for $108",
        matches!(best, Some(v) if v.instance == InstanceType::CpuE2 && v.replicas == 1),
    );

    // (ii) Fashion: one GPU-T4 is the cheapest option.
    let fashion = scan_deployments(&Scenario::FASHION, ModelKind::SasRec, opts.ramp(), true);
    let best = cheapest_deployment(&fashion);
    check(
        "fashion served cheapest by a single GPU-T4 ($268)",
        matches!(best, Some(v) if v.instance == InstanceType::GpuT4 && v.replicas == 1),
    );

    // (iii) e-Commerce: T4 scale-out beats A100s on cost.
    let ecommerce = scan_deployments(&Scenario::ECOMMERCE, ModelKind::Gru4Rec, opts.ramp(), true);
    let t4 = ecommerce
        .iter()
        .find(|v| v.instance == InstanceType::GpuT4 && v.feasible);
    let a100 = ecommerce
        .iter()
        .find(|v| v.instance == InstanceType::GpuA100 && v.feasible);
    check(
        "e-Commerce: several T4s are cheaper than fewer A100s",
        matches!((t4, a100), (Some(t), Some(a)) if t.replicas > a.replicas
            && t.monthly_cost < a.monthly_cost),
    );

    // (iv) Platform: only A100 deployments are feasible.
    let platform = scan_deployments(&Scenario::PLATFORM, ModelKind::Narm, opts.ramp(), true);
    let only_a100 = platform
        .iter()
        .all(|v| !v.feasible || v.instance == InstanceType::GpuA100);
    let a100_works = platform
        .iter()
        .any(|v| v.feasible && v.instance == InstanceType::GpuA100);
    check(
        "platform (20M items) requires GPU-A100s",
        only_a100 && a100_works,
    );
}
