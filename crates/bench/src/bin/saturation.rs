//! **saturation** — open-connection capacity of the two serving tiers.
//!
//! Production session-based recommenders hold tens of thousands of
//! mostly-idle keep-alive connections; the request rate is modest but
//! every client keeps its socket open. This bench measures what that
//! costs each serving architecture:
//!
//! * **blocking + fixed**: the thread-pool server whose workers scan
//!   their connection list once per pass (`O(open conns)` work per
//!   sweep, served or not) feeding the fixed-window batcher,
//! * **reactor + continuous**: the epoll event-loop server (idle
//!   connections cost one registration) feeding the continuous batcher.
//!
//! Each cell parks N open connections and drives a fixed low request
//! rate through them via the coordinated-omission-corrected
//! open-connection driver ([`etude_loadgen::openconn`]): latency is
//! measured from *intended* send time, so a server that stalls the
//! load generator cannot hide its tail. The headline is the largest N
//! each tier sustains with p99 within the SLO and zero errors — the
//! acceptance bar is reactor ≥ 5× blocking. A machine-readable summary
//! goes to `results/BENCH_saturation.json`. Run with `--smoke` for a
//! scaled-down grid (used by `scripts/verify.sh --reactor`).

use etude_core::ServingMode;
use etude_loadgen::openconn::{run_open_conn, OpenConnConfig};
use etude_models::{ModelConfig, ModelKind, SbrModel};
use etude_obs::Recorder;
use etude_serve::batching::BatchConfig;
use etude_serve::contbatch::ContinuousConfig;
use etude_serve::model_routes_continuous;
use etude_serve::reactor::{self, raise_nofile_limit, ReactorConfig};
use etude_serve::rustserver::{self, model_routes_batched, Handler, ServerConfig, ServerHandle};
use etude_tensor::Device;
use std::sync::Arc;
use std::time::Duration;

const CATALOG: usize = 1_000;
/// "Equal p99" bar for the headline: a cell is sustained when its
/// CO-corrected p99 stays inside this and nothing errored. 10ms is the
/// serving budget the paper's end-to-end scenarios leave the serving
/// tier after model time; the blocking server's per-sweep connection
/// scan eats through it as the pool grows, the reactor's does not.
const SLO_P99_US: u64 = 10_000;
/// Steady-state only: requests in the first half second warm caches and
/// absorb the connect burst, and are excluded from the histogram.
const WARMUP_SECS: f64 = 0.5;

/// Stable label used in the JSON artifact and logs.
fn mode_label(mode: ServingMode) -> &'static str {
    match mode {
        ServingMode::BlockingFixed => "blocking+fixed",
        ServingMode::ReactorContinuous => "reactor+continuous",
    }
}

struct Cell {
    mode: &'static str,
    connections: usize,
    rps: f64,
    duration: Duration,
    sent: u64,
    ok: u64,
    shed: u64,
    errors: u64,
    p50_us: u64,
    p99_us: u64,
    max_us: u64,
    /// Reactor busy / (busy + poll wait) over the run, scraped from the
    /// server's own `/stats` after the schedule drains. `None` for the
    /// blocking tier (no reactor, no telemetry block).
    loop_utilization: Option<f64>,
    /// p99 microseconds a parsed request waited in the dispatch queue
    /// before a worker picked it up — queueing delay the latency
    /// histogram can see but not attribute without this column.
    dispatch_wait_p99_us: Option<u64>,
}

impl Cell {
    /// Within SLO and clean: this tier carries this many open
    /// connections.
    fn sustained(&self) -> bool {
        self.errors == 0 && self.ok > 0 && self.p99_us <= SLO_P99_US
    }
}

fn model() -> Arc<dyn SbrModel> {
    let cfg = ModelConfig::new(CATALOG)
        .with_max_session_len(8)
        .with_seed(7);
    Arc::from(ModelKind::Core.build(&cfg))
}

fn start_server(mode: ServingMode) -> ServerHandle {
    match mode {
        ServingMode::BlockingFixed => {
            let handler: Handler =
                model_routes_batched(model(), Device::cpu(), false, BatchConfig::default());
            rustserver::start(ServerConfig::default(), handler).unwrap()
        }
        ServingMode::ReactorContinuous => {
            // One recorder serves both roles: the handler renders it at
            // /stats, and `start_observed` installs the reactor's
            // telemetry probe on it — so the loop-utilization and
            // dispatch-wait columns come from the same snapshot the
            // load driver scrapes.
            let recorder = Arc::new(Recorder::new());
            let handler = model_routes_continuous(
                model(),
                Device::cpu(),
                false,
                ContinuousConfig::default(),
                Arc::clone(&recorder),
                None,
            );
            reactor::start_observed(ReactorConfig::default(), handler, recorder).unwrap()
        }
    }
}

fn run_cell(mode: ServingMode, connections: usize, rps: f64, duration: Duration) -> Cell {
    let server = start_server(mode);
    let config = OpenConnConfig {
        connections,
        rps,
        duration: duration + Duration::from_secs_f64(WARMUP_SECS),
        body: "1,2,3".to_string(),
        warmup: (rps * WARMUP_SECS).round() as u64,
        ..OpenConnConfig::default()
    };
    let result = run_open_conn(server.addr(), &config).expect("open-conn run failed");
    server.shutdown();
    let label = mode_label(mode);
    let reactor_stats = result.server_stats.as_ref().and_then(|s| s.reactor.clone());
    let cell = Cell {
        mode: label,
        connections: result.connections,
        rps,
        duration,
        sent: result.sent,
        ok: result.ok,
        shed: result.shed,
        errors: result.errors,
        p50_us: result.corrected.p50(),
        p99_us: result.corrected.p99(),
        max_us: result.corrected.max(),
        loop_utilization: reactor_stats.as_ref().map(|r| r.utilization()),
        dispatch_wait_p99_us: reactor_stats
            .as_ref()
            .map(|r| r.dispatch_wait_histogram().p99()),
    };
    println!(
        "  {label:>18} @ {:>6} conns: {:>4} ok, {} shed, {} errors, \
         p50 {}us, p99 {}us{} [{}]",
        cell.connections,
        cell.ok,
        cell.shed,
        cell.errors,
        cell.p50_us,
        cell.p99_us,
        match (cell.loop_utilization, cell.dispatch_wait_p99_us) {
            (Some(u), Some(w)) => format!(", loop util {u:.3}, dispatch wait p99 {w}us"),
            _ => String::new(),
        },
        if cell.sustained() {
            "sustained"
        } else {
            "BLOWN"
        },
    );
    cell
}

fn cell_json(c: &Cell) -> String {
    let util = c
        .loop_utilization
        .map_or("null".to_string(), |u| format!("{u:.4}"));
    let wait = c
        .dispatch_wait_p99_us
        .map_or("null".to_string(), |w| w.to_string());
    format!(
        "    {{\"mode\": \"{}\", \"connections\": {}, \"rps\": {:.0}, \
         \"duration_s\": {:.1}, \"sent\": {}, \"ok\": {}, \"shed\": {}, \
         \"errors\": {}, \"co_corrected\": true, \"p50_us\": {}, \
         \"p99_us\": {}, \"max_us\": {}, \"loop_utilization\": {util}, \
         \"dispatch_wait_p99_us\": {wait}, \"sustained\": {}}}",
        c.mode,
        c.connections,
        c.rps,
        c.duration.as_secs_f64(),
        c.sent,
        c.ok,
        c.shed,
        c.errors,
        c.p50_us,
        c.p99_us,
        c.max_us,
        c.sustained(),
    )
}

fn write_summary(cells: &[Cell], smoke: bool) {
    let max_sustained = |mode: &str| -> usize {
        cells
            .iter()
            .filter(|c| c.mode == mode && c.sustained())
            .map(|c| c.connections)
            .max()
            .unwrap_or(0)
    };
    let blocking_max = max_sustained("blocking+fixed");
    let reactor_max = max_sustained("reactor+continuous");
    let ratio = if blocking_max > 0 {
        reactor_max as f64 / blocking_max as f64
    } else {
        f64::from(reactor_max as u32)
    };
    println!(
        "\nheadline: blocking+fixed sustains {blocking_max} open conns, \
         reactor+continuous sustains {reactor_max} ({ratio:.1}x) at p99 <= {SLO_P99_US}us"
    );

    let body: Vec<String> = cells.iter().map(cell_json).collect();
    let json = format!(
        "{{\n  \"bench\": \"saturation\",\n  \"mode\": \"{}\",\n  \
         \"poller\": \"{}\",\n  \"event_loops\": {},\n  \"simd_isa\": \"{}\",\n  \
         \"slo_p99_us\": {SLO_P99_US},\n  \"headline\": {{\
         \"blocking_fixed_max_conns\": {blocking_max}, \
         \"reactor_continuous_max_conns\": {reactor_max}, \
         \"ratio\": {ratio:.1}}},\n  \"cells\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        reactor::poller_backend_name(),
        ReactorConfig::default().event_loops,
        etude_tensor::simd::isa_name(),
        body.join(",\n"),
    );
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let path = dir.join("BENCH_saturation.json");
    match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &json)) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// A/B measurement of the always-on profiler's cost on the hot kernel
/// it tags: interleaved rounds of the fused score+top-k scan with
/// scope recording + sampling on vs off, compared by median round
/// ratio (the median cancels one-off scheduler noise that a mean of
/// wall times would not).
fn profiler_overhead_check() {
    use etude_tensor::topk::{score_topk_into, TopkScratch};

    const C: usize = 20_000;
    const D: usize = 64;
    const K: usize = 50;
    const REPS: usize = 50;
    const ROUNDS: usize = 7;

    let mut state = 0x2545_f491_4f6c_dd1du64;
    let table: Vec<f32> = (0..C * D)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u64 << 23) as f32 - 1.0
        })
        .collect();
    let query: Vec<f32> = table[..D].to_vec();
    let mut scratch = TopkScratch::default();
    let mut ids = Vec::new();
    let mut scores = Vec::new();

    // The ticker is part of the cost under test: it is what production
    // servers run. `set_enabled(false)` parks both it and the scopes.
    etude_obs::profile::start_ticker(etude_obs::profile::DEFAULT_TICK);
    let mut rep = |enabled: bool| {
        etude_obs::profile::set_enabled(enabled);
        let start = std::time::Instant::now();
        score_topk_into(&table, &query, C, K, &mut scratch, &mut ids, &mut scores);
        start.elapsed().as_secs_f64()
    };
    // Warm both paths (page the table in, intern the sites).
    for _ in 0..16 {
        rep(false);
        rep(true);
    }
    // Strictly interleaved per-rep samples: every "on" rep has an
    // adjacent "off" rep, so frequency drift and scheduler hiccups land
    // on both sides equally and the per-side medians stay comparable.
    let mut on = Vec::with_capacity(ROUNDS * REPS);
    let mut off = Vec::with_capacity(ROUNDS * REPS);
    for _ in 0..ROUNDS * REPS {
        off.push(rep(false));
        on.push(rep(true));
    }
    etude_obs::profile::set_enabled(true);
    let median = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    let ratio = median(&mut on) / median(&mut off);
    let overhead_pct = (ratio - 1.0) * 100.0;
    println!(
        "profiler overhead on score_topk: {overhead_pct:+.2}% \
         (median of {} interleaved reps per side)\n",
        ROUNDS * REPS
    );
    assert!(
        ratio <= 1.02,
        "always-on profiler costs {overhead_pct:.2}% on the hot kernel (budget 2%)"
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!(
        "== saturation: open-connection capacity, blocking+fixed vs \
         reactor+continuous ({} mode) ==\n",
        if smoke { "smoke" } else { "full" }
    );
    if smoke {
        profiler_overhead_check();
    }

    // Two fds per in-process connection, plus headroom for the servers
    // and harness; scale the grid down rather than fail on boxes where
    // the limit cannot be raised.
    let limit = raise_nofile_limit(120_000).unwrap_or(1024);
    let usable = (limit.saturating_sub(2_000) / 2) as usize;
    let grid: Vec<usize> = if smoke {
        vec![100, 1_000]
    } else {
        vec![1_000, 10_000, 50_000]
    };
    let grid: Vec<usize> = {
        let mut g: Vec<usize> = grid.into_iter().map(|n| n.min(usable)).collect();
        g.dedup();
        g
    };
    println!("fd limit {limit} -> grid {grid:?}\n");

    let (rps, duration) = if smoke {
        (150.0, Duration::from_secs(1))
    } else {
        (300.0, Duration::from_secs(3))
    };

    let mut cells = Vec::new();
    for &connections in &grid {
        for mode in [ServingMode::BlockingFixed, ServingMode::ReactorContinuous] {
            cells.push(run_cell(mode, connections, rps, duration));
        }
    }
    write_summary(&cells, smoke);
}
