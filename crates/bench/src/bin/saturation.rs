//! **saturation** — open-connection capacity of the two serving tiers.
//!
//! Production session-based recommenders hold tens of thousands of
//! mostly-idle keep-alive connections; the request rate is modest but
//! every client keeps its socket open. This bench measures what that
//! costs each serving architecture:
//!
//! * **blocking + fixed**: the thread-pool server whose workers scan
//!   their connection list once per pass (`O(open conns)` work per
//!   sweep, served or not) feeding the fixed-window batcher,
//! * **reactor + continuous**: the epoll event-loop server (idle
//!   connections cost one registration) feeding the continuous batcher.
//!
//! Each cell parks N open connections and drives a fixed low request
//! rate through them via the coordinated-omission-corrected
//! open-connection driver ([`etude_loadgen::openconn`]): latency is
//! measured from *intended* send time, so a server that stalls the
//! load generator cannot hide its tail. The headline is the largest N
//! each tier sustains with p99 within the SLO and zero errors — the
//! acceptance bar is reactor ≥ 5× blocking. A machine-readable summary
//! goes to `results/BENCH_saturation.json`. Run with `--smoke` for a
//! scaled-down grid (used by `scripts/verify.sh --reactor`).

use etude_core::ServingMode;
use etude_loadgen::openconn::{run_open_conn, OpenConnConfig};
use etude_models::{ModelConfig, ModelKind, SbrModel};
use etude_obs::Recorder;
use etude_serve::batching::BatchConfig;
use etude_serve::contbatch::ContinuousConfig;
use etude_serve::model_routes_continuous;
use etude_serve::reactor::{self, raise_nofile_limit, ReactorConfig};
use etude_serve::rustserver::{self, model_routes_batched, Handler, ServerConfig, ServerHandle};
use etude_tensor::Device;
use std::sync::Arc;
use std::time::Duration;

const CATALOG: usize = 1_000;
/// "Equal p99" bar for the headline: a cell is sustained when its
/// CO-corrected p99 stays inside this and nothing errored. 10ms is the
/// serving budget the paper's end-to-end scenarios leave the serving
/// tier after model time; the blocking server's per-sweep connection
/// scan eats through it as the pool grows, the reactor's does not.
const SLO_P99_US: u64 = 10_000;
/// Steady-state only: requests in the first half second warm caches and
/// absorb the connect burst, and are excluded from the histogram.
const WARMUP_SECS: f64 = 0.5;

/// Stable label used in the JSON artifact and logs.
fn mode_label(mode: ServingMode) -> &'static str {
    match mode {
        ServingMode::BlockingFixed => "blocking+fixed",
        ServingMode::ReactorContinuous => "reactor+continuous",
    }
}

struct Cell {
    mode: &'static str,
    connections: usize,
    rps: f64,
    duration: Duration,
    sent: u64,
    ok: u64,
    shed: u64,
    errors: u64,
    p50_us: u64,
    p99_us: u64,
    max_us: u64,
}

impl Cell {
    /// Within SLO and clean: this tier carries this many open
    /// connections.
    fn sustained(&self) -> bool {
        self.errors == 0 && self.ok > 0 && self.p99_us <= SLO_P99_US
    }
}

fn model() -> Arc<dyn SbrModel> {
    let cfg = ModelConfig::new(CATALOG)
        .with_max_session_len(8)
        .with_seed(7);
    Arc::from(ModelKind::Core.build(&cfg))
}

fn start_server(mode: ServingMode) -> ServerHandle {
    match mode {
        ServingMode::BlockingFixed => {
            let handler: Handler =
                model_routes_batched(model(), Device::cpu(), false, BatchConfig::default());
            rustserver::start(ServerConfig::default(), handler).unwrap()
        }
        ServingMode::ReactorContinuous => {
            let handler = model_routes_continuous(
                model(),
                Device::cpu(),
                false,
                ContinuousConfig::default(),
                Arc::new(Recorder::new()),
                None,
            );
            reactor::start(ReactorConfig::default(), handler).unwrap()
        }
    }
}

fn run_cell(mode: ServingMode, connections: usize, rps: f64, duration: Duration) -> Cell {
    let server = start_server(mode);
    let config = OpenConnConfig {
        connections,
        rps,
        duration: duration + Duration::from_secs_f64(WARMUP_SECS),
        body: "1,2,3".to_string(),
        warmup: (rps * WARMUP_SECS).round() as u64,
        ..OpenConnConfig::default()
    };
    let result = run_open_conn(server.addr(), &config).expect("open-conn run failed");
    server.shutdown();
    let label = mode_label(mode);
    let cell = Cell {
        mode: label,
        connections: result.connections,
        rps,
        duration,
        sent: result.sent,
        ok: result.ok,
        shed: result.shed,
        errors: result.errors,
        p50_us: result.corrected.p50(),
        p99_us: result.corrected.p99(),
        max_us: result.corrected.max(),
    };
    println!(
        "  {label:>18} @ {:>6} conns: {:>4} ok, {} shed, {} errors, \
         p50 {}us, p99 {}us [{}]",
        cell.connections,
        cell.ok,
        cell.shed,
        cell.errors,
        cell.p50_us,
        cell.p99_us,
        if cell.sustained() {
            "sustained"
        } else {
            "BLOWN"
        },
    );
    cell
}

fn cell_json(c: &Cell) -> String {
    format!(
        "    {{\"mode\": \"{}\", \"connections\": {}, \"rps\": {:.0}, \
         \"duration_s\": {:.1}, \"sent\": {}, \"ok\": {}, \"shed\": {}, \
         \"errors\": {}, \"co_corrected\": true, \"p50_us\": {}, \
         \"p99_us\": {}, \"max_us\": {}, \"sustained\": {}}}",
        c.mode,
        c.connections,
        c.rps,
        c.duration.as_secs_f64(),
        c.sent,
        c.ok,
        c.shed,
        c.errors,
        c.p50_us,
        c.p99_us,
        c.max_us,
        c.sustained(),
    )
}

fn write_summary(cells: &[Cell], smoke: bool) {
    let max_sustained = |mode: &str| -> usize {
        cells
            .iter()
            .filter(|c| c.mode == mode && c.sustained())
            .map(|c| c.connections)
            .max()
            .unwrap_or(0)
    };
    let blocking_max = max_sustained("blocking+fixed");
    let reactor_max = max_sustained("reactor+continuous");
    let ratio = if blocking_max > 0 {
        reactor_max as f64 / blocking_max as f64
    } else {
        f64::from(reactor_max as u32)
    };
    println!(
        "\nheadline: blocking+fixed sustains {blocking_max} open conns, \
         reactor+continuous sustains {reactor_max} ({ratio:.1}x) at p99 <= {SLO_P99_US}us"
    );

    let body: Vec<String> = cells.iter().map(cell_json).collect();
    let json = format!(
        "{{\n  \"bench\": \"saturation\",\n  \"mode\": \"{}\",\n  \
         \"slo_p99_us\": {SLO_P99_US},\n  \"headline\": {{\
         \"blocking_fixed_max_conns\": {blocking_max}, \
         \"reactor_continuous_max_conns\": {reactor_max}, \
         \"ratio\": {ratio:.1}}},\n  \"cells\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        body.join(",\n"),
    );
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let path = dir.join("BENCH_saturation.json");
    match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &json)) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!(
        "== saturation: open-connection capacity, blocking+fixed vs \
         reactor+continuous ({} mode) ==\n",
        if smoke { "smoke" } else { "full" }
    );

    // Two fds per in-process connection, plus headroom for the servers
    // and harness; scale the grid down rather than fail on boxes where
    // the limit cannot be raised.
    let limit = raise_nofile_limit(120_000).unwrap_or(1024);
    let usable = (limit.saturating_sub(2_000) / 2) as usize;
    let grid: Vec<usize> = if smoke {
        vec![100, 1_000]
    } else {
        vec![1_000, 10_000, 50_000]
    };
    let grid: Vec<usize> = {
        let mut g: Vec<usize> = grid.into_iter().map(|n| n.min(usable)).collect();
        g.dedup();
        g
    };
    println!("fd limit {limit} -> grid {grid:?}\n");

    let (rps, duration) = if smoke {
        (150.0, Duration::from_secs(1))
    } else {
        (300.0, Duration::from_secs(3))
    };

    let mut cells = Vec::new();
    for &connections in &grid {
        for mode in [ServingMode::BlockingFixed, ServingMode::ReactorContinuous] {
            cells.push(run_cell(mode, connections, rps, duration));
        }
    }
    write_summary(&cells, smoke);
}
