//! **overload_brownout** — the brownout-ladder sweep under a flash
//! crowd (DESIGN.md §16).
//!
//! One seeded flash-crowd schedule (peak ≈ 5× the pinned exact-rung
//! capacity, 30/50/20 shed-first/normal/critical) is replayed against
//! the overload-controlled retrieval tier three times:
//!
//! * **off** — no admission limiter, ladder disabled: the continuous
//!   batcher's queue and deadline checks are the only defense,
//! * **admission** — the AIMD limiter alone: concurrency is clamped
//!   and shed-first traffic refused with 429s, but every admitted
//!   request pays the exact-rung price,
//! * **full** — limiter plus the brownout ladder: burned budgets step
//!   requests down to the int8, reduced-k, and popularity rungs.
//!
//! Each cell reports per-class goodput (200 within the deadline
//! budget), the refusal split, brownout counts from the server's own
//! recorder, and client-observed latency quantiles of 200s. The
//! headline is critical-class goodput per rung of the sweep. A
//! machine-readable summary goes to `results/BENCH_overload.json`;
//! `--smoke` shortens the horizon (used by `scripts/verify.sh
//! --overload`).

use etude_control::{AdmissionConfig, Criticality};
use etude_metrics::hdr::Histogram;
use etude_obs::Recorder;
use etude_serve::http::Request;
use etude_serve::reactor::{self, ReactorConfig};
use etude_serve::{
    overload_routes_with_state, ContinuousConfig, HttpClient, LadderConfig, OverloadConfig,
};
use etude_workload::FlashCrowdSpec;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const C: usize = 256;
const D: usize = 8;
const K: usize = 21;
const QUERY_SEED: u64 = 5;
/// Tight enough that the AIMD equilibrium queue wait (limit · floor /
/// slots ≈ 50ms) is a *meaningful* fraction of the budget — the burn
/// thresholds must be reachable or the ladder cell degenerates into
/// the admission-only cell — and tight enough that the uncontrolled
/// cell's backlog (queue waits past 130ms at this crowd) reliably blows
/// it, so the off cell shows the cliff the ladder exists to remove.
const BUDGET: Duration = Duration::from_millis(100);
const FLOOR: Duration = Duration::from_millis(4);
const SLOTS: usize = 2;
const DRIVER_THREADS: usize = 64;
const DISPATCH_THREADS: usize = 64;
const MAX_LIMIT: f64 = 32.0;
/// Exact-rung capacity the spike is measured against.
const CAPACITY_RPS: f64 = SLOTS as f64 / 0.004;

fn table() -> Vec<f32> {
    let mut state = 0x51ed_270b_u64;
    (0..C * D)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u64 << 23) as f32 - 1.0
        })
        .collect()
}

fn spec(horizon: Duration) -> FlashCrowdSpec {
    let mut s = FlashCrowdSpec::flash(C, CAPACITY_RPS, 5.0, horizon).with_seed(11);
    s.criticality_mix = [0.3, 0.5, 0.2];
    s.workload.max_session_len = 16;
    s
}

#[derive(Clone, Copy)]
enum Ladder {
    Off,
    AdmissionOnly,
    Full,
}

impl Ladder {
    fn label(self) -> &'static str {
        match self {
            Ladder::Off => "off",
            Ladder::AdmissionOnly => "admission",
            Ladder::Full => "full",
        }
    }
}

fn overload_config(ladder: Ladder) -> OverloadConfig {
    let admission = match ladder {
        Ladder::Off => None,
        // The latency target sits *above* the ladder's first burn
        // threshold (0.25 · 300ms = 75ms): the limiter tolerates
        // queueing deep enough that the ladder visibly engages, so the
        // full-ladder cell can show its cheaper rungs against the
        // admission-only cell.
        _ => Some(AdmissionConfig {
            max_limit: MAX_LIMIT,
            target: Duration::from_millis(120),
            ..AdmissionConfig::default()
        }),
    };
    OverloadConfig {
        batch: ContinuousConfig {
            slots: SLOTS,
            // Deep enough that, unclamped, the queue's drain time
            // (256 · 4ms / 2 = 512ms) overruns the 300ms budget — the
            // failure mode admission control exists to prevent.
            max_queue: 256,
            default_deadline: BUDGET,
        },
        k: K,
        admission,
        // Aggressive rung thresholds relative to the default policy:
        // the EWMA queue wait under the clamped limit hovers around
        // 0.1–0.3 of the budget, and the sweep is only informative if
        // the int8 and reduced-k rungs actually fire in that band.
        ladder: LadderConfig {
            enabled: matches!(ladder, Ladder::Full),
            quantized_at: 0.08,
            reduced_k_at: 0.2,
            fallback_at: 0.6,
            ..LadderConfig::default()
        },
        service_floor: FLOOR,
    }
}

struct Outcome {
    criticality: u8,
    status: u16,
    brownout: bool,
    latency: Duration,
}

/// Replays the schedule from `DRIVER_THREADS` keep-alive connections,
/// honouring each request's send offset.
fn drive(
    addr: std::net::SocketAddr,
    schedule: &[etude_workload::ScheduledRequest],
) -> Vec<Outcome> {
    let outcomes = Mutex::new(Vec::with_capacity(schedule.len()));
    let t0 = Instant::now() + Duration::from_millis(50);
    std::thread::scope(|scope| {
        for tid in 0..DRIVER_THREADS {
            let outcomes = &outcomes;
            let slice: Vec<_> = schedule.iter().skip(tid).step_by(DRIVER_THREADS).collect();
            scope.spawn(move || {
                let mut client = HttpClient::connect(addr).expect("connect");
                let mut local = Vec::with_capacity(slice.len());
                for r in slice {
                    let due = t0 + r.at;
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    let class = Criticality::ALL[r.criticality as usize];
                    let req = Request::post("/predictions", r.body())
                        .with_header("x-deadline-ms", BUDGET.as_millis().to_string())
                        .with_header(Criticality::HEADER, class.name());
                    let sent = Instant::now();
                    let resp = client.request(&req).expect("keep-alive request");
                    let brownout = resp
                        .headers
                        .get("x-brownout-level")
                        .is_some_and(|v| v.trim() != "0")
                        || resp.headers.contains_key("x-degraded");
                    local.push(Outcome {
                        criticality: r.criticality,
                        status: resp.status,
                        brownout,
                        latency: sent.elapsed(),
                    });
                }
                outcomes.lock().unwrap().extend(local);
            });
        }
    });
    outcomes.into_inner().unwrap()
}

struct Cell {
    ladder: &'static str,
    sent: usize,
    ok: u64,
    brownout_200s: u64,
    refused_429: u64,
    shed_503: u64,
    errors: u64,
    class_sent: [u64; 3],
    class_good: [u64; 3],
    shed_first_refusals: u64,
    total_refusals: u64,
    p50_us: u64,
    p99_us: u64,
    server_brownout: [u64; 3],
    admission_limit: Option<f64>,
    queue_max_us: u64,
}

fn run_cell(ladder: Ladder, schedule: &[etude_workload::ScheduledRequest]) -> Cell {
    let recorder = Arc::new(Recorder::new());
    let (handler, state) = overload_routes_with_state(
        table(),
        C,
        D,
        QUERY_SEED,
        overload_config(ladder),
        Arc::clone(&recorder),
    );
    let server = reactor::start(
        ReactorConfig {
            dispatch_threads: DISPATCH_THREADS,
            ..ReactorConfig::default()
        },
        handler,
    )
    .unwrap();
    let outcomes = drive(server.addr(), schedule);
    let snap = recorder.snapshot();
    let admission_limit = state.admission().map(|a| a.limit_milli() as f64 / 1_000.0);
    server.shutdown();

    let mut cell = Cell {
        ladder: ladder.label(),
        sent: outcomes.len(),
        ok: 0,
        brownout_200s: 0,
        refused_429: 0,
        shed_503: 0,
        errors: 0,
        class_sent: [0; 3],
        class_good: [0; 3],
        shed_first_refusals: 0,
        total_refusals: 0,
        p50_us: 0,
        p99_us: 0,
        server_brownout: snap.brownout,
        admission_limit,
        queue_max_us: snap.stage("queue").map_or(0, |s| s.max_us),
    };
    let mut hist = Histogram::new();
    for o in &outcomes {
        cell.class_sent[o.criticality as usize] += 1;
        match o.status {
            200 => {
                cell.ok += 1;
                if o.brownout {
                    cell.brownout_200s += 1;
                }
                if o.latency <= BUDGET {
                    cell.class_good[o.criticality as usize] += 1;
                }
                hist.record_duration(o.latency);
            }
            429 => cell.refused_429 += 1,
            503 => cell.shed_503 += 1,
            _ => cell.errors += 1,
        }
        if o.status == 429 || o.status == 503 {
            cell.total_refusals += 1;
            if o.criticality == 0 {
                cell.shed_first_refusals += 1;
            }
        }
    }
    cell.p50_us = hist.p50();
    cell.p99_us = hist.p99();
    println!(
        "  {:>9}: {} sent, {} ok ({} browned out), {} x 429, {} x 503, \
         critical goodput {}/{}, p99 {}us, queue max {}us, limit {:?}",
        cell.ladder,
        cell.sent,
        cell.ok,
        cell.brownout_200s,
        cell.refused_429,
        cell.shed_503,
        cell.class_good[2],
        cell.class_sent[2],
        cell.p99_us,
        cell.queue_max_us,
        cell.admission_limit,
    );
    cell
}

fn goodput_pct(cell: &Cell, class: usize) -> f64 {
    if cell.class_sent[class] == 0 {
        return 100.0;
    }
    100.0 * cell.class_good[class] as f64 / cell.class_sent[class] as f64
}

fn cell_json(c: &Cell) -> String {
    let limit = c
        .admission_limit
        .map_or("null".to_string(), |l| format!("{l:.3}"));
    format!(
        "    {{\"ladder\": \"{}\", \"sent\": {}, \"ok\": {}, \"brownout_200s\": {}, \
         \"refused_429\": {}, \"shed_503\": {}, \"errors\": {}, \
         \"class_sent\": [{}, {}, {}], \"goodput_within_slo\": [{}, {}, {}], \
         \"critical_goodput_pct\": {:.2}, \"shed_first_share_of_refusals\": {:.3}, \
         \"p50_us\": {}, \"p99_us\": {}, \
         \"server_brownout\": [{}, {}, {}], \"admission_limit\": {limit}, \
         \"queue_max_us\": {}}}",
        c.ladder,
        c.sent,
        c.ok,
        c.brownout_200s,
        c.refused_429,
        c.shed_503,
        c.errors,
        c.class_sent[0],
        c.class_sent[1],
        c.class_sent[2],
        c.class_good[0],
        c.class_good[1],
        c.class_good[2],
        goodput_pct(c, 2),
        if c.total_refusals == 0 {
            1.0
        } else {
            c.shed_first_refusals as f64 / c.total_refusals as f64
        },
        c.p50_us,
        c.p99_us,
        c.server_brownout[0],
        c.server_brownout[1],
        c.server_brownout[2],
        c.queue_max_us,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let horizon = if smoke {
        Duration::from_millis(1_200)
    } else {
        Duration::from_secs(4)
    };
    let schedule = spec(horizon).schedule();
    println!(
        "overload_brownout ({}): {} requests over {:.1}s, peak ~{:.0} req/s vs {:.0} req/s capacity",
        if smoke { "smoke" } else { "full" },
        schedule.len(),
        horizon.as_secs_f64(),
        spec(horizon).peak_rate(),
        CAPACITY_RPS,
    );

    let cells: Vec<Cell> = [Ladder::Off, Ladder::AdmissionOnly, Ladder::Full]
        .into_iter()
        .map(|l| run_cell(l, &schedule))
        .collect();

    let headline: Vec<String> = cells
        .iter()
        .map(|c| format!("\"{}\": {:.2}", c.ladder, goodput_pct(c, 2)))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"overload_brownout\",\n  \"mode\": \"{}\",\n  \
         \"budget_ms\": {},\n  \"capacity_rps\": {:.0},\n  \"peak_multiplier\": 5.0,\n  \
         \"criticality_mix\": [0.3, 0.5, 0.2],\n  \
         \"headline\": {{\"critical_goodput_pct\": {{{}}}}},\n  \"cells\": [\n{}\n  ]\n}}\n",
        if smoke { "smoke" } else { "full" },
        BUDGET.as_millis(),
        CAPACITY_RPS,
        headline.join(", "),
        cells.iter().map(cell_json).collect::<Vec<_>>().join(",\n"),
    );
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/BENCH_overload.json", &json).expect("write results");
    println!("wrote results/BENCH_overload.json");
}
