//! # etude-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! ETUDE paper's evaluation (Section III). Each artifact has a dedicated
//! binary:
//!
//! | Paper artifact | Binary | What it reproduces |
//! |---|---|---|
//! | Figure 2 | `fig2_infra` | TorchServe vs the Rust server on empty responses at a 0→1,000 req/s ramp |
//! | Figure 3 | `fig3_micro` | Serial p90 prediction latency vs catalog size × device × eager/JIT |
//! | Figure 4 | `fig4_e2e`  | End-to-end latency/throughput per scenario × instance × model |
//! | Table I  | `table1_cost` | Cost-efficient deployment options per scenario |
//! | §III-A (validation) | `validation_synthetic` | Real-log replay vs fitted synthetic workload |
//! | §III-C (bug reports) | `ablation_quirks` | RecBole quirk on/off cost ablation |
//! | design ablation | `ablation_batching` | GPU request batching on/off |
//! | design ablation | `ablation_backpressure` | Backpressure-aware vs open-loop load generation |
//!
//! Criterion benches (`cargo bench -p etude-bench`) cover the >1M
//! clicks/second workload-generation claim, real kernel/model execution
//! and the JIT pass pipeline.
//!
//! Every binary accepts `--quick` (scaled-down ramps, fewer cells) and
//! `--full` (the paper's original 600-second ramps). Results print as
//! aligned tables and are also written as CSV under `results/`.

use etude_metrics::report::Table;
use std::path::PathBuf;

/// Harness-wide execution options parsed from the command line.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// Ramp duration in seconds for end-to-end runs.
    pub ramp_secs: u64,
    /// Directory CSV artifacts are written to.
    pub results_dir: PathBuf,
    /// Repetitions per configuration (paper: 3, keeping the median).
    pub repetitions: usize,
    /// Intra-op kernel threads requested with `--threads N` (`None`
    /// keeps `ETUDE_THREADS` / detected parallelism).
    pub threads: Option<usize>,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            ramp_secs: 60,
            results_dir: PathBuf::from("results"),
            repetitions: 3,
            threads: None,
        }
    }
}

impl HarnessOptions {
    /// Parses `--quick` / `--full` / `--ramp <secs>` / `--out <dir>` from
    /// the process arguments.
    pub fn from_args() -> HarnessOptions {
        let mut opts = HarnessOptions::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => {
                    opts.ramp_secs = 20;
                    opts.repetitions = 1;
                }
                "--full" => {
                    opts.ramp_secs = 600;
                    opts.repetitions = 3;
                }
                "--ramp" => {
                    i += 1;
                    opts.ramp_secs = args
                        .get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(opts.ramp_secs);
                }
                "--out" => {
                    i += 1;
                    if let Some(dir) = args.get(i) {
                        opts.results_dir = PathBuf::from(dir);
                    }
                }
                "--threads" => {
                    i += 1;
                    opts.threads = args.get(i).and_then(|v| v.parse().ok());
                }
                other => {
                    eprintln!("ignoring unknown argument: {other}");
                }
            }
            i += 1;
        }
        opts
    }

    /// The ramp duration as a [`std::time::Duration`].
    pub fn ramp(&self) -> std::time::Duration {
        std::time::Duration::from_secs(self.ramp_secs)
    }

    /// Applies `--threads` to the process-wide intra-op pool and returns
    /// the width real kernels will run at.
    pub fn apply_threads(&self) -> usize {
        match self.threads {
            Some(n) => etude_tensor::pool::configure_threads(n),
            None => etude_tensor::pool::current_threads(),
        }
    }

    /// Prints a table and writes its CSV artifact.
    pub fn emit(&self, name: &str, table: &Table) {
        println!("{}", table.render());
        let path = self.results_dir.join(format!("{name}.csv"));
        match table.write_csv(&path) {
            Ok(()) => println!("wrote {}\n", path.display()),
            Err(e) => eprintln!("could not write {}: {e}\n", path.display()),
        }
    }
}

/// Runs `f` `repetitions` times and returns the median result by `key`.
///
/// The paper executes "each configuration three times and ignore\[s\] the
/// runs with the lowest and highest latencies" — i.e. keeps the median.
pub fn median_of<T, F, K>(repetitions: usize, mut f: F, key: K) -> T
where
    F: FnMut(usize) -> T,
    K: Fn(&T) -> f64,
{
    let mut runs: Vec<T> = (0..repetitions.max(1)).map(&mut f).collect();
    runs.sort_by(|a, b| {
        key(a)
            .partial_cmp(&key(b))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mid = runs.len() / 2;
    runs.swap_remove(mid)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_three_keeps_the_middle_run() {
        let values = [30.0, 10.0, 20.0];
        let m = median_of(3, |i| values[i], |v| *v);
        assert_eq!(m, 20.0);
    }

    #[test]
    fn median_of_one_is_identity() {
        let m = median_of(1, |_| 7.0, |v| *v);
        assert_eq!(m, 7.0);
    }

    #[test]
    fn default_options_are_scaled_down() {
        let opts = HarnessOptions::default();
        assert_eq!(opts.ramp_secs, 60);
        assert_eq!(opts.repetitions, 3);
    }
}
