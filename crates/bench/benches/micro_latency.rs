//! Real (wall-clock) model-inference latency on this machine's CPU.
//!
//! Complements `fig3_micro` (which uses the calibrated device models):
//! these numbers are genuine end-to-end Rust execution of the model
//! forward passes at small catalog sizes, both eager and JIT-compiled.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use etude_models::{traits, ModelConfig, ModelKind};
use etude_tensor::Device;

fn bench_eager(c: &mut Criterion) {
    let mut group = c.benchmark_group("eager_forward");
    group.sample_size(20);
    for kind in [
        ModelKind::Core,
        ModelKind::Gru4Rec,
        ModelKind::Narm,
        ModelKind::SasRec,
        ModelKind::Stamp,
    ] {
        for &catalog in &[1_000usize, 10_000] {
            let cfg = ModelConfig::new(catalog)
                .with_max_session_len(20)
                .with_seed(1);
            let model = kind.build(&cfg);
            let session: Vec<u32> = (1..=8).collect();
            group.bench_with_input(
                BenchmarkId::new(kind.name(), catalog),
                &model,
                |b, model| {
                    b.iter(|| {
                        let rec = traits::recommend_eager(model.as_ref(), &Device::cpu(), &session)
                            .expect("forward");
                        criterion::black_box(rec.items[0])
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_compiled(c: &mut Criterion) {
    let mut group = c.benchmark_group("jit_forward");
    group.sample_size(20);
    for kind in [ModelKind::Core, ModelKind::SasRec, ModelKind::Stamp] {
        let cfg = ModelConfig::new(10_000)
            .with_max_session_len(20)
            .with_seed(1);
        let model = kind.build(&cfg);
        let compiled = traits::compile(model.as_ref(), Default::default()).expect("jit");
        let session: Vec<u32> = (1..=8).collect();
        group.bench_function(BenchmarkId::new(kind.name(), 10_000), |b| {
            b.iter(|| {
                let rec = traits::recommend_compiled(model.as_ref(), &compiled, &session)
                    .expect("forward");
                criterion::black_box(rec.items[0])
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eager, bench_compiled);
criterion_main!(benches);
