//! Ablation of the individual JIT passes (constant folding, weight
//! pre-transposition, elementwise fusion, DCE): compile time and the
//! real execution time of the resulting graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use etude_models::{traits, ModelConfig, ModelKind};
use etude_tensor::JitOptions;

fn pass_variants() -> Vec<(&'static str, JitOptions)> {
    vec![
        ("none", JitOptions::none()),
        (
            "const_fold",
            JitOptions {
                const_fold: true,
                ..JitOptions::none()
            },
        ),
        (
            "fuse",
            JitOptions {
                fuse: true,
                ..JitOptions::none()
            },
        ),
        (
            "pre_transpose",
            JitOptions {
                pre_transpose: true,
                ..JitOptions::none()
            },
        ),
        ("all", JitOptions::default()),
    ]
}

fn bench_compile_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("jit_compile");
    group.sample_size(10);
    let cfg = ModelConfig::new(10_000)
        .with_max_session_len(20)
        .with_seed(1);
    let model = ModelKind::SasRec.build(&cfg);
    for (name, options) in pass_variants() {
        group.bench_function(BenchmarkId::new("sasrec", name), |b| {
            b.iter(|| {
                let compiled = traits::compile(model.as_ref(), options).expect("compiles");
                criterion::black_box(compiled.cost().launches)
            });
        });
    }
    group.finish();
}

fn bench_execution_by_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("jit_exec_by_pass");
    group.sample_size(20);
    let cfg = ModelConfig::new(10_000)
        .with_max_session_len(20)
        .with_seed(1);
    let session: Vec<u32> = (1..=10).collect();
    for kind in [ModelKind::SasRec, ModelKind::Stamp] {
        let model = kind.build(&cfg);
        for (name, options) in pass_variants() {
            let compiled = traits::compile(model.as_ref(), options).expect("compiles");
            group.bench_function(BenchmarkId::new(kind.name(), name), |b| {
                b.iter(|| {
                    let rec = traits::recommend_compiled(model.as_ref(), &compiled, &session)
                        .expect("forward");
                    criterion::black_box(rec.items[0])
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_compile_time, bench_execution_by_pass);
criterion_main!(benches);
