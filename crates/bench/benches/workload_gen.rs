//! Criterion bench for Algorithm 1's throughput claim: "our
//! implementation is able to generate over one million clicks per second
//! on a single core for a catalog size C of ten million items."

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use etude_workload::{SyntheticWorkload, WorkloadConfig};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_generation");
    for &catalog in &[10_000usize, 1_000_000, 10_000_000] {
        let workload = SyntheticWorkload::new(WorkloadConfig::bolcom_like(catalog));
        let clicks_per_iter = 100_000u64;
        group.throughput(Throughput::Elements(clicks_per_iter));
        group.bench_with_input(
            BenchmarkId::new("clicks", catalog),
            &workload,
            |b, workload| {
                b.iter(|| {
                    // The streaming generator is what the load generator
                    // consumes online; count items to defeat dead-code
                    // elimination.
                    let total: u64 = workload
                        .clicks(7)
                        .take(clicks_per_iter as usize)
                        .map(|c| c.item as u64)
                        .sum();
                    criterion::black_box(total)
                });
            },
        );
    }
    group.finish();
}

fn bench_cdf_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_setup");
    group.sample_size(10);
    group.bench_function("build_cdf_10M_items", |b| {
        b.iter(|| {
            let w = SyntheticWorkload::new(WorkloadConfig::bolcom_like(10_000_000));
            criterion::black_box(w.item_cdf().len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_generation, bench_cdf_build);
criterion_main!(benches);
