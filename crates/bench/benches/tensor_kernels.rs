//! Raw kernel benchmarks: the MIPS decode (GEMV over the catalog) and the
//! top-k selection dominating SBR inference, plus softmax and GRU cells.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use etude_tensor::kernels;
use etude_tensor::topk::topk;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_vec(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn bench_decode_gemv(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode_gemv");
    group.sample_size(10);
    for &catalog in &[10_000usize, 100_000, 1_000_000] {
        let d = (catalog as f64).powf(0.25).ceil() as usize;
        let table = random_vec(catalog * d, 1);
        let query = random_vec(d, 2);
        let mut out = vec![0.0f32; catalog];
        group.throughput(Throughput::Bytes((catalog * d * 4) as u64));
        group.bench_with_input(BenchmarkId::new("catalog", catalog), &(), |b, _| {
            b.iter(|| {
                kernels::matmul_bt(&query, &table, &mut out, 1, d, catalog);
                criterion::black_box(out[0])
            });
        });
    }
    group.finish();
}

fn bench_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk");
    for &catalog in &[100_000usize, 1_000_000] {
        let scores = random_vec(catalog, 3);
        group.throughput(Throughput::Elements(catalog as u64));
        group.bench_with_input(BenchmarkId::new("k21", catalog), &scores, |b, scores| {
            b.iter(|| criterion::black_box(topk(scores, 21).0[0]));
        });
    }
    group.finish();
}

fn bench_softmax_and_gru(c: &mut Criterion) {
    let mut group = c.benchmark_group("small_kernels");
    let x = random_vec(50 * 64, 4);
    let mut out = vec![0.0f32; 50 * 64];
    group.bench_function("softmax_rows_50x64", |b| {
        b.iter(|| {
            kernels::softmax_rows(&x, &mut out, 64);
            criterion::black_box(out[0])
        });
    });

    let hidden = 64;
    let input = 64;
    let xv = random_vec(input, 5);
    let h = random_vec(hidden, 6);
    let w_ih = random_vec(3 * hidden * input, 7);
    let w_hh = random_vec(3 * hidden * hidden, 8);
    let b_ih = vec![0.0f32; 3 * hidden];
    let b_hh = vec![0.0f32; 3 * hidden];
    let mut hout = vec![0.0f32; hidden];
    group.bench_function("gru_cell_64", |b| {
        b.iter(|| {
            kernels::gru_cell(
                &xv, &h, &w_ih, &w_hh, &b_ih, &b_hh, &mut hout, hidden, input,
            );
            criterion::black_box(hout[0])
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_decode_gemv,
    bench_topk,
    bench_softmax_and_gru
);
criterion_main!(benches);
