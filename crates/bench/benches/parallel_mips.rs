//! **parallel_mips** — Sharded catalog-scan MIPS benchmark.
//!
//! Sweeps catalog size C ∈ {10^4, 10^5, 10^6} against shard counts
//! {1, 2, 4, 8} for the two halves of the maximum-inner-product search
//! that dominates SBR inference (Section III of the paper):
//!
//! * `score` — the GEMV scoring every catalog row against the session
//!   embedding (via the pool-backed [`etude_models::retrieval::ExactIndex`]),
//! * `topk` — the sharded bounded-heap selection
//!   ([`etude_tensor::topk::topk_sharded`]), bit-identical to serial.
//!
//! The shard axis is swept explicitly so the scaling shape is measurable
//! even on single-core CI machines (where extra shards must cost ~nothing:
//! they run inline). The worker-thread count is process-wide — set it with
//! `ETUDE_THREADS=N cargo bench -p etude-bench --bench parallel_mips`.
//!
//! Besides the usual console report, a machine-readable summary is
//! written to `results/BENCH_parallel_mips.json`.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use etude_models::retrieval::{ExactIndex, SearchScratch};
use etude_tensor::pool;
use etude_tensor::topk::{topk, topk_sharded};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const CATALOGS: [usize; 3] = [10_000, 100_000, 1_000_000];
const SHARDS: [usize; 4] = [1, 2, 4, 8];
const K: usize = 21;

fn random_vec(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// Embedding width heuristic used across the repo: d = ceil(C^(1/4)).
fn dim_for(catalog: usize) -> usize {
    (catalog as f64).powf(0.25).ceil() as usize
}

fn bench_sharded_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_mips/topk");
    group.sample_size(10);
    for &catalog in &CATALOGS {
        let scores = random_vec(catalog, 3);
        group.throughput(Throughput::Elements(catalog as u64));
        for &shards in &SHARDS {
            group.bench_with_input(
                BenchmarkId::new(format!("C{catalog}"), format!("shards{shards}")),
                &scores,
                |b, scores| {
                    b.iter(|| criterion::black_box(topk_sharded(scores, K, shards).0[0]));
                },
            );
        }
    }
    group.finish();
}

fn bench_full_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_mips/search");
    group.sample_size(10);
    for &catalog in &CATALOGS {
        let d = dim_for(catalog);
        let index = ExactIndex::new(random_vec(catalog * d, 1), catalog, d);
        let query = random_vec(d, 2);
        let mut scratch = SearchScratch::default();
        let mut ids = Vec::new();
        let mut vals = Vec::new();
        group.throughput(Throughput::Bytes((catalog * d * 4) as u64));
        group.bench_with_input(BenchmarkId::new("C", catalog), &(), |b, _| {
            b.iter(|| {
                index.search_into(&query, K, &mut scratch, &mut ids, &mut vals);
                criterion::black_box(ids[0])
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sharded_topk, bench_full_search);

/// Median wall-clock nanoseconds of `f` over `samples` timed runs.
fn median_ns<F: FnMut()>(samples: usize, mut f: F) -> u128 {
    f(); // warm-up
    let mut times: Vec<u128> = (0..samples.max(3))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Re-measures every sweep cell briefly and writes the JSON artifact the
/// results pipeline consumes.
fn write_summary() {
    let threads = pool::current_threads();
    let mut cells = String::new();
    for &catalog in &CATALOGS {
        let d = dim_for(catalog);
        let scores = random_vec(catalog, 3);
        let serial_ns = median_ns(5, || {
            criterion::black_box(topk(&scores, K).0[0]);
        });
        for &shards in &SHARDS {
            let ns = median_ns(5, || {
                criterion::black_box(topk_sharded(&scores, K, shards).0[0]);
            });
            if !cells.is_empty() {
                cells.push_str(",\n");
            }
            cells.push_str(&format!(
                "    {{\"kernel\": \"topk\", \"catalog\": {catalog}, \"k\": {K}, \
                 \"shards\": {shards}, \"median_ns\": {ns}, \"serial_ns\": {serial_ns}}}"
            ));
        }
        let index = ExactIndex::new(random_vec(catalog * d, 1), catalog, d);
        let query = random_vec(d, 2);
        let mut scratch = SearchScratch::default();
        let (mut ids, mut vals) = (Vec::new(), Vec::new());
        let ns = median_ns(5, || {
            index.search_into(&query, K, &mut scratch, &mut ids, &mut vals);
            criterion::black_box(ids[0]);
        });
        cells.push_str(&format!(
            ",\n    {{\"kernel\": \"exact_search\", \"catalog\": {catalog}, \"d\": {d}, \
             \"k\": {K}, \"shards\": \"auto\", \"median_ns\": {ns}}}"
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"parallel_mips\",\n  \"cpu_threads\": {threads},\n  \
         \"cells\": [\n{cells}\n  ]\n}}\n"
    );
    // Benches run with the package as cwd; the shared results directory
    // lives at the workspace root.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let path = dir.join("BENCH_parallel_mips.json");
    match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &json)) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
    }
}

fn main() {
    println!("intra-op kernel threads: {}", pool::current_threads());
    benches();
    write_summary();
}
