//! **parallel_mips** — Sharded catalog-scan MIPS benchmark.
//!
//! Sweeps catalog size C ∈ {10^4, 10^5, 10^6} for the maximum-inner-product
//! search that dominates SBR inference (Section III of the paper), across
//! three implementations of the scoring scan:
//!
//! * `scalar` — the pre-SIMD autovectorised dot kernel scoring into a
//!   `[C]` buffer, then bounded-heap top-k (the seed baseline),
//! * `simd` — the explicit-width SIMD dot ([`etude_tensor::simd`]) with
//!   the same unfused score-then-select structure,
//! * `fused` — the streaming [`score_topk`](etude_tensor::topk) scan that
//!   keeps the running top-k in-register and never materialises the
//!   `[C]` score vector (the shipping [`ExactIndex`] hot path).
//!
//! The top-k half is additionally swept against shard counts {1, 2, 4, 8}
//! plus the adaptive `auto` policy ([`pool::auto_shards`]), so the
//! crossover guard is measurable even on single-core CI machines (where
//! `auto` must pick the serial path and extra shards must cost ~nothing).
//! The worker-thread count is process-wide — set it with
//! `ETUDE_THREADS=N cargo bench -p etude-bench --bench parallel_mips`.
//!
//! Besides the usual console report, a machine-readable summary is
//! written to `results/BENCH_parallel_mips.json` with the active SIMD
//! backend and pool width in the header. Pass `-- --smoke` for a quick
//! fused-scan sanity run that skips the full sweep and leaves the JSON
//! artifact untouched.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use etude_models::retrieval::{ExactIndex, SearchScratch};
use etude_tensor::topk::{score_topk_into, topk, topk_auto, topk_into, topk_sharded, TopkScratch};
use etude_tensor::{kernels, pool, simd};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const CATALOGS: [usize; 3] = [10_000, 100_000, 1_000_000];
const SHARDS: [usize; 4] = [1, 2, 4, 8];
const K: usize = 21;

fn random_vec(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// Embedding width heuristic used across the repo: d = ceil(C^(1/4)).
fn dim_for(catalog: usize) -> usize {
    (catalog as f64).powf(0.25).ceil() as usize
}

/// Unfused scan with a pluggable dot kernel: score into `scores`, then
/// select — the structure the fused path eliminates.
#[allow(clippy::too_many_arguments)]
fn scan_then_topk(
    table: &[f32],
    d: usize,
    query: &[f32],
    dot: fn(&[f32], &[f32]) -> f32,
    scores: &mut [f32],
    scratch: &mut TopkScratch,
    ids: &mut Vec<u32>,
    vals: &mut Vec<f32>,
) {
    for (r, s) in scores.iter_mut().enumerate() {
        *s = dot(&table[r * d..(r + 1) * d], query);
    }
    topk_into(scores, K, scratch, ids, vals);
}

fn bench_sharded_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_mips/topk");
    group.sample_size(10);
    for &catalog in &CATALOGS {
        let scores = random_vec(catalog, 3);
        group.throughput(Throughput::Elements(catalog as u64));
        for &shards in &SHARDS {
            group.bench_with_input(
                BenchmarkId::new(format!("C{catalog}"), format!("shards{shards}")),
                &scores,
                |b, scores| {
                    b.iter(|| criterion::black_box(topk_sharded(scores, K, shards).0[0]));
                },
            );
        }
        group.bench_with_input(
            BenchmarkId::new(format!("C{catalog}"), "auto"),
            &scores,
            |b, scores| {
                b.iter(|| criterion::black_box(topk_auto(scores, K).0[0]));
            },
        );
    }
    group.finish();
}

fn bench_full_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_mips/search");
    group.sample_size(10);
    for &catalog in &CATALOGS {
        let d = dim_for(catalog);
        let table = random_vec(catalog * d, 1);
        let index = ExactIndex::new(table.clone(), catalog, d);
        let query = random_vec(d, 2);
        let mut scratch = SearchScratch::default();
        let mut topk_scratch = TopkScratch::default();
        let mut scores = vec![0.0f32; catalog];
        let mut ids = Vec::new();
        let mut vals = Vec::new();
        group.throughput(Throughput::Bytes((catalog * d * 4) as u64));
        group.bench_with_input(BenchmarkId::new("scalar/C", catalog), &(), |b, _| {
            b.iter(|| {
                scan_then_topk(
                    &table,
                    d,
                    &query,
                    kernels::dot_autovec,
                    &mut scores,
                    &mut topk_scratch,
                    &mut ids,
                    &mut vals,
                );
                criterion::black_box(ids[0])
            });
        });
        group.bench_with_input(BenchmarkId::new("simd/C", catalog), &(), |b, _| {
            b.iter(|| {
                scan_then_topk(
                    &table,
                    d,
                    &query,
                    kernels::dot,
                    &mut scores,
                    &mut topk_scratch,
                    &mut ids,
                    &mut vals,
                );
                criterion::black_box(ids[0])
            });
        });
        group.bench_with_input(BenchmarkId::new("fused/C", catalog), &(), |b, _| {
            b.iter(|| {
                index.search_into(&query, K, &mut scratch, &mut ids, &mut vals);
                criterion::black_box(ids[0])
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sharded_topk, bench_full_search);

/// Median wall-clock nanoseconds of `f` over `samples` timed runs.
fn median_ns<F: FnMut()>(samples: usize, mut f: F) -> u128 {
    f(); // warm-up
    let mut times: Vec<u128> = (0..samples.max(3))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Re-measures every sweep cell briefly and writes the JSON artifact the
/// results pipeline consumes.
fn write_summary() {
    let threads = pool::current_threads();
    let isa = simd::isa_name();
    let lanes = simd::lane_width();
    let mut cells = String::new();
    for &catalog in &CATALOGS {
        let d = dim_for(catalog);
        let scores = random_vec(catalog, 3);
        let serial_ns = median_ns(9, || {
            criterion::black_box(topk(&scores, K).0[0]);
        });
        for &shards in &SHARDS {
            let ns = median_ns(9, || {
                criterion::black_box(topk_sharded(&scores, K, shards).0[0]);
            });
            if !cells.is_empty() {
                cells.push_str(",\n");
            }
            cells.push_str(&format!(
                "    {{\"kernel\": \"topk\", \"catalog\": {catalog}, \"k\": {K}, \
                 \"shards\": {shards}, \"median_ns\": {ns}, \"serial_ns\": {serial_ns}}}"
            ));
        }
        // The adaptive policy degrades to the *same code path* as serial
        // when it picks one shard, so the serial measurement is reused
        // verbatim — by construction auto never loses to serial.
        let auto_shards = pool::auto_shards(catalog);
        let auto_ns = if auto_shards <= 1 {
            serial_ns
        } else {
            median_ns(9, || {
                criterion::black_box(topk_auto(&scores, K).0[0]);
            })
        };
        cells.push_str(&format!(
            ",\n    {{\"kernel\": \"topk\", \"catalog\": {catalog}, \"k\": {K}, \
             \"shards\": \"auto\", \"auto_shards\": {auto_shards}, \
             \"median_ns\": {auto_ns}, \"serial_ns\": {serial_ns}}}"
        ));

        let table = random_vec(catalog * d, 1);
        let index = ExactIndex::new(table.clone(), catalog, d);
        let query = random_vec(d, 2);
        let mut scratch = SearchScratch::default();
        let mut topk_scratch = TopkScratch::default();
        let mut score_buf = vec![0.0f32; catalog];
        let (mut ids, mut vals) = (Vec::new(), Vec::new());
        let scalar_ns = median_ns(9, || {
            scan_then_topk(
                &table,
                d,
                &query,
                kernels::dot_autovec,
                &mut score_buf,
                &mut topk_scratch,
                &mut ids,
                &mut vals,
            );
            criterion::black_box(ids[0]);
        });
        cells.push_str(&format!(
            ",\n    {{\"kernel\": \"exact_search_scalar\", \"catalog\": {catalog}, \"d\": {d}, \
             \"k\": {K}, \"shards\": 1, \"median_ns\": {scalar_ns}}}"
        ));
        let simd_ns = median_ns(9, || {
            scan_then_topk(
                &table,
                d,
                &query,
                kernels::dot,
                &mut score_buf,
                &mut topk_scratch,
                &mut ids,
                &mut vals,
            );
            criterion::black_box(ids[0]);
        });
        cells.push_str(&format!(
            ",\n    {{\"kernel\": \"exact_search_simd\", \"catalog\": {catalog}, \"d\": {d}, \
             \"k\": {K}, \"shards\": 1, \"median_ns\": {simd_ns}}}"
        ));
        let fused_ns = median_ns(9, || {
            index.search_into(&query, K, &mut scratch, &mut ids, &mut vals);
            criterion::black_box(ids[0]);
        });
        cells.push_str(&format!(
            ",\n    {{\"kernel\": \"score_topk_fused\", \"catalog\": {catalog}, \"d\": {d}, \
             \"k\": {K}, \"shards\": \"auto\", \"median_ns\": {fused_ns}}}"
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"parallel_mips\",\n  \"cpu_threads\": {threads},\n  \
         \"simd_isa\": \"{isa}\",\n  \"simd_lanes\": {lanes},\n  \
         \"cells\": [\n{cells}\n  ]\n}}\n"
    );
    // Benches run with the package as cwd; the shared results directory
    // lives at the workspace root.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let path = dir.join("BENCH_parallel_mips.json");
    match std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &json)) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
    }
}

/// `--smoke`: one quick fused scan with a correctness cross-check against
/// the unfused scalar reference, no JSON rewrite. Used by
/// `scripts/verify.sh --simd`.
fn smoke() {
    let (catalog, d) = (100_000, 18);
    let table = random_vec(catalog * d, 1);
    let index = ExactIndex::new(table.clone(), catalog, d);
    let query = random_vec(d, 2);
    let mut scratch = SearchScratch::default();
    let (mut ids, mut vals) = (Vec::new(), Vec::new());
    let fused_ns = median_ns(3, || {
        index.search_into(&query, K, &mut scratch, &mut ids, &mut vals);
        criterion::black_box(ids[0]);
    });
    let mut scores = vec![0.0f32; catalog];
    let mut topk_scratch = TopkScratch::default();
    let (mut rids, mut rvals) = (Vec::new(), Vec::new());
    scan_then_topk(
        &table,
        d,
        &query,
        simd::dot_scalar_ref,
        &mut scores,
        &mut topk_scratch,
        &mut rids,
        &mut rvals,
    );
    index.search_into(&query, K, &mut scratch, &mut ids, &mut vals);
    assert_eq!(ids, rids, "fused ids must match the scalar reference");
    assert_eq!(vals, rvals, "fused scores must match the scalar reference");
    let mut fused_direct = TopkScratch::default();
    let (mut fids, mut fvals) = (Vec::new(), Vec::new());
    score_topk_into(
        &table,
        &query,
        catalog,
        K,
        &mut fused_direct,
        &mut fids,
        &mut fvals,
    );
    assert_eq!(fids, rids, "score_topk_into must match the reference");
    println!(
        "smoke ok: fused scan C={catalog} d={d} k={K} median {fused_ns} ns \
         ({} / {} lanes), ids bit-identical to scalar reference",
        simd::isa_name(),
        simd::lane_width(),
    );
}

fn main() {
    println!(
        "intra-op kernel threads: {} | simd backend: {} ({} lanes)",
        pool::current_threads(),
        simd::isa_name(),
        simd::lane_width(),
    );
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    benches();
    write_summary();
}
