//! Real HTTP server throughput: requests/second through the actual
//! `std::net` server with keep-alive clients — the live counterpart of
//! the Figure 2 Rust-server result.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use etude_serve::client::HttpClient;
use etude_serve::http::{Method, Request, Response};
use etude_serve::rustserver::{start, Handler, ServerConfig};
use std::sync::Arc;

fn static_handler() -> Handler {
    Arc::new(|req: &Request| {
        if req.method == Method::Get && req.path == "/static" {
            Response::ok("ok")
        } else {
            Response::error(404, "nope")
        }
    })
}

fn bench_static_requests(c: &mut Criterion) {
    let server = start(ServerConfig { workers: 2 }, static_handler()).expect("server");
    let mut client = HttpClient::connect(server.addr()).expect("client");
    let req = Request::get("/static");

    let mut group = c.benchmark_group("real_http");
    group.throughput(Throughput::Elements(1));
    group.bench_function("static_roundtrip", |b| {
        b.iter(|| {
            let resp = client.request(&req).expect("response");
            criterion::black_box(resp.status)
        });
    });
    group.finish();
    drop(client);
    server.shutdown();
}

fn bench_model_requests(c: &mut Criterion) {
    use etude_models::{ModelConfig, ModelKind, SbrModel};
    use etude_serve::rustserver::model_routes;
    use etude_tensor::Device;

    let cfg = ModelConfig::new(10_000)
        .with_max_session_len(20)
        .with_seed(1);
    let model: Arc<dyn SbrModel> = Arc::from(ModelKind::Core.build(&cfg));
    let handler = model_routes(model, Device::cpu(), true);
    let server = start(ServerConfig { workers: 2 }, handler).expect("server");
    let mut client = HttpClient::connect(server.addr()).expect("client");
    let req = Request::post("/predictions", "1,2,3,4");

    let mut group = c.benchmark_group("real_http");
    group.sample_size(20);
    group.throughput(Throughput::Elements(1));
    group.bench_function("model_inference_roundtrip_c10k", |b| {
        b.iter(|| {
            let resp = client.request(&req).expect("response");
            criterion::black_box(resp.status)
        });
    });
    group.finish();
    drop(client);
    server.shutdown();
}

criterion_group!(benches, bench_static_requests, bench_model_requests);
criterion_main!(benches);
