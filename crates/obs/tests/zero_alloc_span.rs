//! Proves the overhead budget of the span hot path: after the first span
//! registers a thread's ring, recording performs **zero** heap
//! allocations. A counting global allocator makes the claim checkable
//! rather than aspirational (same technique as the models crate's
//! `zero_alloc` retrieval test).
//!
//! Allocations are counted **per thread** — a process-wide count would
//! also bill allocations made concurrently by the libtest harness thread
//! to the hot path and flake under load.

use etude_obs::{Recorder, Stage, WindowConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::time::Duration;

thread_local! {
    // const-initialised so reading it never allocates (a lazy initialiser
    // would recurse into the allocator).
    static THREAD_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn thread_allocations() -> u64 {
    THREAD_ALLOCATIONS.with(|c| c.get())
}

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // try_with: TLS may be unavailable during thread teardown.
        let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_span_recording_does_not_allocate() {
    // Sub-millisecond buckets so the timed loop crosses many window
    // rotations: the zero-allocation guarantee must hold through the
    // window path (in-place histogram resets), not just the rings.
    let recorder = Recorder::new().with_window_config(WindowConfig {
        bucket: Duration::from_millis(1),
        buckets: 4,
    });

    // Warm-up: the first span registers this thread's ring (one-time
    // allocation, off the steady-state path by design).
    for i in 0..3 {
        recorder.record(i, Stage::Parse, 100);
        let guard = recorder.span(i, Stage::Inference);
        guard.finish();
    }
    recorder.sync();

    let before = thread_allocations();
    for i in 0..10_000u64 {
        recorder.record(i, Stage::Parse, 120);
        recorder.record(i, Stage::Queue, 2_000);
        let g = recorder.span(i, Stage::Inference);
        g.finish();
        recorder.record(i, Stage::TopK, 800);
        recorder.record(i, Stage::Serialize, 60);
        recorder.record(i, Stage::Total, 3_500);
        if i % 64 == 0 {
            // Drain into the cumulative aggregate and the rolling
            // window, rotating buckets as wall time advances.
            recorder.sync();
        }
    }
    let after = thread_allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state span recording allocated {} times over 60,000 spans",
        after - before
    );

    // Everything recorded above must be visible to aggregation (the ring
    // lapped — that is fine and accounted, not silently lost).
    let snap = recorder.snapshot();
    let counted: u64 = snap.stages.iter().map(|s| s.count).sum();
    assert_eq!(counted + snap.dropped, 60_006, "60,000 + 6 warm-up spans");
}
