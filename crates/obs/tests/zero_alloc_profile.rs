//! Proves the overhead budget of the profiling hot paths: after warm-up
//! (site interning, thread-stack registration, the first fold), scope
//! enter/exit, ticker sampling and exemplar offers all perform **zero**
//! heap allocations — the same bar `zero_alloc_span` set for the span
//! rings in PR 2. A counting global allocator makes the claim checkable
//! rather than aspirational.
//!
//! Allocations are counted **per thread** — a process-wide count would
//! also bill allocations made concurrently by the libtest harness thread
//! to the hot path and flake under load.

use etude_obs::exemplar::ExemplarStore;
use etude_obs::{profile, profile_scope, Stage};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::time::Duration;

thread_local! {
    // const-initialised so reading it never allocates (a lazy initialiser
    // would recurse into the allocator).
    static THREAD_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn thread_allocations() -> u64 {
    THREAD_ALLOCATIONS.with(|c| c.get())
}

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // try_with: TLS may be unavailable during thread teardown.
        let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

const STAGES: [(Stage, u64); 6] = [
    (Stage::Parse, 10_000),
    (Stage::Queue, 50_000),
    (Stage::Inference, 400_000),
    (Stage::TopK, 90_000),
    (Stage::Serialize, 8_000),
    (Stage::Total, 560_000),
];

/// One steady-state iteration: a nested scope pair (the request path),
/// a periodic ticker fold, and an exemplar offer. Shared between the
/// warm-up and the measured loop so every `Site` static, the thread's
/// frame stack and the fold-table entries are interned *before*
/// counting starts — those are one-time costs, off the steady path by
/// design.
fn iteration(store: &ExemplarStore, i: u64) {
    let mark = store.begin();
    {
        profile_scope!("steady::score_topk");
        {
            profile_scope!("steady::dot");
        }
        if i.is_multiple_of(16) {
            // The ticker body: fold every registered thread's stack
            // into the preallocated table.
            profile::sample_once();
        }
    }
    // Monotonically slower requests keep winning slots, so offers take
    // the full displacement + leaf-delta copy path every time.
    store.offer("req-0123456789abcdef", &STAGES, 1_000 + i, &mark);
}

#[test]
fn steady_state_profiling_and_exemplar_offers_do_not_allocate() {
    let store = ExemplarStore::with_window(Duration::from_secs(10));

    // Warm-up: interns the scope sites, registers this thread's frame
    // stack, claims the fold-table entries and fills every exemplar
    // slot, so the measured loop exercises only steady-state paths.
    for i in 0..32u64 {
        iteration(&store, i);
    }
    profile::sample_once();

    let before = thread_allocations();
    for i in 32..10_032u64 {
        iteration(&store, i);
    }
    let after = thread_allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state profiling allocated {} times over 10,000 iterations",
        after - before
    );

    // The work above must actually have been observed, not elided.
    let stats = profile::stats();
    assert!(stats.samples > 0, "ticker samples were taken");
    assert!(!store.snapshot().is_empty(), "exemplars were retained");
    let folded = profile::render_folded("etude");
    assert!(folded.contains("steady::score_topk"));
}
