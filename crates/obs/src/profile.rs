//! Always-on cooperative sampling profiler.
//!
//! Wall-clock profilers answer *where a request's time went*; this
//! module answers *where the process's CPU attention went* — the
//! question the reactor rewrite raises (is the event loop busy polling,
//! copying, or running kernels?) and the one `perf` would answer if the
//! deployment allowed ptrace. It is cooperative: code declares what it
//! is doing with [`crate::profile_scope!`] guards that push a static tag
//! onto a per-thread frame stack, and a ticker thread samples every
//! registered stack into folded-stack counts — the input format of
//! Brendan Gregg's flamegraph tools, served at `/debug/profile`.
//!
//! The budget matches the span rings (PR 2): **zero steady-state heap
//! allocation** on every hot path — scope enter/exit, the sampler pass,
//! and the leaf-count snapshots the exemplar store takes per request.
//! One-time costs (site interning, thread registration, the fold table)
//! are paid at first use and proven off the steady state by the
//! counting-allocator test `tests/zero_alloc_profile.rs`.
//!
//! Concurrency model: each thread owns its frame stack and is the only
//! writer; the sampler reads through a seqlock (`seq` odd while a
//! push/pop is mutating the array). A torn read is detected and counted,
//! never mis-folded — acceptable for a statistical profiler, free for
//! the writers.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Deepest scope nesting a sample can attribute exactly. Deeper guards
/// still balance (depth keeps counting) but frames past this are not
/// recorded; the sample is counted as truncated.
pub const MAX_DEPTH: usize = 16;

/// Distinct scope tags the leaf self-count table tracks. Sites past this
/// still fold into stacks; only their per-leaf self counts collapse into
/// the overflow bucket.
pub const MAX_TAGS: usize = 64;

/// Distinct stacks the preallocated fold table holds. Samples whose
/// stack finds no slot are counted as dropped, not silently lost.
pub const MAX_STACKS: usize = 512;

/// Default sampling interval of the ticker thread.
pub const DEFAULT_TICK: Duration = Duration::from_millis(1);

/// One `profile_scope!` call site: a static tag interned into a dense id
/// on first use (0 = not yet registered; registered sites hold
/// `index + 1`).
pub struct Site {
    name: &'static str,
    id: AtomicU32,
}

impl Site {
    /// Declares a call site (used by [`crate::profile_scope!`]).
    pub const fn new(name: &'static str) -> Site {
        Site {
            name,
            id: AtomicU32::new(0),
        }
    }

    /// The site's interned id, registering on first call (the one
    /// allocation this site will ever cause).
    pub fn id(&'static self) -> u32 {
        let v = self.id.load(Ordering::Acquire);
        if v != 0 {
            return v;
        }
        let state = global();
        let mut names = state.names.lock();
        // Double-checked under the lock: another thread may have won.
        let v = self.id.load(Ordering::Acquire);
        if v != 0 {
            return v;
        }
        names.push(self.name);
        let id = names.len() as u32;
        self.id.store(id, Ordering::Release);
        id
    }
}

/// One thread's scope stack, sampled through a seqlock.
struct ThreadFrames {
    /// Seqlock: odd while a push/pop is mutating `frames`/`depth`.
    seq: AtomicU32,
    /// Logical depth; may exceed [`MAX_DEPTH`] (frames past it are not
    /// stored, only counted).
    depth: AtomicU32,
    frames: [AtomicU32; MAX_DEPTH],
}

impl ThreadFrames {
    fn new() -> ThreadFrames {
        ThreadFrames {
            seq: AtomicU32::new(0),
            depth: AtomicU32::new(0),
            frames: std::array::from_fn(|_| AtomicU32::new(0)),
        }
    }

    fn push(&self, id: u32) {
        let d = self.depth.load(Ordering::Relaxed);
        if (d as usize) < MAX_DEPTH {
            let s = self.seq.load(Ordering::Relaxed);
            self.seq.store(s.wrapping_add(1), Ordering::Release);
            self.frames[d as usize].store(id, Ordering::Relaxed);
            self.depth.store(d + 1, Ordering::Relaxed);
            self.seq.store(s.wrapping_add(2), Ordering::Release);
        } else {
            self.depth.store(d + 1, Ordering::Relaxed);
        }
    }

    fn pop(&self) {
        let d = self.depth.load(Ordering::Relaxed);
        debug_assert!(d > 0, "scope pop without a push");
        if d as usize <= MAX_DEPTH {
            let s = self.seq.load(Ordering::Relaxed);
            self.seq.store(s.wrapping_add(1), Ordering::Release);
            self.depth.store(d.saturating_sub(1), Ordering::Relaxed);
            self.seq.store(s.wrapping_add(2), Ordering::Release);
        } else {
            self.depth.store(d - 1, Ordering::Relaxed);
        }
    }

    /// Snapshots the stack into `out`. Returns the captured depth
    /// (clamped to [`MAX_DEPTH`], with the raw depth second), or `None`
    /// when four consecutive reads tore.
    fn sample(&self, out: &mut [u32; MAX_DEPTH]) -> Option<(usize, u32)> {
        for _ in 0..4 {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let raw = self.depth.load(Ordering::Relaxed);
            let depth = (raw as usize).min(MAX_DEPTH);
            for (slot, frame) in out.iter_mut().zip(&self.frames).take(depth) {
                *slot = frame.load(Ordering::Relaxed);
            }
            std::sync::atomic::fence(Ordering::Acquire);
            if self.seq.load(Ordering::Relaxed) == s1 {
                return Some((depth, raw));
            }
        }
        None
    }
}

/// One folded stack and how often it was sampled.
#[derive(Clone)]
struct FoldEntry {
    depth: u8,
    frames: [u32; MAX_DEPTH],
    count: u64,
}

/// The preallocated fold table the sampler writes into.
struct FoldTable {
    entries: Vec<FoldEntry>,
    used: usize,
    /// Per-site *self* (leaf) sample counts, indexed by `site id - 1`.
    leaf: [u64; MAX_TAGS],
    /// Thread samples taken (idle + folded + torn + dropped).
    samples: u64,
    /// Samples of an empty stack (thread registered but idle).
    idle: u64,
    /// Samples lost to seqlock tears.
    torn: u64,
    /// Samples whose stack was deeper than [`MAX_DEPTH`].
    truncated: u64,
    /// Samples whose stack found no fold-table slot.
    dropped: u64,
    /// Leaf samples of sites past [`MAX_TAGS`].
    leaf_overflow: u64,
}

impl FoldTable {
    fn new() -> FoldTable {
        FoldTable {
            entries: vec![
                FoldEntry {
                    depth: 0,
                    frames: [0; MAX_DEPTH],
                    count: 0,
                };
                MAX_STACKS
            ],
            used: 0,
            leaf: [0; MAX_TAGS],
            samples: 0,
            idle: 0,
            torn: 0,
            truncated: 0,
            dropped: 0,
            leaf_overflow: 0,
        }
    }

    fn fold(&mut self, stack: &[u32; MAX_DEPTH], depth: usize) {
        let leaf_id = stack[depth - 1];
        match (leaf_id as usize).checked_sub(1) {
            Some(i) if i < MAX_TAGS => self.leaf[i] += 1,
            _ => self.leaf_overflow += 1,
        }
        for entry in self.entries[..self.used].iter_mut() {
            if entry.depth as usize == depth && entry.frames[..depth] == stack[..depth] {
                entry.count += 1;
                return;
            }
        }
        if self.used < MAX_STACKS {
            let entry = &mut self.entries[self.used];
            entry.depth = depth as u8;
            entry.frames[..depth].copy_from_slice(&stack[..depth]);
            entry.count = 1;
            self.used += 1;
        } else {
            self.dropped += 1;
        }
    }

    fn reset(&mut self) {
        self.used = 0;
        self.leaf = [0; MAX_TAGS];
        self.samples = 0;
        self.idle = 0;
        self.torn = 0;
        self.truncated = 0;
        self.dropped = 0;
        self.leaf_overflow = 0;
    }
}

/// Process-wide profiler state (one profiler per process, like a signal
/// handler — the profiled resource is the process's threads).
struct ProfilerState {
    /// Interned site names; site id `n` is `names[n - 1]`.
    names: Mutex<Vec<&'static str>>,
    threads: Mutex<Vec<Arc<ThreadFrames>>>,
    folds: Mutex<FoldTable>,
    enabled: AtomicBool,
    ticker: AtomicBool,
}

fn global() -> &'static ProfilerState {
    static STATE: OnceLock<ProfilerState> = OnceLock::new();
    STATE.get_or_init(|| ProfilerState {
        names: Mutex::new(Vec::new()),
        threads: Mutex::new(Vec::new()),
        folds: Mutex::new(FoldTable::new()),
        enabled: AtomicBool::new(true),
        ticker: AtomicBool::new(false),
    })
}

thread_local! {
    static FRAMES: RefCell<Option<Arc<ThreadFrames>>> = const { RefCell::new(None) };
}

/// Runs `f` with this thread's frame stack, registering it on first use
/// (the thread's one-time allocation). `None` during thread teardown.
fn with_frames<R>(f: impl FnOnce(&ThreadFrames) -> R) -> Option<R> {
    FRAMES
        .try_with(|cell| {
            let mut slot = cell.borrow_mut();
            if slot.is_none() {
                let frames = Arc::new(ThreadFrames::new());
                let state = global();
                let mut threads = state.threads.lock();
                // Prune stacks of dead threads (we hold their last Arc).
                threads.retain(|t| Arc::strong_count(t) > 1);
                threads.push(Arc::clone(&frames));
                *slot = Some(frames);
            }
            f(slot.as_ref().expect("registered above"))
        })
        .ok()
}

/// RAII guard of one profiled scope; pops the frame on drop.
pub struct ScopeGuard {
    active: bool,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if self.active {
            with_frames(|frames| frames.pop());
        }
    }
}

/// Enters a profiled scope for `site`. Prefer [`crate::profile_scope!`],
/// which declares the static site in place.
pub fn enter(site: &'static Site) -> ScopeGuard {
    if !global().enabled.load(Ordering::Relaxed) {
        return ScopeGuard { active: false };
    }
    let id = site.id();
    let active = with_frames(|frames| frames.push(id)).is_some();
    ScopeGuard { active }
}

/// Declares a static profile site and holds a scope guard for the rest
/// of the enclosing block:
///
/// ```
/// fn hot_kernel() {
///     etude_obs::profile_scope!("tensor::score_topk");
///     // ... the scan ...
/// }
/// ```
#[macro_export]
macro_rules! profile_scope {
    ($name:expr) => {
        static __ETUDE_PROFILE_SITE: $crate::profile::Site = $crate::profile::Site::new($name);
        let _etude_profile_guard = $crate::profile::enter(&__ETUDE_PROFILE_SITE);
    };
}

/// Turns sampling and scope recording on or off (on by default). Used
/// by the saturation bench to A/B the profiler's own overhead.
pub fn set_enabled(on: bool) {
    global().enabled.store(on, Ordering::Relaxed);
}

/// Whether the profiler is currently recording.
pub fn enabled() -> bool {
    global().enabled.load(Ordering::Relaxed)
}

/// Takes one sampling pass over every registered thread stack, folding
/// into the global table. Allocation-free; the ticker calls this every
/// tick, and tests call it directly to drive the exact steady-state
/// path.
pub fn sample_once() {
    let state = global();
    let mut threads = state.threads.lock();
    threads.retain(|t| Arc::strong_count(t) > 1);
    let mut folds = state.folds.lock();
    let mut stack = [0u32; MAX_DEPTH];
    for thread in threads.iter() {
        folds.samples += 1;
        match thread.sample(&mut stack) {
            Some((0, _)) => folds.idle += 1,
            Some((depth, raw)) => {
                if raw as usize > MAX_DEPTH {
                    folds.truncated += 1;
                }
                folds.fold(&stack, depth);
            }
            None => folds.torn += 1,
        }
    }
}

/// Starts the background sampling ticker (idempotent; the first caller's
/// `tick` wins). Returns whether this call started it.
pub fn start_ticker(tick: Duration) -> bool {
    let state = global();
    if state.ticker.swap(true, Ordering::SeqCst) {
        return false;
    }
    std::thread::Builder::new()
        .name("etude-profile-ticker".into())
        .spawn(move || loop {
            if global().enabled.load(Ordering::Relaxed) {
                sample_once();
            }
            std::thread::sleep(tick);
        })
        .expect("spawn profiler ticker");
    true
}

/// Copies the per-site leaf (self) sample counts into `out`, indexed by
/// `site id - 1`. Allocation-free — the exemplar store brackets each
/// request with two of these to attribute profiler attention to slow
/// requests.
pub fn leaf_snapshot(out: &mut [u64; MAX_TAGS]) {
    *out = global().folds.lock().leaf;
}

/// Resolves the site name of leaf index `i` (i.e. site id `i + 1`).
pub fn leaf_name(i: usize) -> Option<&'static str> {
    global().names.lock().get(i).copied()
}

/// Sampler health counters, for tests and the `/debug/profile` footer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfileStats {
    /// Thread samples taken (over all registered threads and ticks).
    pub samples: u64,
    /// Samples that found an empty stack.
    pub idle: u64,
    /// Samples lost to seqlock tears.
    pub torn: u64,
    /// Samples of stacks deeper than [`MAX_DEPTH`].
    pub truncated: u64,
    /// Samples whose stack found no fold-table slot.
    pub dropped: u64,
    /// Interned sites.
    pub sites: usize,
    /// Live registered threads.
    pub threads: usize,
}

/// Current sampler health counters.
pub fn stats() -> ProfileStats {
    let state = global();
    let folds = state.folds.lock();
    ProfileStats {
        samples: folds.samples,
        idle: folds.idle,
        torn: folds.torn,
        truncated: folds.truncated,
        dropped: folds.dropped,
        sites: state.names.lock().len(),
        threads: state.threads.lock().len(),
    }
}

/// Clears accumulated fold counts (sites and thread registrations
/// survive). For tests and the bench's A/B overhead cells; the profiler
/// is otherwise cumulative since process start.
pub fn reset() {
    global().folds.lock().reset();
}

/// Renders the accumulated samples as flamegraph *folded stacks*: one
/// `root;tag;...;leaf count` line per distinct stack, sorted, with the
/// caller-supplied root tag (conventionally carrying the process role
/// and `simd::isa_name()`). Idle samples render under `root;(idle)` so
/// the flame width reflects real thread attention. Allocation happens
/// here freely — this is the scrape path, not the hot path.
pub fn render_folded(root: &str) -> String {
    let state = global();
    let names = state.names.lock();
    let folds = state.folds.lock();
    let name_of = |id: u32| -> &str {
        names
            .get((id as usize).saturating_sub(1))
            .copied()
            .unwrap_or("(unknown)")
    };
    let mut lines: Vec<String> = folds.entries[..folds.used]
        .iter()
        .map(|e| {
            let mut line = String::with_capacity(64);
            line.push_str(root);
            for &id in &e.frames[..e.depth as usize] {
                line.push(';');
                line.push_str(name_of(id));
            }
            line.push(' ');
            line.push_str(&e.count.to_string());
            line
        })
        .collect();
    if folds.idle > 0 {
        lines.push(format!("{root};(idle) {}", folds.idle));
    }
    lines.sort_unstable();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The profiler is process-global; tests share it. Each test uses
    // its own distinct tag names and asserts on those, never on totals,
    // and serialises its critical section on one lock so the
    // enabled-flag test cannot race another test's scope entry.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn scopes_fold_into_nested_stacks() {
        static OUTER: Site = Site::new("test::outer");
        static INNER: Site = Site::new("test::inner");
        let _lock = TEST_LOCK.lock();
        let _g = enter(&OUTER);
        {
            let _g2 = enter(&INNER);
            sample_once();
        }
        let folded = render_folded("unit");
        assert!(
            folded.contains("unit;test::outer;test::inner "),
            "folded output missing the nested stack:\n{folded}"
        );
    }

    #[test]
    fn leaf_counts_attribute_self_samples() {
        static LEAF: Site = Site::new("test::leaf_count");
        let _lock = TEST_LOCK.lock();
        let before = {
            let mut buf = [0u64; MAX_TAGS];
            leaf_snapshot(&mut buf);
            buf
        };
        let id = LEAF.id() as usize - 1;
        let _g = enter(&LEAF);
        sample_once();
        sample_once();
        let mut after = [0u64; MAX_TAGS];
        leaf_snapshot(&mut after);
        assert!(id < MAX_TAGS, "test site interned past the leaf table");
        // >= 2: the background ticker (if another test started it) may
        // have sampled this scope too.
        assert!(
            after[id] - before[id] >= 2,
            "both explicit samples must land on the leaf"
        );
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        static GATED: Site = Site::new("test::gated");
        let _lock = TEST_LOCK.lock();
        set_enabled(false);
        {
            let _g = enter(&GATED);
            sample_once();
        }
        set_enabled(true);
        let folded = render_folded("unit");
        assert!(
            !folded.contains("test::gated"),
            "disabled scope was sampled:\n{folded}"
        );
    }

    #[test]
    fn overdeep_stacks_balance_and_count_truncation() {
        static DEEP: Site = Site::new("test::deep");
        let _lock = TEST_LOCK.lock();
        let guards: Vec<ScopeGuard> = (0..MAX_DEPTH + 3).map(|_| enter(&DEEP)).collect();
        let before = stats().truncated;
        sample_once();
        assert!(stats().truncated > before, "deep stack not counted");
        drop(guards);
        // After unwinding, the same thread samples as idle or shallower
        // — no depth underflow, no stuck frames.
        sample_once();
        let folded = render_folded("unit");
        let deepest = folded
            .lines()
            .filter(|l| l.contains("test::deep"))
            .map(|l| l.matches("test::deep").count())
            .max()
            .unwrap_or(0);
        assert!(deepest <= MAX_DEPTH, "stack deeper than the clamp");
    }

    #[test]
    fn ticker_starts_once() {
        start_ticker(Duration::from_millis(5));
        assert!(!start_ticker(DEFAULT_TICK), "second start must be a no-op");
    }

    #[test]
    fn macro_declares_and_scopes() {
        fn tagged() {
            crate::profile_scope!("test::via_macro");
            sample_once();
        }
        let _lock = TEST_LOCK.lock();
        tagged();
        assert!(render_folded("unit").contains("test::via_macro"));
    }
}
