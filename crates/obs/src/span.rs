//! Stage identifiers and the POD span record stored in the rings.

/// A stage of the server-side request pipeline.
///
/// The order mirrors the life of a `/predictions` request through
/// `etude-serve`: the HTTP body is parsed, the session possibly waits in
/// the batcher queue, the model computes scores, top-k retrieval ranks
/// them, and the response is serialized. [`Stage::Total`] spans the whole
/// handler so per-request stage sums can be validated against the
/// server-observed total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Stage {
    /// HTTP body decoding and session validation.
    Parse = 0,
    /// Batcher queue + batch-formation wait (zero on the unbatched route):
    /// everything between submitting to the batcher and having this
    /// request's own compute done that is *not* its own compute.
    Queue = 1,
    /// Model forward pass (scores over the catalog), excluding top-k.
    Inference = 2,
    /// Top-k retrieval over the score vector.
    TopK = 3,
    /// Response body encoding and header assembly.
    Serialize = 4,
    /// Handler entry to response ready — the server-observed total.
    Total = 5,
    /// Time spent on the wire between client and server (both hops).
    /// Never recorded by a server's own pipeline — it exists for the
    /// distributed-trace view, where link delays (simulated or inferred
    /// from `client attempt − pod total`) become explicit hops.
    Network = 6,
}

impl Stage {
    /// All stages, pipeline order.
    pub const ALL: [Stage; 7] = [
        Stage::Parse,
        Stage::Queue,
        Stage::Inference,
        Stage::TopK,
        Stage::Serialize,
        Stage::Total,
        Stage::Network,
    ];

    /// The stages that tile [`Stage::Total`] (everything except `Total`).
    pub const COMPONENTS: [Stage; 5] = [
        Stage::Parse,
        Stage::Queue,
        Stage::Inference,
        Stage::TopK,
        Stage::Serialize,
    ];

    /// Stable lowercase label (used in `/metrics` and `/stats`).
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Queue => "queue",
            Stage::Inference => "inference",
            Stage::TopK => "topk",
            Stage::Serialize => "serialize",
            Stage::Total => "total",
            Stage::Network => "network",
        }
    }

    /// Parses a stage label.
    pub fn parse(name: &str) -> Option<Stage> {
        Stage::ALL.iter().copied().find(|s| s.name() == name)
    }

    /// Decodes the `repr(u8)` discriminant.
    pub fn from_u8(v: u8) -> Option<Stage> {
        Stage::ALL.get(v as usize).copied()
    }
}

/// One recorded span: a POD value, 24 bytes of payload.
///
/// Durations are stored in nanoseconds (a `u64` holds ~584 years) so that
/// sub-microsecond stages like parsing remain visible; aggregation
/// converts to microseconds for the HDR histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Request correlation id (FNV-1a hash of the `X-Request-Id` header).
    pub request_id: u64,
    /// Which pipeline stage this span measured.
    pub stage: Stage,
    /// Stage duration in nanoseconds.
    pub duration_nanos: u64,
}

impl SpanRecord {
    /// Stage duration in whole microseconds (for histogram recording).
    pub fn duration_micros(&self) -> u64 {
        self.duration_nanos / 1_000
    }
}

/// Hashes an `X-Request-Id` header value to the `u64` correlation id used
/// in span records (FNV-1a; stable, allocation-free, good enough to make
/// collisions between concurrent in-flight requests negligible).
pub fn request_id_hash(id: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in id.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_roundtrip() {
        for stage in Stage::ALL {
            assert_eq!(Stage::parse(stage.name()), Some(stage));
            assert_eq!(Stage::from_u8(stage as u8), Some(stage));
        }
        assert_eq!(Stage::parse("warp"), None);
        assert_eq!(Stage::from_u8(250), None);
    }

    #[test]
    fn components_exclude_total_and_network() {
        assert!(!Stage::COMPONENTS.contains(&Stage::Total));
        assert!(!Stage::COMPONENTS.contains(&Stage::Network));
        assert_eq!(Stage::COMPONENTS.len() + 2, Stage::ALL.len());
    }

    #[test]
    fn request_id_hash_is_stable_and_spreads() {
        assert_eq!(request_id_hash("a"), request_id_hash("a"));
        assert_ne!(request_id_hash("a"), request_id_hash("b"));
        assert_ne!(request_id_hash("req-1"), request_id_hash("req-2"));
    }

    #[test]
    fn micros_truncate_nanos() {
        let r = SpanRecord {
            request_id: 1,
            stage: Stage::Parse,
            duration_nanos: 1_999,
        };
        assert_eq!(r.duration_micros(), 1);
    }
}
