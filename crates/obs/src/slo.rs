//! Multi-window multi-burn-rate SLO evaluation.
//!
//! An SLO here is "at least `objective` of requests answer under
//! `target_latency`". A request is *bad* when it errors or completes
//! over the target; the **burn rate** of a window is the bad fraction
//! divided by the budget fraction `1 − objective` (burn 1.0 = spending
//! the error budget exactly as fast as the SLO allows). Following the
//! SRE-workbook alerting recipe, a violation fires when a *short*
//! window burns fast **and** a *long* window confirms it — the short
//! window gives detection latency, the long window suppresses blips.
//!
//! Evaluation is a pure function over the load test's per-tick series
//! plus the per-tick stage attribution the driver collects, so a seeded
//! run replays to a bit-identical report — including *when* the SLO
//! first fell over and *why* (compute vs queue vs network vs injected
//! faults).

use etude_metrics::TimeSeries;
use std::time::Duration;

/// The SLO and its alerting windows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloPolicy {
    /// Latency target: responses over this are budget spend.
    pub target_latency: Duration,
    /// Fraction of requests that must be good (e.g. 0.999).
    pub objective: f64,
    /// Short (fast-detection) window in ticks.
    pub short_window: usize,
    /// Long (confirmation) window in ticks.
    pub long_window: usize,
    /// Burn-rate threshold for the short window.
    pub fast_burn: f64,
    /// Burn-rate threshold for the long window.
    pub slow_burn: f64,
}

impl SloPolicy {
    /// The default multi-window pair for a latency target: a 99.9%
    /// objective with the canonical 14.4×/6× thresholds, scaled to
    /// load-test ticks (5 s detection, 30 s confirmation).
    pub fn from_target(target_latency: Duration) -> SloPolicy {
        SloPolicy {
            target_latency,
            objective: 0.999,
            short_window: 5,
            long_window: 30,
            fast_burn: 14.4,
            slow_burn: 6.0,
        }
    }
}

/// Where a tick's latency went, as measured by the driver. All values
/// are totals over the tick's completed requests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickAttribution {
    /// Tick index.
    pub tick: u64,
    /// Model compute time (inference) in microseconds.
    pub compute_us: u64,
    /// Queueing/batching wait in microseconds.
    pub queue_us: u64,
    /// Network (link) time in microseconds.
    pub network_us: u64,
    /// Errors attributable to injected faults (drops, resets, fault
    /// windows) rather than organic overload.
    pub fault_errors: u64,
}

/// The dominant cause of an SLO violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloCause {
    /// Model compute dominated the latency of the violating window.
    Compute,
    /// Queueing/batch formation dominated.
    Queue,
    /// Network time dominated.
    Network,
    /// Injected faults account for the bad requests.
    Faults,
}

impl SloCause {
    /// Stable lowercase label for reports and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            SloCause::Compute => "compute",
            SloCause::Queue => "queue",
            SloCause::Network => "network",
            SloCause::Faults => "faults",
        }
    }
}

/// The first tick at which both alerting windows burned too fast.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloViolation {
    /// Tick (seconds since run start) where the alert first fired.
    pub tick: u64,
    /// Short-window burn rate at that tick.
    pub short_burn: f64,
    /// Long-window burn rate at that tick.
    pub long_burn: f64,
    /// Bad requests in the short window.
    pub bad: u64,
    /// Total requests in the short window.
    pub total: u64,
    /// Dominant cause over the short window.
    pub cause: SloCause,
}

impl SloViolation {
    /// One-line human description for planner/runner reports.
    pub fn describe(&self) -> String {
        format!(
            "SLO violated at t={}s: {}/{} bad in the short window \
             (burn {:.1}x short / {:.1}x long), dominated by {}",
            self.tick,
            self.bad,
            self.total,
            self.short_burn,
            self.long_burn,
            self.cause.name()
        )
    }
}

/// Outcome of evaluating a policy against a whole run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloReport {
    /// Latency target in microseconds.
    pub target_us: u64,
    /// Objective evaluated.
    pub objective: f64,
    /// Requests over the whole run.
    pub total: u64,
    /// Bad requests over the whole run.
    pub bad: u64,
    /// Whole-run burn rate.
    pub burn: f64,
    /// First alert, when one fired.
    pub violation: Option<SloViolation>,
}

/// Evaluates an [`SloPolicy`] against a finished (or in-progress) run.
#[derive(Debug, Clone, Copy)]
pub struct SloMonitor {
    policy: SloPolicy,
}

impl SloMonitor {
    /// Creates a monitor for a policy.
    pub fn new(policy: SloPolicy) -> SloMonitor {
        SloMonitor { policy }
    }

    /// The policy under evaluation.
    pub fn policy(&self) -> &SloPolicy {
        &self.policy
    }

    /// Evaluates the series tick by tick, returning whole-run budget
    /// spend and the first violation (if any). `attribution` rows are
    /// matched to ticks by index; missing rows attribute as zeros.
    pub fn evaluate(&self, series: &TimeSeries, attribution: &[TickAttribution]) -> SloReport {
        let p = &self.policy;
        let target_us = p.target_latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let budget = (1.0 - p.objective).max(f64::EPSILON);
        let ticks = series.ticks();
        // Per-tick (bad, total) pairs; a tick's total counts completed
        // requests (ok + errors), its bad counts errors plus
        // over-target completions.
        let per_tick: Vec<(u64, u64)> = ticks
            .iter()
            .map(|t| (t.errors + t.latency.count_above(target_us), t.ok + t.errors))
            .collect();
        let attr_for = |tick: usize| -> TickAttribution {
            attribution
                .iter()
                .find(|a| a.tick == tick as u64)
                .copied()
                .unwrap_or_default()
        };
        let window_burn = |end: usize, len: usize| -> (u64, u64, f64) {
            let start = (end + 1).saturating_sub(len);
            let (bad, total) = per_tick[start..=end]
                .iter()
                .fold((0u64, 0u64), |(b, t), &(bi, ti)| (b + bi, t + ti));
            let burn = if total == 0 {
                0.0
            } else {
                (bad as f64 / total as f64) / budget
            };
            (bad, total, burn)
        };
        let mut violation = None;
        for end in 0..per_tick.len() {
            let (bad, total, short_burn) = window_burn(end, p.short_window);
            let (_, _, long_burn) = window_burn(end, p.long_window);
            if short_burn >= p.fast_burn && long_burn >= p.slow_burn && bad > 0 {
                let start = (end + 1).saturating_sub(p.short_window);
                let mut sum = TickAttribution::default();
                for tick in start..=end {
                    let a = attr_for(tick);
                    sum.compute_us += a.compute_us;
                    sum.queue_us += a.queue_us;
                    sum.network_us += a.network_us;
                    sum.fault_errors += a.fault_errors;
                }
                // Faults win when they explain at least half the bad
                // requests; otherwise the largest latency component
                // over the window does.
                let cause = if sum.fault_errors * 2 >= bad {
                    SloCause::Faults
                } else if sum.queue_us >= sum.compute_us && sum.queue_us >= sum.network_us {
                    SloCause::Queue
                } else if sum.network_us >= sum.compute_us {
                    SloCause::Network
                } else {
                    SloCause::Compute
                };
                violation = Some(SloViolation {
                    tick: end as u64,
                    short_burn,
                    long_burn,
                    bad,
                    total,
                    cause,
                });
                break;
            }
        }
        let (run_bad, run_total) = per_tick
            .iter()
            .fold((0u64, 0u64), |(b, t), &(bi, ti)| (b + bi, t + ti));
        SloReport {
            target_us,
            objective: p.objective,
            total: run_total,
            bad: run_bad,
            burn: if run_total == 0 {
                0.0
            } else {
                (run_bad as f64 / run_total as f64) / budget
            },
            violation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> SloPolicy {
        SloPolicy {
            target_latency: Duration::from_millis(10),
            objective: 0.99,
            short_window: 3,
            long_window: 6,
            fast_burn: 10.0,
            slow_burn: 5.0,
        }
    }

    fn healthy_series(ticks: u64, per_tick: u64) -> TimeSeries {
        let mut s = TimeSeries::new();
        for t in 0..ticks {
            for _ in 0..per_tick {
                s.record_ok(t, Duration::from_millis(2));
            }
        }
        s
    }

    #[test]
    fn healthy_runs_fire_no_alert() {
        let series = healthy_series(20, 100);
        let report = SloMonitor::new(policy()).evaluate(&series, &[]);
        assert_eq!(report.bad, 0);
        assert_eq!(report.total, 2_000);
        assert_eq!(report.burn, 0.0);
        assert!(report.violation.is_none());
    }

    #[test]
    fn error_bursts_fire_inside_the_window_and_attribute_to_faults() {
        let mut series = healthy_series(20, 100);
        // A fault window at ticks 8..=10: half the tick errors out.
        let mut attribution = Vec::new();
        for t in 8..=10u64 {
            for _ in 0..50 {
                series.record_error(t);
            }
            attribution.push(TickAttribution {
                tick: t,
                fault_errors: 50,
                ..Default::default()
            });
        }
        let report = SloMonitor::new(policy()).evaluate(&series, &attribution);
        let v = report.violation.expect("burst must fire");
        assert_eq!(v.tick, 8, "fires on the first bad tick, not after");
        assert_eq!(v.cause, SloCause::Faults);
        assert!(v.short_burn > 10.0, "short burn {}", v.short_burn);
        assert!(v.describe().contains("faults"));
    }

    #[test]
    fn slow_ticks_attribute_to_the_dominant_stage() {
        let mut series = healthy_series(20, 100);
        let mut attribution = Vec::new();
        for t in 5..=9u64 {
            for _ in 0..40 {
                series.record_ok(t, Duration::from_millis(50)); // over target
            }
            attribution.push(TickAttribution {
                tick: t,
                compute_us: 10_000,
                queue_us: 1_900_000,
                network_us: 30_000,
                fault_errors: 0,
            });
        }
        let report = SloMonitor::new(policy()).evaluate(&series, &attribution);
        let v = report.violation.expect("sustained slowness must fire");
        assert_eq!(v.cause, SloCause::Queue);
        assert!(v.tick >= 5 && v.tick <= 9, "inside the slow window");
    }

    #[test]
    fn short_blips_are_suppressed_by_the_long_window() {
        let mut series = healthy_series(30, 100);
        // One bad tick only: short window burns, long window does not.
        for _ in 0..60 {
            series.record_error(15);
        }
        let p = SloPolicy {
            long_window: 20,
            slow_burn: 8.0,
            ..policy()
        };
        let report = SloMonitor::new(p).evaluate(&series, &[]);
        assert!(
            report.violation.is_none(),
            "single-tick blip must not page: {:?}",
            report.violation
        );
        assert!(report.bad > 0, "the blip still spent budget");
    }

    #[test]
    fn evaluation_is_deterministic() {
        let mut series = healthy_series(15, 80);
        for _ in 0..200 {
            series.record_error(7);
        }
        let attribution = [TickAttribution {
            tick: 7,
            fault_errors: 200,
            ..Default::default()
        }];
        let a = SloMonitor::new(policy()).evaluate(&series, &attribution);
        let b = SloMonitor::new(policy()).evaluate(&series, &attribution);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_series_is_a_quiet_report() {
        let report = SloMonitor::new(policy()).evaluate(&TimeSeries::new(), &[]);
        assert_eq!(report.total, 0);
        assert_eq!(report.burn, 0.0);
        assert!(report.violation.is_none());
    }
}
