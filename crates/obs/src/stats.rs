//! Aggregated stage statistics and their wire formats.
//!
//! One snapshot, two renderings: the Prometheus text exposition format
//! served at `/metrics` (scrapeable by standard tooling) and a compact
//! JSON document served at `/stats`. The JSON side also has a parser so
//! the load generator can pull a server's breakdown at end of run and
//! merge it into client-side reports — both ends share this module, so
//! the format cannot drift.

use crate::window::{WindowBucket, WindowSnapshot};
use etude_metrics::hdr::Histogram;

/// Aggregated latency statistics of one pipeline stage (microseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct StageStats {
    /// Stage label (see [`crate::span::Stage::name`]).
    pub stage: String,
    /// Spans recorded for this stage.
    pub count: u64,
    /// Mean duration.
    pub mean_us: f64,
    /// Median duration.
    pub p50_us: u64,
    /// 90th-percentile duration (the paper's headline quantile).
    pub p90_us: u64,
    /// 99th-percentile duration.
    pub p99_us: u64,
    /// Largest observed duration.
    pub max_us: u64,
}

/// Exact sparse per-stage histogram contents: the nonzero HDR bucket
/// `(index, count)` pairs. Carrying raw buckets over the wire is what
/// makes fleet aggregation *bit-identical* to merging local histograms
/// — quantiles reconstructed from the pairs are exactly those the pod
/// itself would compute.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageCounts {
    /// Stage label.
    pub stage: String,
    /// Nonzero bucket pairs, ascending index.
    pub counts: Vec<(u32, u64)>,
}

impl StageCounts {
    /// Encodes the pairs as `index:count` tokens — a flat string keeps
    /// the JSON nesting-free for the hand-rolled parser.
    pub fn encode_counts(&self) -> String {
        self.counts
            .iter()
            .map(|(i, c)| format!("{i}:{c}"))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Decodes [`StageCounts::encode_counts`] output (bad tokens
    /// skipped).
    pub fn decode_counts(encoded: &str) -> Vec<(u32, u64)> {
        encoded
            .split_whitespace()
            .filter_map(|token| {
                let (i, c) = token.split_once(':')?;
                Some((i.parse().ok()?, c.parse().ok()?))
            })
            .collect()
    }

    /// Reconstructs the full histogram from the sparse pairs.
    pub fn to_histogram(&self) -> Histogram {
        Histogram::from_sparse(&self.counts)
    }
}

/// Encodes sparse `(index, count)` pairs as `index:count` tokens (the
/// same flat wire shape as [`StageCounts::encode_counts`]).
pub(crate) fn encode_pairs(pairs: &[(u32, u64)]) -> String {
    pairs
        .iter()
        .map(|(i, c)| format!("{i}:{c}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Reactor/event-loop telemetry carried in a pod's `/stats` snapshot:
/// where the serving tier's own time goes, as opposed to where the
/// request pipeline's time goes (the stage histograms).
///
/// Histograms travel as exact sparse HDR bucket pairs like the stage
/// histograms, so the fleet merge is bit-identical and
/// order-independent. Counters are cumulative since server start; the
/// busy/wait nanos are summed over every event loop, so
/// [`ReactorTelemetry::utilization`] is the loop-average busy fraction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReactorTelemetry {
    /// Event-loop threads running.
    pub loops: u64,
    /// Nanoseconds event loops spent working (summed over loops).
    pub busy_nanos: u64,
    /// Nanoseconds event loops spent blocked in the poller wait.
    pub wait_nanos: u64,
    /// Connections accepted since start.
    pub accepts: u64,
    /// Connection-slab occupancy at snapshot time (summed over loops).
    pub conns: u64,
    /// Writes that hit a full socket buffer and left bytes pending.
    pub write_stalls: u64,
    /// Connections evicted for exceeding the write-stall budget.
    pub evictions: u64,
    /// Events returned per poller wake (sparse HDR buckets).
    pub poll_batch: Vec<(u32, u64)>,
    /// Wake-to-dequeue latency of loop mailbox messages, µs buckets.
    pub wake_us: Vec<(u32, u64)>,
    /// Dispatch-pool queue wait, µs buckets.
    pub dispatch_wait_us: Vec<(u32, u64)>,
}

impl ReactorTelemetry {
    /// Busy fraction of total event-loop wall time, in `[0, 1]`
    /// (0 before the first poll completes).
    pub fn utilization(&self) -> f64 {
        let total = self.busy_nanos + self.wait_nanos;
        if total == 0 {
            0.0
        } else {
            self.busy_nanos as f64 / total as f64
        }
    }

    /// Reconstructs the poll batch-size histogram.
    pub fn poll_batch_histogram(&self) -> Histogram {
        Histogram::from_sparse(&self.poll_batch)
    }

    /// Reconstructs the wake-to-dequeue latency histogram (µs).
    pub fn wake_histogram(&self) -> Histogram {
        Histogram::from_sparse(&self.wake_us)
    }

    /// Reconstructs the dispatch queue-wait histogram (µs).
    pub fn dispatch_wait_histogram(&self) -> Histogram {
        Histogram::from_sparse(&self.dispatch_wait_us)
    }

    /// Folds another pod's telemetry into this one: counters sum,
    /// histograms merge on exact buckets. Order-independent — merging
    /// A into B equals merging B into A, which the fleet tier asserts.
    pub fn merge(&mut self, other: &ReactorTelemetry) {
        self.loops += other.loops;
        self.busy_nanos += other.busy_nanos;
        self.wait_nanos += other.wait_nanos;
        self.accepts += other.accepts;
        self.conns += other.conns;
        self.write_stalls += other.write_stalls;
        self.evictions += other.evictions;
        let merge_pairs = |a: &[(u32, u64)], b: &[(u32, u64)]| -> Vec<(u32, u64)> {
            let mut h = Histogram::from_sparse(a);
            for &(index, count) in b {
                h.add_bucket(index, count);
            }
            h.nonzero_buckets().collect()
        };
        self.poll_batch = merge_pairs(&self.poll_batch, &other.poll_batch);
        self.wake_us = merge_pairs(&self.wake_us, &other.wake_us);
        self.dispatch_wait_us = merge_pairs(&self.dispatch_wait_us, &other.dispatch_wait_us);
    }
}

/// A full aggregation snapshot: per-stage stats plus bookkeeping.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Requests with a recorded `total` span.
    pub requests: u64,
    /// Span records lost to ring lapping (0 in healthy runs).
    pub dropped: u64,
    /// Requests shed with a 503 because the batch queue was full.
    pub shed: u64,
    /// Requests answered from the degraded (popularity-fallback) path.
    pub degraded: u64,
    /// Server-side injected faults fired (slow-downs, error responses,
    /// connection resets). 0 outside chaos runs.
    pub faults: u64,
    /// Requests refused with a 429 by criticality-aware admission
    /// control (distinct from `shed`: refusal happens before queueing).
    pub refused: u64,
    /// Browned-out 200s per ladder level: `[quantized, reduced-k,
    /// popularity-fallback]`. Level 0 (exact) is an ordinary request.
    pub brownout: [u64; 3],
    /// Admission controller's learned concurrency limit, milli-units
    /// (0 when no admission control is installed).
    pub admission_limit_milli: u64,
    /// Pod identity in a fleet (absent on standalone servers).
    pub pod: Option<u32>,
    /// Batcher queue depth at snapshot time (0 on unbatched servers).
    pub queue_depth: u64,
    /// Reactor/event-loop telemetry (absent on thread-pool servers).
    pub reactor: Option<ReactorTelemetry>,
    /// Rolling time-window view (absent on pre-window servers).
    pub window: Option<WindowSnapshot>,
    /// Exact sparse histogram buckets per non-empty stage.
    pub hist: Vec<StageCounts>,
    /// Stats per stage that recorded at least one span, pipeline order.
    pub stages: Vec<StageStats>,
}

impl StatsSnapshot {
    /// Looks up one stage's stats by label.
    pub fn stage(&self, name: &str) -> Option<&StageStats> {
        self.stages.iter().find(|s| s.stage == name)
    }

    /// Renders the Prometheus text exposition format (`/metrics`).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(
            "# HELP etude_stage_latency_microseconds Server-side stage latency quantiles.\n\
             # TYPE etude_stage_latency_microseconds summary\n",
        );
        for s in &self.stages {
            for (q, v) in [("0.5", s.p50_us), ("0.9", s.p90_us), ("0.99", s.p99_us)] {
                out.push_str(&format!(
                    "etude_stage_latency_microseconds{{stage=\"{}\",quantile=\"{q}\"}} {v}\n",
                    s.stage
                ));
            }
            out.push_str(&format!(
                "etude_stage_latency_microseconds_sum{{stage=\"{}\"}} {:.0}\n",
                s.stage,
                s.mean_us * s.count as f64
            ));
            out.push_str(&format!(
                "etude_stage_latency_microseconds_count{{stage=\"{}\"}} {}\n",
                s.stage, s.count
            ));
        }
        out.push_str(
            "# HELP etude_requests_total Requests with a recorded total span.\n\
             # TYPE etude_requests_total counter\n",
        );
        out.push_str(&format!("etude_requests_total {}\n", self.requests));
        out.push_str(
            "# HELP etude_spans_dropped_total Span records overwritten before aggregation.\n\
             # TYPE etude_spans_dropped_total counter\n",
        );
        out.push_str(&format!("etude_spans_dropped_total {}\n", self.dropped));
        out.push_str(
            "# HELP etude_requests_shed_total Requests shed with a 503 under overload.\n\
             # TYPE etude_requests_shed_total counter\n",
        );
        out.push_str(&format!("etude_requests_shed_total {}\n", self.shed));
        out.push_str(
            "# HELP etude_requests_degraded_total Requests answered from the degraded fallback path.\n\
             # TYPE etude_requests_degraded_total counter\n",
        );
        out.push_str(&format!(
            "etude_requests_degraded_total {}\n",
            self.degraded
        ));
        out.push_str(
            "# HELP etude_faults_injected_total Server-side injected faults fired.\n\
             # TYPE etude_faults_injected_total counter\n",
        );
        out.push_str(&format!("etude_faults_injected_total {}\n", self.faults));
        out.push_str(
            "# HELP etude_queue_depth Batcher queue depth at scrape time.\n\
             # TYPE etude_queue_depth gauge\n",
        );
        out.push_str(&format!("etude_queue_depth {}\n", self.queue_depth));
        out.push_str(
            "# HELP etude_requests_refused_total Requests refused with a 429 by admission control.\n\
             # TYPE etude_requests_refused_total counter\n",
        );
        out.push_str(&format!("etude_requests_refused_total {}\n", self.refused));
        out.push_str(
            "# HELP etude_brownout_responses_total Browned-out 200s per ladder level.\n\
             # TYPE etude_brownout_responses_total counter\n",
        );
        for (label, count) in [
            ("quantized", self.brownout[0]),
            ("reduced-k", self.brownout[1]),
            ("fallback", self.brownout[2]),
        ] {
            out.push_str(&format!(
                "etude_brownout_responses_total{{level=\"{label}\"}} {count}\n"
            ));
        }
        out.push_str(
            "# HELP etude_admission_limit Learned admission concurrency limit.\n\
             # TYPE etude_admission_limit gauge\n",
        );
        out.push_str(&format!(
            "etude_admission_limit {:.3}\n",
            self.admission_limit_milli as f64 / 1000.0
        ));
        if let Some(r) = &self.reactor {
            out.push_str(&render_reactor_prometheus(r, ""));
        }
        out
    }

    /// Renders an aligned text table of the stage breakdown, for
    /// end-of-run reports (the load generator prints this when it has
    /// scraped a server's `/stats`).
    pub fn render_table(&self) -> String {
        let mut table = etude_metrics::report::Table::new([
            "stage", "count", "mean_us", "p50_us", "p90_us", "p99_us", "max_us",
        ]);
        for s in &self.stages {
            table.row([
                s.stage.clone(),
                s.count.to_string(),
                format!("{:.1}", s.mean_us),
                s.p50_us.to_string(),
                s.p90_us.to_string(),
                s.p99_us.to_string(),
                s.max_us.to_string(),
            ]);
        }
        table.render()
    }

    /// Renders the JSON document served at `/stats`.
    ///
    /// Field order matters to the hand-rolled parser: top-level scalars
    /// come first (the parser takes the *first* occurrence of each
    /// key), then the nested `window`/`hist` sections, and `stages`
    /// last (the parser scans every `{...}` after the `"stages"` key as
    /// a stage object).
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(&format!(
            "{{\n  \"requests\": {},\n  \"dropped\": {},\n  \"shed\": {},\n  \
             \"degraded\": {},\n  \"faults\": {},\n",
            self.requests, self.dropped, self.shed, self.degraded, self.faults
        ));
        if let Some(pod) = self.pod {
            out.push_str(&format!("  \"pod\": {pod},\n"));
        }
        out.push_str(&format!(
            "  \"refused\": {},\n  \"brownout_quantized\": {},\n  \
             \"brownout_reduced\": {},\n  \"brownout_fallback\": {},\n  \
             \"admission_limit_milli\": {},\n",
            self.refused,
            self.brownout[0],
            self.brownout[1],
            self.brownout[2],
            self.admission_limit_milli
        ));
        out.push_str(&format!("  \"queue_depth\": {},\n", self.queue_depth));
        if let Some(r) = &self.reactor {
            out.push_str(&format!(
                "  \"reactor_loops\": {},\n  \"reactor_busy_nanos\": {},\n  \
                 \"reactor_wait_nanos\": {},\n  \"reactor_accepts\": {},\n  \
                 \"reactor_conns\": {},\n  \"reactor_write_stalls\": {},\n  \
                 \"reactor_evictions\": {},\n",
                r.loops,
                r.busy_nanos,
                r.wait_nanos,
                r.accepts,
                r.conns,
                r.write_stalls,
                r.evictions,
            ));
            out.push_str(&format!(
                "  \"reactor_poll_batch\": \"{}\",\n  \"reactor_wake_us\": \"{}\",\n  \
                 \"reactor_dispatch_wait_us\": \"{}\",\n",
                encode_pairs(&r.poll_batch),
                encode_pairs(&r.wake_us),
                encode_pairs(&r.dispatch_wait_us),
            ));
        }
        if let Some(w) = &self.window {
            out.push_str(&format!(
                "  \"window\": {{\"bucket_millis\": {}, \"buckets\": [",
                w.bucket_millis
            ));
            for (i, b) in w.buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n    {{\"index\": {}, \"requests\": {}, \"shed\": {}, \
                     \"degraded\": {}, \"faults\": {}, \"lat\": \"{}\"}}",
                    b.index,
                    b.requests,
                    b.shed,
                    b.degraded,
                    b.faults,
                    b.encode_lat()
                ));
            }
            out.push_str("\n  ]},\n");
        }
        out.push_str("  \"hist\": [");
        for (i, h) in self.hist.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"stage\": \"{}\", \"counts\": \"{}\"}}",
                h.stage,
                h.encode_counts()
            ));
        }
        out.push_str("\n  ],\n  \"stages\": [");
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"stage\": \"{}\", \"count\": {}, \"mean_us\": {:.3}, \
                 \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
                s.stage, s.count, s.mean_us, s.p50_us, s.p90_us, s.p99_us, s.max_us
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Renders reactor telemetry in the Prometheus exposition format.
/// `prefix` distinguishes the fleet-merged series (`fleet_`) from a
/// single pod's (empty) so both can be scraped by one collector.
pub(crate) fn render_reactor_prometheus(r: &ReactorTelemetry, prefix: &str) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str(&format!(
        "# HELP etude_{prefix}reactor_loop_utilization Busy fraction of reactor event-loop wall time.\n\
         # TYPE etude_{prefix}reactor_loop_utilization gauge\n\
         etude_{prefix}reactor_loop_utilization {:.6}\n",
        r.utilization()
    ));
    for (name, kind, help, value) in [
        (
            "reactor_event_loops",
            "gauge",
            "Reactor event-loop threads.",
            r.loops,
        ),
        (
            "reactor_open_connections",
            "gauge",
            "Connection-slab occupancy at scrape time.",
            r.conns,
        ),
        (
            "reactor_accepts_total",
            "counter",
            "Connections accepted since start.",
            r.accepts,
        ),
        (
            "reactor_write_stalls_total",
            "counter",
            "Writes that left bytes pending on a full socket buffer.",
            r.write_stalls,
        ),
        (
            "reactor_evictions_total",
            "counter",
            "Connections evicted past the write-stall budget.",
            r.evictions,
        ),
    ] {
        out.push_str(&format!(
            "# HELP etude_{prefix}{name} {help}\n# TYPE etude_{prefix}{name} {kind}\n\
             etude_{prefix}{name} {value}\n"
        ));
    }
    for (name, help, h) in [
        (
            "reactor_poll_batch",
            "Events returned per poller wake.",
            r.poll_batch_histogram(),
        ),
        (
            "reactor_wake_to_dequeue_us",
            "Loop mailbox wake-to-dequeue latency in microseconds.",
            r.wake_histogram(),
        ),
        (
            "dispatch_queue_wait_us",
            "Dispatch-pool queue wait in microseconds.",
            r.dispatch_wait_histogram(),
        ),
    ] {
        out.push_str(&format!(
            "# HELP etude_{prefix}{name} {help}\n# TYPE etude_{prefix}{name} summary\n"
        ));
        for (q, v) in [("0.5", h.p50()), ("0.9", h.p90()), ("0.99", h.p99())] {
            out.push_str(&format!("etude_{prefix}{name}{{quantile=\"{q}\"}} {v}\n"));
        }
        out.push_str(&format!("etude_{prefix}{name}_count {}\n", h.count()));
    }
    out
}

/// Extracts `"key": <value>` from a flat JSON object fragment.
pub(crate) fn field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = obj.find(&needle)? + needle.len();
    let rest = obj[at..].trim_start();
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

pub(crate) fn num_field<T: std::str::FromStr>(obj: &str, key: &str) -> Option<T> {
    field(obj, key)?.parse().ok()
}

pub(crate) fn str_field(obj: &str, key: &str) -> Option<String> {
    Some(field(obj, key)?.trim_matches('"').to_string())
}

/// Parses a document produced by [`StatsSnapshot::render_json`].
///
/// Not a general JSON parser — just the inverse of our own renderer,
/// tolerant of whitespace differences. Returns `None` on anything that
/// does not look like a `/stats` document.
/// Parses the flat `reactor_*` key block out of a `/stats` or `/fleet`
/// document. Keyed on the loop count: servers without a reactor (and
/// pre-reactor documents) simply omit the block.
pub(crate) fn parse_reactor_block(body: &str) -> Option<ReactorTelemetry> {
    num_field(body, "reactor_loops").map(|loops| ReactorTelemetry {
        loops,
        busy_nanos: num_field(body, "reactor_busy_nanos").unwrap_or(0),
        wait_nanos: num_field(body, "reactor_wait_nanos").unwrap_or(0),
        accepts: num_field(body, "reactor_accepts").unwrap_or(0),
        conns: num_field(body, "reactor_conns").unwrap_or(0),
        write_stalls: num_field(body, "reactor_write_stalls").unwrap_or(0),
        evictions: num_field(body, "reactor_evictions").unwrap_or(0),
        poll_batch: StageCounts::decode_counts(
            &str_field(body, "reactor_poll_batch").unwrap_or_default(),
        ),
        wake_us: StageCounts::decode_counts(
            &str_field(body, "reactor_wake_us").unwrap_or_default(),
        ),
        dispatch_wait_us: StageCounts::decode_counts(
            &str_field(body, "reactor_dispatch_wait_us").unwrap_or_default(),
        ),
    })
}

pub fn parse_stats_json(body: &str) -> Option<StatsSnapshot> {
    let requests = num_field(body, "requests")?;
    let dropped = num_field(body, "dropped")?;
    // Counters added after the v1 format default to 0 so documents from
    // older servers still parse; `pod`/`window` stay absent.
    let shed = num_field(body, "shed").unwrap_or(0);
    let degraded = num_field(body, "degraded").unwrap_or(0);
    let faults = num_field(body, "faults").unwrap_or(0);
    // Overload counters arrived in PR 10; older documents omit them.
    let refused = num_field(body, "refused").unwrap_or(0);
    let brownout = [
        num_field(body, "brownout_quantized").unwrap_or(0),
        num_field(body, "brownout_reduced").unwrap_or(0),
        num_field(body, "brownout_fallback").unwrap_or(0),
    ];
    let admission_limit_milli = num_field(body, "admission_limit_milli").unwrap_or(0);
    let pod = num_field(body, "pod");
    let queue_depth = num_field(body, "queue_depth").unwrap_or(0);
    let reactor = parse_reactor_block(body);
    let window = match body.find("\"window\"") {
        None => None,
        Some(at) => {
            let rest = &body[at..];
            let bucket_millis = num_field(rest, "bucket_millis")?;
            let bstart = rest.find("\"buckets\"")?;
            // Bucket objects are flat (their stage list is an encoded
            // string), so the first `]` closes the array.
            let bend = rest[bstart..].find(']')? + bstart;
            let mut buckets = Vec::new();
            let mut scan = &rest[bstart..bend];
            while let Some(open) = scan.find('{') {
                let close = scan[open..].find('}')? + open;
                let obj = &scan[open..=close];
                buckets.push(WindowBucket {
                    index: num_field(obj, "index")?,
                    requests: num_field(obj, "requests")?,
                    shed: num_field(obj, "shed")?,
                    degraded: num_field(obj, "degraded")?,
                    faults: num_field(obj, "faults")?,
                    lat: WindowBucket::decode_lat(&str_field(obj, "lat")?),
                });
                scan = &scan[close + 1..];
            }
            Some(WindowSnapshot {
                bucket_millis,
                buckets,
            })
        }
    };
    let mut hist = Vec::new();
    if let Some(at) = body.find("\"hist\"") {
        let rest = &body[at..];
        let end = rest.find(']')?;
        let mut scan = &rest[..end];
        while let Some(open) = scan.find('{') {
            let close = scan[open..].find('}')? + open;
            let obj = &scan[open..=close];
            hist.push(StageCounts {
                stage: str_field(obj, "stage")?,
                counts: StageCounts::decode_counts(&str_field(obj, "counts")?),
            });
            scan = &scan[close + 1..];
        }
    }
    let stages_at = body.find("\"stages\"")?;
    let mut stages = Vec::new();
    let mut rest = &body[stages_at..];
    while let Some(open) = rest.find('{') {
        let close = rest[open..].find('}')? + open;
        let obj = &rest[open..=close];
        stages.push(StageStats {
            stage: str_field(obj, "stage")?,
            count: num_field(obj, "count")?,
            mean_us: num_field(obj, "mean_us")?,
            p50_us: num_field(obj, "p50_us")?,
            p90_us: num_field(obj, "p90_us")?,
            p99_us: num_field(obj, "p99_us")?,
            max_us: num_field(obj, "max_us")?,
        });
        rest = &rest[close + 1..];
    }
    Some(StatsSnapshot {
        requests,
        dropped,
        shed,
        degraded,
        faults,
        refused,
        brownout,
        admission_limit_milli,
        pod,
        queue_depth,
        reactor,
        window,
        hist,
        stages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StatsSnapshot {
        StatsSnapshot {
            requests: 42,
            dropped: 1,
            shed: 7,
            degraded: 3,
            faults: 2,
            refused: 5,
            brownout: [11, 4, 9],
            admission_limit_milli: 12_500,
            pod: Some(4),
            queue_depth: 6,
            reactor: Some(ReactorTelemetry {
                loops: 2,
                busy_nanos: 750_000,
                wait_nanos: 2_250_000,
                accepts: 64,
                conns: 60,
                write_stalls: 3,
                evictions: 1,
                poll_batch: vec![(1, 40), (4, 9)],
                wake_us: vec![(12, 30)],
                dispatch_wait_us: vec![(80, 25), (200, 5)],
            }),
            window: Some(WindowSnapshot {
                bucket_millis: 1_000,
                buckets: vec![
                    WindowBucket {
                        index: 10,
                        requests: 20,
                        shed: 1,
                        degraded: 0,
                        faults: 0,
                        lat: WindowBucket::decode_lat("parse:20:3:9 total:20:200:310"),
                    },
                    WindowBucket {
                        index: 11,
                        requests: 22,
                        shed: 0,
                        degraded: 2,
                        faults: 1,
                        lat: WindowBucket::decode_lat("total:22:190:320"),
                    },
                ],
            }),
            hist: vec![
                StageCounts {
                    stage: "parse".into(),
                    counts: vec![(3, 30), (5, 12)],
                },
                StageCounts {
                    stage: "total".into(),
                    counts: vec![(200, 40), (210, 2)],
                },
            ],
            stages: vec![
                StageStats {
                    stage: "parse".into(),
                    count: 42,
                    mean_us: 3.25,
                    p50_us: 3,
                    p90_us: 5,
                    p99_us: 9,
                    max_us: 12,
                },
                StageStats {
                    stage: "total".into(),
                    count: 42,
                    mean_us: 210.0,
                    p50_us: 200,
                    p90_us: 280,
                    p99_us: 310,
                    max_us: 333,
                },
            ],
        }
    }

    #[test]
    fn json_roundtrips_through_the_parser() {
        let snap = sample();
        let parsed = parse_stats_json(&snap.render_json()).unwrap();
        assert_eq!(parsed.requests, snap.requests);
        assert_eq!(parsed.dropped, snap.dropped);
        assert_eq!(parsed.shed, 7);
        assert_eq!(parsed.degraded, 3);
        assert_eq!(parsed.faults, 2);
        assert_eq!(parsed.stages.len(), 2);
        assert_eq!(parsed.stage("parse").unwrap().p90_us, 5);
        assert!((parsed.stage("parse").unwrap().mean_us - 3.25).abs() < 1e-9);
        assert_eq!(parsed.stage("total").unwrap().max_us, 333);
        assert_eq!(parsed.pod, Some(4));
        assert_eq!(parsed.queue_depth, 6);
        let window = parsed.window.as_ref().unwrap();
        assert_eq!(window.bucket_millis, 1_000);
        assert_eq!(window.buckets.len(), 2);
        assert_eq!(window.buckets[0].lat[0].stage, "parse");
        assert_eq!(window.buckets[1].faults, 1);
        assert_eq!(parsed.hist.len(), 2);
        assert_eq!(parsed.hist[0].counts, vec![(3, 30), (5, 12)]);
    }

    /// The satellite round-trip requirement: render → parse → render is
    /// a fixpoint, byte for byte, covering the resilience counters and
    /// every windowed field.
    #[test]
    fn render_parse_render_is_a_fixpoint() {
        for snap in [sample(), StatsSnapshot::default()] {
            let first = snap.render_json();
            let parsed = parse_stats_json(&first).unwrap();
            assert_eq!(parsed, snap);
            assert_eq!(parsed.render_json(), first);
        }
    }

    #[test]
    fn hist_counts_reconstruct_the_exact_histogram() {
        let mut h = Histogram::new();
        for v in [10, 10, 300, 50_000] {
            h.record(v);
        }
        let counts = StageCounts {
            stage: "total".into(),
            counts: h.nonzero_buckets().collect(),
        };
        let back = parse_stats_json(
            &StatsSnapshot {
                hist: vec![counts],
                ..Default::default()
            }
            .render_json(),
        )
        .unwrap();
        // The wire carries bucket counts, not exact extremes: the
        // reconstruction must be bit-identical to any other
        // sparse-built histogram over the same pairs (which is what
        // fleet merging compares).
        let pairs: Vec<(u32, u64)> = h.nonzero_buckets().collect();
        let canon = Histogram::from_sparse(&pairs);
        let rebuilt = back.hist[0].to_histogram();
        assert_eq!(rebuilt.count(), canon.count());
        assert_eq!(rebuilt.p50(), canon.p50());
        assert_eq!(rebuilt.p99(), canon.p99());
        assert_eq!(rebuilt.max(), canon.max());
        assert_eq!(rebuilt.count(), h.count());
    }

    #[test]
    fn empty_snapshot_renders_and_parses() {
        let snap = StatsSnapshot::default();
        let parsed = parse_stats_json(&snap.render_json()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn prometheus_format_has_quantiles_counts_and_counters() {
        let text = sample().render_prometheus();
        assert!(text.contains("# TYPE etude_stage_latency_microseconds summary"));
        assert!(
            text.contains("etude_stage_latency_microseconds{stage=\"parse\",quantile=\"0.9\"} 5")
        );
        assert!(text.contains("etude_stage_latency_microseconds_count{stage=\"total\"} 42"));
        assert!(text.contains("etude_requests_total 42"));
        assert!(text.contains("etude_spans_dropped_total 1"));
        // sum = mean * count (136.5 here), rendered as an integer
        assert!(text.contains("etude_stage_latency_microseconds_sum{stage=\"parse\"} 136"));
    }

    #[test]
    fn table_lists_every_stage() {
        let text = sample().render_table();
        assert!(text.contains("stage"));
        assert!(text.contains("parse"));
        assert!(text.contains("total"));
        assert_eq!(text.lines().count(), 4, "header, rule, two stages");
    }

    #[test]
    fn garbage_does_not_parse() {
        assert!(parse_stats_json("hello").is_none());
        assert!(parse_stats_json("{}").is_none());
    }

    #[test]
    fn v1_documents_without_counters_still_parse() {
        // A document from before shed/degraded/faults existed.
        let old = "{\n  \"requests\": 5,\n  \"dropped\": 0,\n  \"stages\": [\n  ]\n}\n";
        let parsed = parse_stats_json(old).unwrap();
        assert_eq!(parsed.requests, 5);
        assert_eq!(parsed.shed, 0);
        assert_eq!(parsed.degraded, 0);
        assert_eq!(parsed.faults, 0);
        assert_eq!(parsed.reactor, None, "pre-reactor documents carry none");
    }

    #[test]
    fn reactor_telemetry_roundtrips_and_merges_order_independently() {
        let snap = sample();
        let r = snap.reactor.as_ref().unwrap();
        assert!((r.utilization() - 0.25).abs() < 1e-9);
        let parsed = parse_stats_json(&snap.render_json()).unwrap();
        assert_eq!(parsed.reactor.as_ref(), Some(r));
        // Merge is order-independent on the exact sparse buckets.
        let mut other = r.clone();
        other.busy_nanos = 10;
        other.dispatch_wait_us = vec![(80, 5), (300, 2)];
        let mut ab = r.clone();
        ab.merge(&other);
        let mut ba = other.clone();
        ba.merge(r);
        assert_eq!(ab, ba);
        assert_eq!(ab.dispatch_wait_us[0], (80, 30), "bucket counts summed");
        assert_eq!(
            ab.dispatch_wait_histogram().count(),
            r.dispatch_wait_histogram().count() + other.dispatch_wait_histogram().count()
        );
    }

    #[test]
    fn prometheus_format_exposes_reactor_gauges() {
        let text = sample().render_prometheus();
        assert!(text.contains("etude_reactor_loop_utilization 0.250000"));
        assert!(text.contains("etude_reactor_event_loops 2"));
        assert!(text.contains("etude_reactor_open_connections 60"));
        assert!(text.contains("etude_reactor_accepts_total 64"));
        assert!(text.contains("etude_reactor_write_stalls_total 3"));
        assert!(text.contains("etude_reactor_evictions_total 1"));
        assert!(text.contains("etude_dispatch_queue_wait_us{quantile=\"0.99\"}"));
        assert!(text.contains("etude_reactor_poll_batch{quantile=\"0.5\"}"));
        assert!(text.contains("etude_reactor_wake_to_dequeue_us_count 30"));
        // Thread-pool servers carry no reactor block at all.
        let plain = StatsSnapshot::default().render_prometheus();
        assert!(!plain.contains("reactor"));
    }

    #[test]
    fn prometheus_format_exposes_resilience_counters() {
        let text = sample().render_prometheus();
        assert!(text.contains("etude_requests_shed_total 7"));
        assert!(text.contains("etude_requests_degraded_total 3"));
        assert!(text.contains("etude_faults_injected_total 2"));
        assert!(text.contains("etude_queue_depth 6"));
    }
}
