//! Aggregated stage statistics and their wire formats.
//!
//! One snapshot, two renderings: the Prometheus text exposition format
//! served at `/metrics` (scrapeable by standard tooling) and a compact
//! JSON document served at `/stats`. The JSON side also has a parser so
//! the load generator can pull a server's breakdown at end of run and
//! merge it into client-side reports — both ends share this module, so
//! the format cannot drift.

/// Aggregated latency statistics of one pipeline stage (microseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct StageStats {
    /// Stage label (see [`crate::span::Stage::name`]).
    pub stage: String,
    /// Spans recorded for this stage.
    pub count: u64,
    /// Mean duration.
    pub mean_us: f64,
    /// Median duration.
    pub p50_us: u64,
    /// 90th-percentile duration (the paper's headline quantile).
    pub p90_us: u64,
    /// 99th-percentile duration.
    pub p99_us: u64,
    /// Largest observed duration.
    pub max_us: u64,
}

/// A full aggregation snapshot: per-stage stats plus bookkeeping.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Requests with a recorded `total` span.
    pub requests: u64,
    /// Span records lost to ring lapping (0 in healthy runs).
    pub dropped: u64,
    /// Requests shed with a 503 because the batch queue was full.
    pub shed: u64,
    /// Requests answered from the degraded (popularity-fallback) path.
    pub degraded: u64,
    /// Server-side injected faults fired (slow-downs, error responses,
    /// connection resets). 0 outside chaos runs.
    pub faults: u64,
    /// Stats per stage that recorded at least one span, pipeline order.
    pub stages: Vec<StageStats>,
}

impl StatsSnapshot {
    /// Looks up one stage's stats by label.
    pub fn stage(&self, name: &str) -> Option<&StageStats> {
        self.stages.iter().find(|s| s.stage == name)
    }

    /// Renders the Prometheus text exposition format (`/metrics`).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(
            "# HELP etude_stage_latency_microseconds Server-side stage latency quantiles.\n\
             # TYPE etude_stage_latency_microseconds summary\n",
        );
        for s in &self.stages {
            for (q, v) in [("0.5", s.p50_us), ("0.9", s.p90_us), ("0.99", s.p99_us)] {
                out.push_str(&format!(
                    "etude_stage_latency_microseconds{{stage=\"{}\",quantile=\"{q}\"}} {v}\n",
                    s.stage
                ));
            }
            out.push_str(&format!(
                "etude_stage_latency_microseconds_sum{{stage=\"{}\"}} {:.0}\n",
                s.stage,
                s.mean_us * s.count as f64
            ));
            out.push_str(&format!(
                "etude_stage_latency_microseconds_count{{stage=\"{}\"}} {}\n",
                s.stage, s.count
            ));
        }
        out.push_str(
            "# HELP etude_requests_total Requests with a recorded total span.\n\
             # TYPE etude_requests_total counter\n",
        );
        out.push_str(&format!("etude_requests_total {}\n", self.requests));
        out.push_str(
            "# HELP etude_spans_dropped_total Span records overwritten before aggregation.\n\
             # TYPE etude_spans_dropped_total counter\n",
        );
        out.push_str(&format!("etude_spans_dropped_total {}\n", self.dropped));
        out.push_str(
            "# HELP etude_requests_shed_total Requests shed with a 503 under overload.\n\
             # TYPE etude_requests_shed_total counter\n",
        );
        out.push_str(&format!("etude_requests_shed_total {}\n", self.shed));
        out.push_str(
            "# HELP etude_requests_degraded_total Requests answered from the degraded fallback path.\n\
             # TYPE etude_requests_degraded_total counter\n",
        );
        out.push_str(&format!(
            "etude_requests_degraded_total {}\n",
            self.degraded
        ));
        out.push_str(
            "# HELP etude_faults_injected_total Server-side injected faults fired.\n\
             # TYPE etude_faults_injected_total counter\n",
        );
        out.push_str(&format!("etude_faults_injected_total {}\n", self.faults));
        out
    }

    /// Renders an aligned text table of the stage breakdown, for
    /// end-of-run reports (the load generator prints this when it has
    /// scraped a server's `/stats`).
    pub fn render_table(&self) -> String {
        let mut table = etude_metrics::report::Table::new([
            "stage", "count", "mean_us", "p50_us", "p90_us", "p99_us", "max_us",
        ]);
        for s in &self.stages {
            table.row([
                s.stage.clone(),
                s.count.to_string(),
                format!("{:.1}", s.mean_us),
                s.p50_us.to_string(),
                s.p90_us.to_string(),
                s.p99_us.to_string(),
                s.max_us.to_string(),
            ]);
        }
        table.render()
    }

    /// Renders the JSON document served at `/stats`.
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str(&format!(
            "{{\n  \"requests\": {},\n  \"dropped\": {},\n  \"shed\": {},\n  \
             \"degraded\": {},\n  \"faults\": {},\n  \"stages\": [",
            self.requests, self.dropped, self.shed, self.degraded, self.faults
        ));
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"stage\": \"{}\", \"count\": {}, \"mean_us\": {:.3}, \
                 \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
                s.stage, s.count, s.mean_us, s.p50_us, s.p90_us, s.p99_us, s.max_us
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Extracts `"key": <value>` from a flat JSON object fragment.
fn field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = obj.find(&needle)? + needle.len();
    let rest = obj[at..].trim_start();
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn num_field<T: std::str::FromStr>(obj: &str, key: &str) -> Option<T> {
    field(obj, key)?.parse().ok()
}

fn str_field(obj: &str, key: &str) -> Option<String> {
    Some(field(obj, key)?.trim_matches('"').to_string())
}

/// Parses a document produced by [`StatsSnapshot::render_json`].
///
/// Not a general JSON parser — just the inverse of our own renderer,
/// tolerant of whitespace differences. Returns `None` on anything that
/// does not look like a `/stats` document.
pub fn parse_stats_json(body: &str) -> Option<StatsSnapshot> {
    let requests = num_field(body, "requests")?;
    let dropped = num_field(body, "dropped")?;
    // Counters added after the v1 format default to 0 so documents from
    // older servers still parse.
    let shed = num_field(body, "shed").unwrap_or(0);
    let degraded = num_field(body, "degraded").unwrap_or(0);
    let faults = num_field(body, "faults").unwrap_or(0);
    let stages_at = body.find("\"stages\"")?;
    let mut stages = Vec::new();
    let mut rest = &body[stages_at..];
    while let Some(open) = rest.find('{') {
        let close = rest[open..].find('}')? + open;
        let obj = &rest[open..=close];
        stages.push(StageStats {
            stage: str_field(obj, "stage")?,
            count: num_field(obj, "count")?,
            mean_us: num_field(obj, "mean_us")?,
            p50_us: num_field(obj, "p50_us")?,
            p90_us: num_field(obj, "p90_us")?,
            p99_us: num_field(obj, "p99_us")?,
            max_us: num_field(obj, "max_us")?,
        });
        rest = &rest[close + 1..];
    }
    Some(StatsSnapshot {
        requests,
        dropped,
        shed,
        degraded,
        faults,
        stages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StatsSnapshot {
        StatsSnapshot {
            requests: 42,
            dropped: 1,
            shed: 7,
            degraded: 3,
            faults: 2,
            stages: vec![
                StageStats {
                    stage: "parse".into(),
                    count: 42,
                    mean_us: 3.25,
                    p50_us: 3,
                    p90_us: 5,
                    p99_us: 9,
                    max_us: 12,
                },
                StageStats {
                    stage: "total".into(),
                    count: 42,
                    mean_us: 210.0,
                    p50_us: 200,
                    p90_us: 280,
                    p99_us: 310,
                    max_us: 333,
                },
            ],
        }
    }

    #[test]
    fn json_roundtrips_through_the_parser() {
        let snap = sample();
        let parsed = parse_stats_json(&snap.render_json()).unwrap();
        assert_eq!(parsed.requests, snap.requests);
        assert_eq!(parsed.dropped, snap.dropped);
        assert_eq!(parsed.shed, 7);
        assert_eq!(parsed.degraded, 3);
        assert_eq!(parsed.faults, 2);
        assert_eq!(parsed.stages.len(), 2);
        assert_eq!(parsed.stage("parse").unwrap().p90_us, 5);
        assert!((parsed.stage("parse").unwrap().mean_us - 3.25).abs() < 1e-9);
        assert_eq!(parsed.stage("total").unwrap().max_us, 333);
    }

    #[test]
    fn empty_snapshot_renders_and_parses() {
        let snap = StatsSnapshot::default();
        let parsed = parse_stats_json(&snap.render_json()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn prometheus_format_has_quantiles_counts_and_counters() {
        let text = sample().render_prometheus();
        assert!(text.contains("# TYPE etude_stage_latency_microseconds summary"));
        assert!(
            text.contains("etude_stage_latency_microseconds{stage=\"parse\",quantile=\"0.9\"} 5")
        );
        assert!(text.contains("etude_stage_latency_microseconds_count{stage=\"total\"} 42"));
        assert!(text.contains("etude_requests_total 42"));
        assert!(text.contains("etude_spans_dropped_total 1"));
        // sum = mean * count (136.5 here), rendered as an integer
        assert!(text.contains("etude_stage_latency_microseconds_sum{stage=\"parse\"} 136"));
    }

    #[test]
    fn table_lists_every_stage() {
        let text = sample().render_table();
        assert!(text.contains("stage"));
        assert!(text.contains("parse"));
        assert!(text.contains("total"));
        assert_eq!(text.lines().count(), 4, "header, rule, two stages");
    }

    #[test]
    fn garbage_does_not_parse() {
        assert!(parse_stats_json("hello").is_none());
        assert!(parse_stats_json("{}").is_none());
    }

    #[test]
    fn v1_documents_without_counters_still_parse() {
        // A document from before shed/degraded/faults existed.
        let old = "{\n  \"requests\": 5,\n  \"dropped\": 0,\n  \"stages\": [\n  ]\n}\n";
        let parsed = parse_stats_json(old).unwrap();
        assert_eq!(parsed.requests, 5);
        assert_eq!(parsed.shed, 0);
        assert_eq!(parsed.degraded, 0);
        assert_eq!(parsed.faults, 0);
    }

    #[test]
    fn prometheus_format_exposes_resilience_counters() {
        let text = sample().render_prometheus();
        assert!(text.contains("etude_requests_shed_total 7"));
        assert!(text.contains("etude_requests_degraded_total 3"));
        assert!(text.contains("etude_faults_injected_total 2"));
    }
}
