//! Tail-latency forensics: a bounded slowest-N-per-window exemplar
//! store.
//!
//! Quantiles say *that* the p99.9 is slow; an exemplar says *why*. The
//! serving layer brackets each request with [`ExemplarStore::begin`] /
//! [`ExemplarStore::offer`]: offers carry the request's complete stage
//! span set (the PR 4 trace shape) plus the delta of the profiler's
//! per-tag leaf counts across the request — what the process's CPU
//! attention was doing while this request was in flight. The store keeps
//! only the slowest [`SLOTS`] requests of the current time window
//! (older windows age out), so a post-hoc `/debug/slow` scrape shows
//! the freshest outliers with queue/poll/compute/write-stall
//! attribution, in Chrome `trace_event` JSON.
//!
//! Budget: like the span rings and the profiler, **zero steady-state
//! allocation** on the request path. Every slot is fixed-size and
//! preallocated at construction; `begin`/`offer` copy bounded arrays
//! under a mutex and never touch the heap. Rendering allocates freely —
//! it is the scrape path.

use crate::profile::{self, MAX_TAGS};
use crate::span::Stage;
use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// Exemplar slots kept per window — the "N" of slowest-N.
pub const SLOTS: usize = 8;

/// Stage spans one exemplar retains (the pipeline has 7 stages; one
/// spare for forward compatibility).
pub const MAX_STAGES: usize = 8;

/// Longest request-id prefix retained per exemplar.
pub const MAX_RID: usize = 64;

/// Default exemplar window length.
pub const DEFAULT_WINDOW: Duration = Duration::from_secs(10);

/// One row of [`ExemplarStore::snapshot`]: request id, total nanos,
/// and the retained `(stage, duration_nanos)` spans in offer order.
pub type ExemplarRow = (String, u64, Vec<(Stage, u64)>);

/// One retained slow request. Fixed-size so slot replacement is a copy.
#[derive(Clone)]
struct Slot {
    used: bool,
    /// Window bucket (store-epoch-relative) the request completed in.
    bucket: u64,
    total_nanos: u64,
    rid_len: u8,
    rid: [u8; MAX_RID],
    stages_len: u8,
    /// `(stage as u8, duration_nanos)` in offer order.
    stages: [(u8, u64); MAX_STAGES],
    /// Profiler leaf-sample deltas across the request, by `site id - 1`.
    leaf_delta: [u64; MAX_TAGS],
}

const EMPTY_SLOT: Slot = Slot {
    used: false,
    bucket: 0,
    total_nanos: 0,
    rid_len: 0,
    rid: [0; MAX_RID],
    stages_len: 0,
    stages: [(0, 0); MAX_STAGES],
    leaf_delta: [0; MAX_TAGS],
};

/// Stack-allocated begin marker: the profiler's leaf counts when the
/// request started, subtracted at offer time.
pub struct ExemplarMark {
    leaf: [u64; MAX_TAGS],
}

/// The bounded slowest-N-per-window store. One per [`crate::Recorder`].
pub struct ExemplarStore {
    epoch: Instant,
    window: Duration,
    slots: Mutex<Vec<Slot>>,
}

impl Default for ExemplarStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ExemplarStore {
    /// Creates a store with the default window.
    pub fn new() -> ExemplarStore {
        ExemplarStore::with_window(DEFAULT_WINDOW)
    }

    /// Creates a store with an explicit window length (clamped to at
    /// least 1 ms so bucket arithmetic stays sane).
    pub fn with_window(window: Duration) -> ExemplarStore {
        ExemplarStore {
            epoch: Instant::now(),
            window: window.max(Duration::from_millis(1)),
            slots: Mutex::new(vec![EMPTY_SLOT; SLOTS]),
        }
    }

    fn bucket_now(&self) -> u64 {
        (self.epoch.elapsed().as_nanos() / self.window.as_nanos().max(1)) as u64
    }

    /// A slot older than the previous window has aged out.
    fn expired(slot: &Slot, current: u64) -> bool {
        !slot.used || slot.bucket + 1 < current
    }

    /// Marks the start of a request: snapshots the profiler's leaf
    /// counts. Allocation-free (one fixed array copy under the
    /// profiler's fold lock).
    pub fn begin(&self) -> ExemplarMark {
        let mut mark = ExemplarMark {
            leaf: [0; MAX_TAGS],
        };
        profile::leaf_snapshot(&mut mark.leaf);
        mark
    }

    /// Offers a finished request. It is retained iff it ranks among the
    /// slowest of the current window: free/aged slots are claimed first,
    /// then the window's current minimum is displaced when
    /// `total_nanos` beats it. Allocation-free: bounded copies only
    /// (`rid` truncates to [`MAX_RID`] bytes, stages to
    /// [`MAX_STAGES`]).
    pub fn offer(&self, rid: &str, stages: &[(Stage, u64)], total_nanos: u64, mark: &ExemplarMark) {
        let current = self.bucket_now();
        let mut slots = self.slots.lock();
        // Claim order: an expired slot, else the cheapest displaceable
        // slot — previous-window entries go before current-window ones,
        // then by total — and only if this request beats it.
        let mut target: Option<usize> = None;
        for (i, slot) in slots.iter().enumerate() {
            if Self::expired(slot, current) {
                target = Some(i);
                break;
            }
        }
        if target.is_none() {
            let victim = slots
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| (s.bucket, s.total_nanos))
                .map(|(i, _)| i);
            target =
                victim.filter(|&i| slots[i].bucket < current || slots[i].total_nanos < total_nanos);
        }
        let Some(i) = target else { return };
        let slot = &mut slots[i];
        slot.used = true;
        slot.bucket = current;
        slot.total_nanos = total_nanos;
        let rid_bytes = rid.as_bytes();
        let n = rid_bytes.len().min(MAX_RID);
        slot.rid[..n].copy_from_slice(&rid_bytes[..n]);
        slot.rid_len = n as u8;
        let m = stages.len().min(MAX_STAGES);
        for (dst, &(stage, nanos)) in slot.stages.iter_mut().zip(&stages[..m]) {
            *dst = (stage as u8, nanos);
        }
        slot.stages_len = m as u8;
        let mut now = [0u64; MAX_TAGS];
        profile::leaf_snapshot(&mut now);
        for ((delta, &at_end), &at_start) in slot.leaf_delta.iter_mut().zip(&now).zip(&mark.leaf) {
            *delta = at_end.saturating_sub(at_start);
        }
    }

    /// Live (non-aged) exemplars, slowest first, as
    /// `(rid, total_nanos, stage spans)` rows. For tests and reports.
    pub fn snapshot(&self) -> Vec<ExemplarRow> {
        let current = self.bucket_now();
        let slots = self.slots.lock();
        let mut rows: Vec<ExemplarRow> = slots
            .iter()
            .filter(|s| !Self::expired(s, current))
            .map(|s| {
                let rid = String::from_utf8_lossy(&s.rid[..s.rid_len as usize]).into_owned();
                let stages = s.stages[..s.stages_len as usize]
                    .iter()
                    .filter_map(|&(code, nanos)| Some((Stage::from_u8(code)?, nanos)))
                    .collect();
                (rid, s.total_nanos, stages)
            })
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.1));
        rows
    }

    /// Renders the live exemplars as Chrome `trace_event` JSON (same
    /// dialect as [`crate::trace::TraceCollector::to_chrome_json`]):
    /// one process row per exemplar, the `total` span enclosing the
    /// component stages tiled cumulatively, and the profiler leaf deltas
    /// as args on the total span.
    pub fn render_chrome_json(&self) -> String {
        let us = |nanos: u64| nanos as f64 / 1_000.0;
        let current = self.bucket_now();
        let slots = self.slots.lock();
        let mut live: Vec<&Slot> = slots
            .iter()
            .filter(|s| !Self::expired(s, current))
            .collect();
        live.sort_by_key(|s| std::cmp::Reverse(s.total_nanos));
        let mut out = String::with_capacity(1024 + live.len() * 512);
        out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
        let mut first = true;
        let mut push = |out: &mut String, ev: String| {
            if !std::mem::take(&mut first) {
                out.push_str(",\n");
            }
            out.push_str(&ev);
        };
        for (row, slot) in live.iter().enumerate() {
            let rid = String::from_utf8_lossy(&slot.rid[..slot.rid_len as usize]).into_owned();
            let rid = rid.replace(['"', '\\'], "_");
            push(
                &mut out,
                format!(
                    "{{\"ph\": \"M\", \"pid\": {row}, \"name\": \"process_name\", \
                     \"args\": {{\"name\": \"slow exemplar {row} ({}us)\"}}}}",
                    slot.total_nanos / 1_000
                ),
            );
            let mut profile_args = String::new();
            for (i, &delta) in slot.leaf_delta.iter().enumerate() {
                if delta == 0 {
                    continue;
                }
                let Some(name) = profile::leaf_name(i) else {
                    continue;
                };
                if !profile_args.is_empty() {
                    profile_args.push_str(", ");
                }
                profile_args.push_str(&format!("\"{}\": {delta}", name.replace('"', "_")));
            }
            push(
                &mut out,
                format!(
                    "{{\"ph\": \"X\", \"name\": \"total\", \"cat\": \"exemplar\", \
                     \"pid\": {row}, \"tid\": 0, \"ts\": 0.000, \"dur\": {:.3}, \
                     \"args\": {{\"rid\": \"{rid}\", \"window\": {}, \
                     \"profile_leaf_samples\": {{{profile_args}}}}}}}",
                    us(slot.total_nanos),
                    slot.bucket,
                ),
            );
            // Component stages tile cumulatively inside the total, in
            // pipeline order (the recorded order), skipping the total
            // span itself.
            let mut at = 0u64;
            for &(code, nanos) in &slot.stages[..slot.stages_len as usize] {
                let Some(stage) = Stage::from_u8(code) else {
                    continue;
                };
                if stage == Stage::Total {
                    continue;
                }
                push(
                    &mut out,
                    format!(
                        "{{\"ph\": \"X\", \"name\": \"{}\", \"cat\": \"exemplar\", \
                         \"pid\": {row}, \"tid\": 0, \"ts\": {:.3}, \"dur\": {:.3}}}",
                        stage.name(),
                        us(at),
                        us(nanos),
                    ),
                );
                at += nanos;
            }
        }
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stages(parse: u64, queue: u64, inf: u64) -> Vec<(Stage, u64)> {
        vec![
            (Stage::Parse, parse),
            (Stage::Queue, queue),
            (Stage::Inference, inf),
            (Stage::Total, parse + queue + inf),
        ]
    }

    #[test]
    fn slowest_requests_displace_faster_ones() {
        let store = ExemplarStore::new();
        for i in 0..SLOTS as u64 + 4 {
            let mark = store.begin();
            let total = 1_000 * (i + 1);
            store.offer(
                &format!("req-{i}"),
                &stages(100, 200, total - 300),
                total,
                &mark,
            );
        }
        let rows = store.snapshot();
        assert_eq!(rows.len(), SLOTS, "store is bounded");
        // The fastest 4 offers were displaced; the slowest survive,
        // slowest first.
        assert_eq!(rows[0].0, format!("req-{}", SLOTS + 3));
        assert!(rows.iter().all(|r| r.1 > 4_000));
        assert!(rows.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn fast_requests_do_not_displace_slow_ones() {
        let store = ExemplarStore::new();
        for i in 0..SLOTS as u64 {
            let mark = store.begin();
            store.offer("slow", &stages(0, 0, 9_000_000), 9_000_000 + i, &mark);
        }
        let mark = store.begin();
        store.offer("fast", &stages(0, 0, 10), 10, &mark);
        assert!(store.snapshot().iter().all(|r| r.0 == "slow"));
    }

    #[test]
    fn old_windows_age_out() {
        let store = ExemplarStore::with_window(Duration::from_millis(5));
        let mark = store.begin();
        store.offer("early", &stages(1, 1, 1), 1_000_000_000, &mark);
        assert_eq!(store.snapshot().len(), 1);
        // Two windows later the exemplar is gone and its slot reusable
        // by an arbitrarily fast request.
        std::thread::sleep(Duration::from_millis(12));
        assert!(store.snapshot().is_empty(), "aged exemplar still served");
        let mark = store.begin();
        store.offer("late", &stages(1, 1, 1), 3, &mark);
        let rows = store.snapshot();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, "late");
    }

    #[test]
    fn stage_spans_round_trip() {
        let store = ExemplarStore::new();
        let mark = store.begin();
        store.offer("rt", &stages(100, 2_000, 30_000), 32_100, &mark);
        let rows = store.snapshot();
        assert_eq!(rows[0].2.len(), 4);
        assert_eq!(rows[0].2[1], (Stage::Queue, 2_000));
    }

    #[test]
    fn chrome_export_is_wellformed_and_tiled() {
        let store = ExemplarStore::new();
        let mark = store.begin();
        store.offer("chrome-test", &stages(1_000, 2_000, 3_000), 6_000, &mark);
        let json = store.render_chrome_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"chrome-test\""));
        assert!(json.contains("\"queue\""));
        assert!(json.contains("\"inference\""));
        let depth = json.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0, "unbalanced JSON:\n{json}");
    }

    #[test]
    fn long_rids_truncate_instead_of_allocating() {
        let store = ExemplarStore::new();
        let mark = store.begin();
        let long = "x".repeat(500);
        store.offer(&long, &stages(1, 1, 1), 100, &mark);
        let rows = store.snapshot();
        assert_eq!(rows[0].0.len(), MAX_RID);
    }
}
