//! Rolling time-window stage metrics: N fixed-duration buckets of
//! per-stage HDR histograms, constant memory, zero steady-state
//! allocation.
//!
//! The cumulative aggregate answers "what happened since boot"; fleet
//! debugging needs "what happened in the last few seconds, second by
//! second" — a crashed pod or a fault window is invisible in a
//! since-boot histogram but obvious in a bucketed one. Every structure
//! here is preallocated at construction: rotation *resets histograms in
//! place* (the counting-allocator test covers this path), so recording
//! into windows costs the same as recording into the cumulative
//! aggregate.
//!
//! Buckets are indexed by absolute bucket number since the recorder's
//! epoch (`elapsed / bucket_duration`), and a slot is lazily reclaimed
//! when a newer bucket number maps onto it — a pod idle for longer than
//! the whole window simply presents stale slots, which snapshots filter
//! by recency.

use crate::span::Stage;
use etude_metrics::hdr::Histogram;
use std::time::Duration;

/// Shape of the rolling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Duration of one bucket.
    pub bucket: Duration,
    /// Number of buckets retained (the window spans `bucket × buckets`).
    pub buckets: usize,
}

impl Default for WindowConfig {
    /// Eight one-second buckets — matches the load generator's tick
    /// resolution with enough depth for a short burn-rate window.
    fn default() -> WindowConfig {
        WindowConfig {
            bucket: Duration::from_secs(1),
            buckets: 8,
        }
    }
}

/// A slot never written to carries this marker index.
const EMPTY: u64 = u64::MAX;

struct Slot {
    /// Absolute bucket number currently stored here (`EMPTY` = unused).
    index: u64,
    stages: [Histogram; Stage::ALL.len()],
    requests: u64,
    shed: u64,
    degraded: u64,
    faults: u64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            index: EMPTY,
            stages: std::array::from_fn(|_| Histogram::new()),
            requests: 0,
            shed: 0,
            degraded: 0,
            faults: 0,
        }
    }

    /// Reuses this slot for a new bucket, in place (no allocation).
    fn reset_for(&mut self, index: u64) {
        self.index = index;
        for h in &mut self.stages {
            h.reset();
        }
        self.requests = 0;
        self.shed = 0;
        self.degraded = 0;
        self.faults = 0;
    }
}

/// The rolling window: a fixed ring of per-bucket stage histograms.
pub struct StageWindows {
    config: WindowConfig,
    slots: Vec<Slot>,
}

impl StageWindows {
    /// Preallocates the full ring.
    pub fn new(config: WindowConfig) -> StageWindows {
        let buckets = config.buckets.max(2);
        StageWindows {
            config: WindowConfig {
                bucket: config.bucket.max(Duration::from_millis(1)),
                buckets,
            },
            slots: (0..buckets).map(|_| Slot::new()).collect(),
        }
    }

    /// The (possibly clamped) configuration in effect.
    pub fn config(&self) -> WindowConfig {
        self.config
    }

    /// Maps elapsed-since-epoch to an absolute bucket number.
    pub fn bucket_index(&self, elapsed: Duration) -> u64 {
        (elapsed.as_nanos() / self.config.bucket.as_nanos().max(1)) as u64
    }

    fn slot_for(&mut self, index: u64) -> &mut Slot {
        let at = (index % self.slots.len() as u64) as usize;
        let slot = &mut self.slots[at];
        if slot.index != index {
            slot.reset_for(index);
        }
        slot
    }

    /// Records one stage sample into bucket `index`. `total` samples
    /// also count a request for the bucket.
    pub fn record(&mut self, index: u64, stage: Stage, micros: u64) {
        let slot = self.slot_for(index);
        slot.stages[stage as u8 as usize].record(micros);
        if stage == Stage::Total {
            slot.requests += 1;
        }
    }

    /// Adds counter deltas (shed/degraded/faults since the last fold)
    /// to bucket `index`.
    pub fn add_counters(&mut self, index: u64, shed: u64, degraded: u64, faults: u64) {
        if shed == 0 && degraded == 0 && faults == 0 {
            return;
        }
        let slot = self.slot_for(index);
        slot.shed += shed;
        slot.degraded += degraded;
        slot.faults += faults;
    }

    /// Snapshots the buckets still inside the window ending at
    /// `current` (inclusive), oldest first.
    pub fn snapshot(&self, current: u64) -> WindowSnapshot {
        let oldest = (current + 1).saturating_sub(self.slots.len() as u64);
        let mut buckets: Vec<WindowBucket> = self
            .slots
            .iter()
            .filter(|s| s.index != EMPTY && s.index >= oldest && s.index <= current)
            .map(|s| WindowBucket {
                index: s.index,
                requests: s.requests,
                shed: s.shed,
                degraded: s.degraded,
                faults: s.faults,
                lat: Stage::ALL
                    .iter()
                    .filter_map(|&stage| {
                        let h = &s.stages[stage as u8 as usize];
                        if h.is_empty() {
                            return None;
                        }
                        Some(WindowStage {
                            stage: stage.name().to_string(),
                            count: h.count(),
                            p50_us: h.p50(),
                            p99_us: h.p99(),
                        })
                    })
                    .collect(),
            })
            .collect();
        buckets.sort_by_key(|b| b.index);
        WindowSnapshot {
            bucket_millis: self.config.bucket.as_millis() as u64,
            buckets,
        }
    }
}

/// Per-stage quantiles of one bucket (wire form).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowStage {
    /// Stage label.
    pub stage: String,
    /// Samples in the bucket.
    pub count: u64,
    /// Median within the bucket.
    pub p50_us: u64,
    /// 99th percentile within the bucket.
    pub p99_us: u64,
}

/// One rolled-up bucket (wire form).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WindowBucket {
    /// Absolute bucket number since the recorder's epoch.
    pub index: u64,
    /// Requests completing in the bucket.
    pub requests: u64,
    /// Requests shed in the bucket.
    pub shed: u64,
    /// Degraded responses in the bucket.
    pub degraded: u64,
    /// Injected faults firing in the bucket.
    pub faults: u64,
    /// Stage quantiles (non-empty stages only, pipeline order).
    pub lat: Vec<WindowStage>,
}

impl WindowBucket {
    /// Encodes the stage list as `stage:count:p50:p99` tokens — a flat
    /// string keeps the `/stats` JSON free of nested objects (the
    /// hand-rolled parser stays simple).
    pub fn encode_lat(&self) -> String {
        self.lat
            .iter()
            .map(|s| format!("{}:{}:{}:{}", s.stage, s.count, s.p50_us, s.p99_us))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Decodes [`WindowBucket::encode_lat`] output (bad tokens skipped).
    pub fn decode_lat(encoded: &str) -> Vec<WindowStage> {
        encoded
            .split_whitespace()
            .filter_map(|token| {
                let mut parts = token.split(':');
                Some(WindowStage {
                    stage: parts.next()?.to_string(),
                    count: parts.next()?.parse().ok()?,
                    p50_us: parts.next()?.parse().ok()?,
                    p99_us: parts.next()?.parse().ok()?,
                })
            })
            .collect()
    }
}

/// A point-in-time view of the whole window.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WindowSnapshot {
    /// Bucket duration in milliseconds.
    pub bucket_millis: u64,
    /// Live buckets, oldest first.
    pub buckets: Vec<WindowBucket>,
}

impl WindowSnapshot {
    /// Merges two window views bucket-by-bucket, keyed on the absolute
    /// bucket index. Buckets present on only one side copy through
    /// verbatim — so merging *disjoint* windows (pods that were live at
    /// different times) is exact. Buckets present on both sides sum
    /// their counters and combine per-stage rows: counts sum, quantiles
    /// take the max — a conservative tail bound, since an exact
    /// quantile merge would need the underlying histograms, which the
    /// window wire form deliberately omits.
    pub fn merge(&self, other: &WindowSnapshot) -> WindowSnapshot {
        let mut buckets: Vec<WindowBucket> = self.buckets.clone();
        for b in &other.buckets {
            match buckets.iter_mut().find(|mine| mine.index == b.index) {
                None => buckets.push(b.clone()),
                Some(mine) => {
                    mine.requests += b.requests;
                    mine.shed += b.shed;
                    mine.degraded += b.degraded;
                    mine.faults += b.faults;
                    for stage in &b.lat {
                        match mine.lat.iter_mut().find(|s| s.stage == stage.stage) {
                            None => mine.lat.push(stage.clone()),
                            Some(s) => {
                                s.count += stage.count;
                                s.p50_us = s.p50_us.max(stage.p50_us);
                                s.p99_us = s.p99_us.max(stage.p99_us);
                            }
                        }
                    }
                }
            }
        }
        buckets.sort_by_key(|b| b.index);
        WindowSnapshot {
            bucket_millis: self.bucket_millis.max(other.bucket_millis),
            buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn windows(buckets: usize) -> StageWindows {
        StageWindows::new(WindowConfig {
            bucket: Duration::from_secs(1),
            buckets,
        })
    }

    #[test]
    fn samples_land_in_their_bucket() {
        let mut w = windows(4);
        w.record(0, Stage::Total, 100);
        w.record(0, Stage::Inference, 80);
        w.record(2, Stage::Total, 300);
        let snap = w.snapshot(2);
        assert_eq!(snap.buckets.len(), 2);
        assert_eq!(snap.buckets[0].index, 0);
        assert_eq!(snap.buckets[0].requests, 1);
        assert_eq!(snap.buckets[1].index, 2);
        let total = &snap.buckets[1].lat[0];
        assert_eq!(total.stage, "total");
        assert_eq!(total.p50_us, 300);
    }

    #[test]
    fn old_buckets_rotate_out() {
        let mut w = windows(3);
        for i in 0..6 {
            w.record(i, Stage::Total, 10 * (i + 1));
        }
        let snap = w.snapshot(5);
        let indices: Vec<u64> = snap.buckets.iter().map(|b| b.index).collect();
        assert_eq!(indices, vec![3, 4, 5], "only the last 3 buckets survive");
    }

    #[test]
    fn stale_slots_are_filtered_from_snapshots() {
        let mut w = windows(4);
        w.record(0, Stage::Total, 10);
        // A long idle gap: bucket 0's slot was never reused but is far
        // outside the window ending at 100.
        let snap = w.snapshot(100);
        assert!(snap.buckets.is_empty());
    }

    #[test]
    fn counters_attach_to_buckets() {
        let mut w = windows(4);
        w.add_counters(1, 2, 1, 3);
        w.add_counters(1, 1, 0, 0);
        let snap = w.snapshot(1);
        assert_eq!(snap.buckets.len(), 1);
        assert_eq!(snap.buckets[0].shed, 3);
        assert_eq!(snap.buckets[0].degraded, 1);
        assert_eq!(snap.buckets[0].faults, 3);
    }

    #[test]
    fn bucket_index_uses_the_configured_duration() {
        let w = StageWindows::new(WindowConfig {
            bucket: Duration::from_millis(250),
            buckets: 8,
        });
        assert_eq!(w.bucket_index(Duration::from_millis(0)), 0);
        assert_eq!(w.bucket_index(Duration::from_millis(249)), 0);
        assert_eq!(w.bucket_index(Duration::from_millis(1_000)), 4);
    }

    #[test]
    fn rollover_exactly_at_the_window_boundary_reclaims_the_slot() {
        let mut w = windows(4);
        w.record(0, Stage::Total, 111);
        // Bucket 4 maps onto bucket 0's slot: one full window later,
        // exactly at the boundary. The old samples must vanish, not
        // bleed into the new bucket.
        w.record(4, Stage::Total, 222);
        let snap = w.snapshot(4);
        let indices: Vec<u64> = snap.buckets.iter().map(|b| b.index).collect();
        assert_eq!(indices, vec![4], "bucket 0 left the window at t=4");
        assert_eq!(snap.buckets[0].requests, 1);
        assert_eq!(snap.buckets[0].lat[0].p50_us, 222, "no stale samples");
        // The boundary instant itself maps to the *new* bucket.
        assert_eq!(w.bucket_index(Duration::from_secs(4)), 4);
        assert_eq!(w.bucket_index(Duration::from_nanos(3_999_999_999)), 3);
    }

    #[test]
    fn disjoint_window_merge_is_exact_concatenation() {
        let mut early = windows(4);
        early.record(0, Stage::Total, 100);
        early.record(1, Stage::Total, 150);
        let mut late = windows(4);
        late.record(7, Stage::Total, 900);
        late.add_counters(8, 2, 0, 1);
        let a = early.snapshot(1);
        let b = late.snapshot(8);
        let merged = a.merge(&b);
        let indices: Vec<u64> = merged.buckets.iter().map(|x| x.index).collect();
        assert_eq!(indices, vec![0, 1, 7, 8], "sorted union, nothing summed");
        assert_eq!(merged.buckets[2].lat[0].p50_us, 900);
        assert_eq!(merged.buckets[3].shed, 2);
        assert_eq!(b.merge(&a), merged, "merge is symmetric on disjoint input");
        // Overlapping buckets sum counts and take the conservative
        // quantile bound.
        let mut other = windows(4);
        other.record(1, Stage::Total, 50);
        let overlapped = a.merge(&other.snapshot(1));
        let b1 = overlapped.buckets.iter().find(|x| x.index == 1).unwrap();
        assert_eq!(b1.requests, 2);
        assert_eq!(b1.lat[0].count, 2);
        let p99_150 = a.buckets[1].lat[0].p99_us;
        assert_eq!(b1.lat[0].p99_us, p99_150, "max of the two sides' p99");
    }

    #[test]
    fn zero_sample_buckets_answer_percentiles_without_lat_rows() {
        let mut w = windows(4);
        // A bucket created by counters alone holds zero latency samples.
        w.add_counters(2, 1, 0, 0);
        let snap = w.snapshot(2);
        assert_eq!(snap.buckets.len(), 1);
        assert!(snap.buckets[0].lat.is_empty(), "empty stages are omitted");
        // Quantiles of an empty histogram are defined (zero), so even a
        // direct query on the backing slot cannot panic.
        let h = Histogram::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.max(), 0);
        assert!(h.is_empty());
        // And a fully empty window snapshots to nothing at all.
        let empty = windows(4).snapshot(10);
        assert!(empty.buckets.is_empty());
        assert!(empty.merge(&snap).buckets == snap.buckets, "identity merge");
    }

    #[test]
    fn lat_encoding_roundtrips() {
        let bucket = WindowBucket {
            index: 5,
            requests: 10,
            shed: 0,
            degraded: 0,
            faults: 0,
            lat: vec![
                WindowStage {
                    stage: "inference".into(),
                    count: 10,
                    p50_us: 420,
                    p99_us: 990,
                },
                WindowStage {
                    stage: "total".into(),
                    count: 10,
                    p50_us: 500,
                    p99_us: 1_200,
                },
            ],
        };
        let encoded = bucket.encode_lat();
        assert_eq!(encoded, "inference:10:420:990 total:10:500:1200");
        assert_eq!(WindowBucket::decode_lat(&encoded), bucket.lat);
        assert!(WindowBucket::decode_lat("").is_empty());
        assert!(WindowBucket::decode_lat("garbage").is_empty());
    }
}
