//! The per-server span recorder: thread-ring registry, RAII span guards
//! and aggregation into per-stage histograms.

use crate::ring::{SpanRing, DEFAULT_CAPACITY};
use crate::span::{SpanRecord, Stage};
use crate::stats::{StageStats, StatsSnapshot};
use etude_metrics::hdr::Histogram;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Each thread's rings, keyed by recorder id. Tiny (one entry per
    /// live recorder this thread has written to), scanned linearly.
    static THREAD_RINGS: RefCell<Vec<(u64, Arc<SpanRing>)>> = const { RefCell::new(Vec::new()) };
}

/// Cumulative aggregation state, folded from the rings on demand.
struct Aggregate {
    stages: [Histogram; Stage::ALL.len()],
    dropped: u64,
    /// Raw records retained for per-request joins (tests, the
    /// latency-breakdown bench). Only populated while retention is on.
    retained: Vec<SpanRecord>,
}

/// Records server-side stage spans into per-thread rings and aggregates
/// them into per-stage HDR histograms.
///
/// One recorder per server. Recording is lock-free and allocation-free
/// in steady state (the first span a thread records registers its ring,
/// which allocates once); aggregation ([`Recorder::snapshot`]) takes a
/// lock but runs off the request path, driven by `/metrics`, `/stats`
/// or an end-of-run scrape.
pub struct Recorder {
    id: u64,
    ring_capacity: usize,
    rings: Mutex<Vec<Arc<SpanRing>>>,
    agg: Mutex<Aggregate>,
    retain: AtomicBool,
    // Resilience counters: cheap atomics bumped on the request path,
    // folded into every snapshot (and from there into /stats and
    // /metrics).
    shed: AtomicU64,
    degraded: AtomicU64,
    faults: AtomicU64,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// Creates a recorder with the default per-thread ring capacity.
    pub fn new() -> Recorder {
        Recorder::with_ring_capacity(DEFAULT_CAPACITY)
    }

    /// Creates a recorder with an explicit per-thread ring capacity.
    pub fn with_ring_capacity(ring_capacity: usize) -> Recorder {
        Recorder {
            id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
            ring_capacity,
            rings: Mutex::new(Vec::new()),
            agg: Mutex::new(Aggregate {
                stages: std::array::from_fn(|_| Histogram::new()),
                dropped: 0,
                retained: Vec::new(),
            }),
            retain: AtomicBool::new(false),
            shed: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            faults: AtomicU64::new(0),
        }
    }

    /// Counts one request shed with a 503 because the queue was full.
    pub fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request answered from the degraded fallback path.
    pub fn note_degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one server-side injected fault firing.
    pub fn note_fault(&self) {
        self.faults.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests shed so far.
    pub fn shed_count(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Degraded responses served so far.
    pub fn degraded_count(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Turns raw-record retention on or off. While on, every record that
    /// reaches aggregation is also kept verbatim for [`Recorder::take_records`].
    pub fn set_record_retention(&self, on: bool) {
        self.retain.store(on, Ordering::Relaxed);
    }

    /// Records one finished span.
    pub fn record(&self, request_id: u64, stage: Stage, duration_nanos: u64) {
        self.with_ring(|ring| {
            ring.push(SpanRecord {
                request_id,
                stage,
                duration_nanos,
            })
        });
    }

    /// Starts a span; the guard records it when dropped (or finished).
    pub fn span(&self, request_id: u64, stage: Stage) -> SpanGuard<'_> {
        SpanGuard {
            recorder: self,
            request_id,
            stage,
            start: Instant::now(),
            armed: true,
        }
    }

    /// Runs `f` with this thread's ring, registering one on first use.
    fn with_ring<R>(&self, f: impl FnOnce(&SpanRing) -> R) -> R {
        THREAD_RINGS.with(|cell| {
            let mut rings = cell.borrow_mut();
            if let Some((_, ring)) = rings.iter().find(|(id, _)| *id == self.id) {
                return f(ring);
            }
            // Cold path: first span from this thread. Drop rings of dead
            // recorders (we hold their last Arc), then register.
            rings.retain(|(_, ring)| Arc::strong_count(ring) > 1);
            let ring = Arc::new(SpanRing::new(self.ring_capacity));
            self.rings.lock().push(Arc::clone(&ring));
            rings.push((self.id, Arc::clone(&ring)));
            f(&ring)
        })
    }

    /// Folds all ring contents into the cumulative aggregate.
    fn fold(&self) {
        let rings: Vec<Arc<SpanRing>> = self.rings.lock().clone();
        let mut agg = self.agg.lock();
        let retain = self.retain.load(Ordering::Relaxed);
        for ring in rings {
            let agg = &mut *agg;
            agg.dropped += ring.drain(|record| {
                agg.stages[record.stage as u8 as usize].record(record.duration_micros());
                if retain {
                    agg.retained.push(record);
                }
            });
        }
    }

    /// Aggregates everything recorded so far into per-stage statistics.
    pub fn snapshot(&self) -> StatsSnapshot {
        self.fold();
        let agg = self.agg.lock();
        let stages = Stage::ALL
            .iter()
            .filter_map(|&stage| {
                let h = &agg.stages[stage as u8 as usize];
                if h.is_empty() {
                    return None;
                }
                Some(StageStats {
                    stage: stage.name().to_string(),
                    count: h.count(),
                    mean_us: h.mean(),
                    p50_us: h.p50(),
                    p90_us: h.p90(),
                    p99_us: h.p99(),
                    max_us: h.max(),
                })
            })
            .collect();
        StatsSnapshot {
            requests: agg.stages[Stage::Total as u8 as usize].count(),
            dropped: agg.dropped,
            shed: self.shed.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            faults: self.faults.load(Ordering::Relaxed),
            stages,
        }
    }

    /// Drains and returns the raw records retained since retention was
    /// enabled (folding the rings first).
    pub fn take_records(&self) -> Vec<SpanRecord> {
        self.fold();
        std::mem::take(&mut self.agg.lock().retained)
    }
}

/// RAII guard measuring one stage; records on drop.
pub struct SpanGuard<'a> {
    recorder: &'a Recorder,
    request_id: u64,
    stage: Stage,
    start: Instant,
    armed: bool,
}

impl SpanGuard<'_> {
    /// Ends the span now (instead of at scope exit).
    pub fn finish(mut self) {
        self.record_now();
    }

    /// Abandons the span without recording it.
    pub fn cancel(mut self) {
        self.armed = false;
    }

    fn record_now(&mut self) {
        if self.armed {
            self.armed = false;
            let nanos = self.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            self.recorder.record(self.request_id, self.stage, nanos);
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.record_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn recorded_spans_show_up_in_the_snapshot() {
        let r = Recorder::new();
        r.record(1, Stage::Parse, 5_000);
        r.record(1, Stage::Inference, 250_000);
        r.record(1, Stage::Total, 260_000);
        let snap = r.snapshot();
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.dropped, 0);
        let parse = snap.stage("parse").unwrap();
        assert_eq!(parse.count, 1);
        assert_eq!(parse.p50_us, 5);
        assert!(snap.stage("queue").is_none(), "unrecorded stages omitted");
    }

    #[test]
    fn snapshots_are_cumulative_across_folds() {
        let r = Recorder::new();
        r.record(1, Stage::Total, 1_000);
        assert_eq!(r.snapshot().requests, 1);
        r.record(2, Stage::Total, 1_000);
        assert_eq!(r.snapshot().requests, 2);
    }

    #[test]
    fn guards_record_elapsed_time() {
        let r = Recorder::new();
        {
            let _g = r.span(7, Stage::Inference);
            std::thread::sleep(Duration::from_millis(2));
        }
        let snap = r.snapshot();
        let inf = snap.stage("inference").unwrap();
        assert!(inf.max_us >= 1_000, "slept 2ms, saw {}us", inf.max_us);
    }

    #[test]
    fn cancelled_guards_record_nothing() {
        let r = Recorder::new();
        r.span(1, Stage::Parse).cancel();
        assert!(r.snapshot().stages.is_empty());
    }

    #[test]
    fn spans_from_many_threads_merge() {
        let r = Arc::new(Recorder::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    r.record(t * 1_000 + i, Stage::Total, 1_000_000 * (t + 1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = r.snapshot();
        assert_eq!(snap.requests, 400);
        let total = snap.stage("total").unwrap();
        assert_eq!(total.max_us, 4_000, "4ms recorded by the slowest thread");
    }

    #[test]
    fn retention_keeps_raw_records_for_joins() {
        let r = Recorder::new();
        r.set_record_retention(true);
        r.record(9, Stage::Parse, 100);
        r.record(9, Stage::Total, 300);
        let records = r.take_records();
        assert_eq!(records.len(), 2);
        assert!(records.iter().all(|rec| rec.request_id == 9));
        assert!(r.take_records().is_empty(), "take drains");
        // The aggregate still saw them.
        assert_eq!(r.snapshot().requests, 1);
    }

    #[test]
    fn resilience_counters_flow_into_snapshots() {
        let r = Recorder::new();
        r.note_shed();
        r.note_shed();
        r.note_degraded();
        r.note_fault();
        let snap = r.snapshot();
        assert_eq!(snap.shed, 2);
        assert_eq!(snap.degraded, 1);
        assert_eq!(snap.faults, 1);
        assert_eq!(r.shed_count(), 2);
        assert_eq!(r.degraded_count(), 1);
    }

    #[test]
    fn two_recorders_on_one_thread_stay_separate() {
        let a = Recorder::new();
        let b = Recorder::new();
        a.record(1, Stage::Total, 10);
        b.record(2, Stage::Total, 20);
        b.record(3, Stage::Total, 30);
        assert_eq!(a.snapshot().requests, 1);
        assert_eq!(b.snapshot().requests, 2);
    }
}
