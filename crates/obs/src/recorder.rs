//! The per-server span recorder: thread-ring registry, RAII span guards
//! and aggregation into per-stage histograms.

use crate::exemplar::ExemplarStore;
use crate::ring::{SpanRing, DEFAULT_CAPACITY};
use crate::span::{SpanRecord, Stage};
use crate::stats::{ReactorTelemetry, StageCounts, StageStats, StatsSnapshot};
use crate::trace::{span_hash, PodSpanRecord, TraceCtx};
use crate::window::{StageWindows, WindowConfig};
use etude_metrics::hdr::Histogram;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Each thread's rings, keyed by recorder id. Tiny (one entry per
    /// live recorder this thread has written to), scanned linearly.
    static THREAD_RINGS: RefCell<Vec<(u64, Arc<SpanRing>)>> = const { RefCell::new(Vec::new()) };
}

/// Cumulative aggregation state, folded from the rings on demand.
struct Aggregate {
    stages: [Histogram; Stage::ALL.len()],
    dropped: u64,
    /// Raw records retained for per-request joins (tests, the
    /// latency-breakdown bench). Only populated while retention is on.
    retained: Vec<SpanRecord>,
    /// Rolling time-window view fed by the same fold pass.
    windows: StageWindows,
    /// Counter values at the last fold, so deltas can be attributed to
    /// the window bucket they happened in.
    last_shed: u64,
    last_degraded: u64,
    last_faults: u64,
}

/// Records server-side stage spans into per-thread rings and aggregates
/// them into per-stage HDR histograms.
///
/// One recorder per server. Recording is lock-free and allocation-free
/// in steady state (the first span a thread records registers its ring,
/// which allocates once); aggregation ([`Recorder::snapshot`]) takes a
/// lock but runs off the request path, driven by `/metrics`, `/stats`
/// or an end-of-run scrape.
pub struct Recorder {
    id: u64,
    ring_capacity: usize,
    rings: Mutex<Vec<Arc<SpanRing>>>,
    agg: Mutex<Aggregate>,
    retain: AtomicBool,
    // Resilience counters: cheap atomics bumped on the request path,
    // folded into every snapshot (and from there into /stats and
    // /metrics).
    shed: AtomicU64,
    degraded: AtomicU64,
    faults: AtomicU64,
    // Overload-control counters (PR 10): 429 admission refusals and
    // browned-out 200s per ladder level (index 0 = quantized,
    // 1 = reduced-k, 2 = popularity fallback).
    refused: AtomicU64,
    brownout: [AtomicU64; 3],
    /// Admission-limit gauge in milli-units, updated by the serving
    /// layer whenever the AIMD controller adjusts.
    admission_limit_milli: AtomicU64,
    /// Pod identity in a fleet; `None` on standalone servers.
    pod: Option<u32>,
    /// Construction time: window buckets are numbered from here.
    epoch: Instant,
    /// Batcher queue depth gauge, updated by the serving layer.
    queue_depth: AtomicU64,
    /// While on, traced requests also append [`PodSpanRecord`]s for the
    /// post-run trace collector. Off (and allocation-free) by default.
    trace_retain: AtomicBool,
    traces: Mutex<Vec<PodSpanRecord>>,
    /// Slowest-requests-per-window forensics store (`/debug/slow`).
    exemplars: ExemplarStore,
    /// Optional probe filling [`StatsSnapshot::reactor`]; installed by
    /// the reactor serving tier, absent on thread-pool servers.
    reactor_probe: Mutex<Option<Box<dyn Fn() -> ReactorTelemetry + Send + Sync>>>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// Creates a recorder with the default per-thread ring capacity.
    pub fn new() -> Recorder {
        Recorder::with_ring_capacity(DEFAULT_CAPACITY)
    }

    /// Creates a recorder with an explicit per-thread ring capacity.
    pub fn with_ring_capacity(ring_capacity: usize) -> Recorder {
        Recorder {
            id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
            ring_capacity,
            rings: Mutex::new(Vec::new()),
            agg: Mutex::new(Aggregate {
                stages: std::array::from_fn(|_| Histogram::new()),
                dropped: 0,
                retained: Vec::new(),
                windows: StageWindows::new(WindowConfig::default()),
                last_shed: 0,
                last_degraded: 0,
                last_faults: 0,
            }),
            retain: AtomicBool::new(false),
            shed: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            refused: AtomicU64::new(0),
            brownout: std::array::from_fn(|_| AtomicU64::new(0)),
            admission_limit_milli: AtomicU64::new(0),
            pod: None,
            epoch: Instant::now(),
            queue_depth: AtomicU64::new(0),
            trace_retain: AtomicBool::new(false),
            traces: Mutex::new(Vec::new()),
            exemplars: ExemplarStore::new(),
            reactor_probe: Mutex::new(None),
        }
    }

    /// Creates a recorder carrying a fleet pod id (stamped into every
    /// snapshot and every retained trace span).
    pub fn with_pod(pod: u32) -> Recorder {
        let mut r = Recorder::new();
        r.pod = Some(pod);
        r
    }

    /// Replaces the rolling-window shape (default: 8 × 1 s buckets).
    /// Builder-style; call before the recorder starts receiving spans.
    pub fn with_window_config(self, config: WindowConfig) -> Recorder {
        self.agg.lock().windows = StageWindows::new(config);
        self
    }

    /// This recorder's pod id, when it has one.
    pub fn pod(&self) -> Option<u32> {
        self.pod
    }

    /// Updates the batcher queue depth gauge.
    pub fn set_queue_depth(&self, depth: u64) {
        self.queue_depth.store(depth, Ordering::Relaxed);
    }

    /// The last reported batcher queue depth.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// The slowest-requests exemplar store backing `/debug/slow`.
    pub fn exemplars(&self) -> &ExemplarStore {
        &self.exemplars
    }

    /// Installs (or clears) the probe the reactor tier uses to surface
    /// its event-loop telemetry in every snapshot.
    pub fn set_reactor_probe(
        &self,
        probe: Option<Box<dyn Fn() -> ReactorTelemetry + Send + Sync>>,
    ) {
        *self.reactor_probe.lock() = probe;
    }

    /// Counts one request shed with a 503 because the queue was full.
    pub fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request answered from the degraded fallback path.
    pub fn note_degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request refused with a 429 by admission control.
    pub fn note_refused(&self) {
        self.refused.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one browned-out 200 at ladder level 1 (quantized),
    /// 2 (reduced-k) or 3 (popularity fallback). Level 0 (exact) is
    /// implicit — it is simply a normal request — and out-of-range
    /// levels are ignored.
    pub fn note_brownout(&self, level: u8) {
        if (1..=3).contains(&level) {
            self.brownout[(level - 1) as usize].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Publishes the admission controller's current limit (milli-units)
    /// as a gauge.
    pub fn set_admission_limit_milli(&self, limit: u64) {
        self.admission_limit_milli.store(limit, Ordering::Relaxed);
    }

    /// Requests refused by admission control so far.
    pub fn refused_count(&self) -> u64 {
        self.refused.load(Ordering::Relaxed)
    }

    /// Browned-out 200s per ladder level (quantized, reduced-k,
    /// fallback).
    pub fn brownout_counts(&self) -> [u64; 3] {
        std::array::from_fn(|i| self.brownout[i].load(Ordering::Relaxed))
    }

    /// Counts one server-side injected fault firing.
    pub fn note_fault(&self) {
        self.faults.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests shed so far.
    pub fn shed_count(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Degraded responses served so far.
    pub fn degraded_count(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Turns raw-record retention on or off. While on, every record that
    /// reaches aggregation is also kept verbatim for [`Recorder::take_records`].
    pub fn set_record_retention(&self, on: bool) {
        self.retain.store(on, Ordering::Relaxed);
    }

    /// Turns trace-span retention on or off. While on, the serving
    /// layer appends a [`PodSpanRecord`] per traced stage via
    /// [`Recorder::note_pod_stage`]; off (the default), traced requests
    /// cost one relaxed load and nothing else.
    pub fn set_trace_retention(&self, on: bool) {
        self.trace_retain.store(on, Ordering::Relaxed);
    }

    /// Whether trace-span retention is currently on.
    pub fn trace_retention_on(&self) -> bool {
        self.trace_retain.load(Ordering::Relaxed)
    }

    /// Retains one pod-side stage span under the propagated context
    /// `ctx` (no-op unless trace retention is on). The span's own id is
    /// derived deterministically from `(trace, parent, stage)`, so
    /// collectors can re-derive it.
    pub fn note_pod_stage(&self, ctx: &TraceCtx, stage: Stage, duration_nanos: u64) {
        if !self.trace_retention_on() {
            return;
        }
        self.traces.lock().push(PodSpanRecord {
            trace_id: ctx.trace_id,
            parent_span: ctx.span_id,
            span_id: span_hash(ctx.trace_id, ctx.span_id, stage as u8 as u64),
            pod: self.pod.unwrap_or(0),
            stage,
            duration_nanos,
        });
    }

    /// Drains the retained trace spans for post-run assembly.
    pub fn take_traces(&self) -> Vec<PodSpanRecord> {
        std::mem::take(&mut *self.traces.lock())
    }

    /// Records one finished span.
    pub fn record(&self, request_id: u64, stage: Stage, duration_nanos: u64) {
        self.with_ring(|ring| {
            ring.push(SpanRecord {
                request_id,
                stage,
                duration_nanos,
            })
        });
    }

    /// Starts a span; the guard records it when dropped (or finished).
    pub fn span(&self, request_id: u64, stage: Stage) -> SpanGuard<'_> {
        SpanGuard {
            recorder: self,
            request_id,
            stage,
            start: Instant::now(),
            armed: true,
        }
    }

    /// Runs `f` with this thread's ring, registering one on first use.
    fn with_ring<R>(&self, f: impl FnOnce(&SpanRing) -> R) -> R {
        THREAD_RINGS.with(|cell| {
            let mut rings = cell.borrow_mut();
            if let Some((_, ring)) = rings.iter().find(|(id, _)| *id == self.id) {
                return f(ring);
            }
            // Cold path: first span from this thread. Drop rings of dead
            // recorders (we hold their last Arc), then register.
            rings.retain(|(_, ring)| Arc::strong_count(ring) > 1);
            let ring = Arc::new(SpanRing::new(self.ring_capacity));
            self.rings.lock().push(Arc::clone(&ring));
            rings.push((self.id, Arc::clone(&ring)));
            f(&ring)
        })
    }

    /// Folds all ring contents into the cumulative aggregate and the
    /// rolling window.
    ///
    /// Samples are attributed to the window bucket of *fold* time, not
    /// of span completion — an acceptable skew of at most one fold
    /// interval, bought deliberately: attributing at completion would
    /// need a timestamp in every 24-byte span record. Allocation-free
    /// while retention is off: the rings are iterated under their lock
    /// (no registry clone) and both histogram layers record in place.
    fn fold(&self) {
        let rings = self.rings.lock();
        let mut agg = self.agg.lock();
        let retain = self.retain.load(Ordering::Relaxed);
        let bucket = agg.windows.bucket_index(self.epoch.elapsed());
        for ring in rings.iter() {
            let agg = &mut *agg;
            agg.dropped += ring.drain(|record| {
                let micros = record.duration_micros();
                agg.stages[record.stage as u8 as usize].record(micros);
                agg.windows.record(bucket, record.stage, micros);
                if retain {
                    agg.retained.push(record);
                }
            });
        }
        // Attribute resilience-counter increments since the last fold
        // to the current bucket.
        let shed = self.shed.load(Ordering::Relaxed);
        let degraded = self.degraded.load(Ordering::Relaxed);
        let faults = self.faults.load(Ordering::Relaxed);
        let (d_shed, d_degraded, d_faults) = (
            shed - agg.last_shed,
            degraded - agg.last_degraded,
            faults - agg.last_faults,
        );
        agg.windows
            .add_counters(bucket, d_shed, d_degraded, d_faults);
        agg.last_shed = shed;
        agg.last_degraded = degraded;
        agg.last_faults = faults;
    }

    /// Drains the rings into the aggregate and window now, without
    /// building a snapshot. Allocation-free; callable from the serving
    /// layer's idle moments so window buckets stay current between
    /// scrapes.
    pub fn sync(&self) {
        self.fold();
    }

    /// Aggregates everything recorded so far into per-stage statistics.
    pub fn snapshot(&self) -> StatsSnapshot {
        self.fold();
        let agg = self.agg.lock();
        let stages = Stage::ALL
            .iter()
            .filter_map(|&stage| {
                let h = &agg.stages[stage as u8 as usize];
                if h.is_empty() {
                    return None;
                }
                Some(StageStats {
                    stage: stage.name().to_string(),
                    count: h.count(),
                    mean_us: h.mean(),
                    p50_us: h.p50(),
                    p90_us: h.p90(),
                    p99_us: h.p99(),
                    max_us: h.max(),
                })
            })
            .collect();
        let hist = Stage::ALL
            .iter()
            .filter_map(|&stage| {
                let h = &agg.stages[stage as u8 as usize];
                if h.is_empty() {
                    return None;
                }
                Some(StageCounts {
                    stage: stage.name().to_string(),
                    counts: h.nonzero_buckets().collect(),
                })
            })
            .collect();
        let current = agg.windows.bucket_index(self.epoch.elapsed());
        StatsSnapshot {
            requests: agg.stages[Stage::Total as u8 as usize].count(),
            dropped: agg.dropped,
            shed: self.shed.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            faults: self.faults.load(Ordering::Relaxed),
            refused: self.refused.load(Ordering::Relaxed),
            brownout: self.brownout_counts(),
            admission_limit_milli: self.admission_limit_milli.load(Ordering::Relaxed),
            pod: self.pod,
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            reactor: self.reactor_probe.lock().as_ref().map(|probe| probe()),
            window: Some(agg.windows.snapshot(current)),
            hist,
            stages,
        }
    }

    /// Drains and returns the raw records retained since retention was
    /// enabled (folding the rings first).
    pub fn take_records(&self) -> Vec<SpanRecord> {
        self.fold();
        std::mem::take(&mut self.agg.lock().retained)
    }
}

/// RAII guard measuring one stage; records on drop.
pub struct SpanGuard<'a> {
    recorder: &'a Recorder,
    request_id: u64,
    stage: Stage,
    start: Instant,
    armed: bool,
}

impl SpanGuard<'_> {
    /// Ends the span now (instead of at scope exit).
    pub fn finish(mut self) {
        self.record_now();
    }

    /// Abandons the span without recording it.
    pub fn cancel(mut self) {
        self.armed = false;
    }

    fn record_now(&mut self) {
        if self.armed {
            self.armed = false;
            let nanos = self.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            self.recorder.record(self.request_id, self.stage, nanos);
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.record_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn recorded_spans_show_up_in_the_snapshot() {
        let r = Recorder::new();
        r.record(1, Stage::Parse, 5_000);
        r.record(1, Stage::Inference, 250_000);
        r.record(1, Stage::Total, 260_000);
        let snap = r.snapshot();
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.dropped, 0);
        let parse = snap.stage("parse").unwrap();
        assert_eq!(parse.count, 1);
        assert_eq!(parse.p50_us, 5);
        assert!(snap.stage("queue").is_none(), "unrecorded stages omitted");
    }

    #[test]
    fn snapshots_are_cumulative_across_folds() {
        let r = Recorder::new();
        r.record(1, Stage::Total, 1_000);
        assert_eq!(r.snapshot().requests, 1);
        r.record(2, Stage::Total, 1_000);
        assert_eq!(r.snapshot().requests, 2);
    }

    #[test]
    fn guards_record_elapsed_time() {
        let r = Recorder::new();
        {
            let _g = r.span(7, Stage::Inference);
            std::thread::sleep(Duration::from_millis(2));
        }
        let snap = r.snapshot();
        let inf = snap.stage("inference").unwrap();
        assert!(inf.max_us >= 1_000, "slept 2ms, saw {}us", inf.max_us);
    }

    #[test]
    fn cancelled_guards_record_nothing() {
        let r = Recorder::new();
        r.span(1, Stage::Parse).cancel();
        assert!(r.snapshot().stages.is_empty());
    }

    #[test]
    fn spans_from_many_threads_merge() {
        let r = Arc::new(Recorder::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    r.record(t * 1_000 + i, Stage::Total, 1_000_000 * (t + 1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = r.snapshot();
        assert_eq!(snap.requests, 400);
        let total = snap.stage("total").unwrap();
        assert_eq!(total.max_us, 4_000, "4ms recorded by the slowest thread");
    }

    #[test]
    fn retention_keeps_raw_records_for_joins() {
        let r = Recorder::new();
        r.set_record_retention(true);
        r.record(9, Stage::Parse, 100);
        r.record(9, Stage::Total, 300);
        let records = r.take_records();
        assert_eq!(records.len(), 2);
        assert!(records.iter().all(|rec| rec.request_id == 9));
        assert!(r.take_records().is_empty(), "take drains");
        // The aggregate still saw them.
        assert_eq!(r.snapshot().requests, 1);
    }

    #[test]
    fn resilience_counters_flow_into_snapshots() {
        let r = Recorder::new();
        r.note_shed();
        r.note_shed();
        r.note_degraded();
        r.note_fault();
        let snap = r.snapshot();
        assert_eq!(snap.shed, 2);
        assert_eq!(snap.degraded, 1);
        assert_eq!(snap.faults, 1);
        assert_eq!(r.shed_count(), 2);
        assert_eq!(r.degraded_count(), 1);
    }

    #[test]
    fn snapshots_carry_pod_queue_window_and_hist() {
        let r = Recorder::with_pod(3);
        r.set_queue_depth(17);
        r.record(1, Stage::Inference, 2_000_000);
        r.record(1, Stage::Total, 2_500_000);
        let snap = r.snapshot();
        assert_eq!(snap.pod, Some(3));
        assert_eq!(snap.queue_depth, 17);
        let window = snap.window.as_ref().expect("window always present");
        assert_eq!(window.buckets.len(), 1, "everything in the first bucket");
        assert_eq!(window.buckets[0].requests, 1);
        assert_eq!(window.buckets[0].lat.len(), 2);
        // The sparse buckets reconstruct the cumulative histogram up to
        // bucket resolution (exact extremes are not on the wire).
        let total = snap.hist.iter().find(|h| h.stage == "total").unwrap();
        let rebuilt = total.to_histogram();
        assert_eq!(rebuilt.count(), 1);
        let p50 = snap.stage("total").unwrap().p50_us;
        assert!(
            p50.abs_diff(rebuilt.p50()) * 32 <= p50,
            "bucket-resolution agreement: {p50} vs {}",
            rebuilt.p50()
        );
    }

    #[test]
    fn counter_deltas_land_in_window_buckets() {
        let r = Recorder::new();
        r.note_shed();
        r.note_fault();
        r.sync();
        r.note_shed();
        let snap = r.snapshot();
        let window = snap.window.unwrap();
        let shed: u64 = window.buckets.iter().map(|b| b.shed).sum();
        let faults: u64 = window.buckets.iter().map(|b| b.faults).sum();
        assert_eq!(shed, 2, "both folds attribute their delta");
        assert_eq!(faults, 1);
    }

    #[test]
    fn trace_retention_keeps_pod_spans() {
        use crate::trace::TraceCtx;
        let r = Recorder::with_pod(5);
        let ctx = TraceCtx::root(99).child(1234);
        r.note_pod_stage(&ctx, Stage::Inference, 1_000);
        assert!(r.take_traces().is_empty(), "retention off by default");
        r.set_trace_retention(true);
        r.note_pod_stage(&ctx, Stage::Inference, 1_000);
        r.note_pod_stage(&ctx, Stage::Total, 1_500);
        let traces = r.take_traces();
        assert_eq!(traces.len(), 2);
        assert!(traces.iter().all(|t| t.pod == 5 && t.trace_id == 99));
        assert!(traces.iter().all(|t| t.parent_span == ctx.span_id));
        assert_ne!(traces[0].span_id, traces[1].span_id);
        assert!(r.take_traces().is_empty(), "take drains");
    }

    #[test]
    fn reactor_probe_feeds_snapshots_when_installed() {
        let r = Recorder::new();
        assert!(r.snapshot().reactor.is_none(), "no probe, no telemetry");
        r.set_reactor_probe(Some(Box::new(|| ReactorTelemetry {
            loops: 3,
            busy_nanos: 10,
            wait_nanos: 30,
            ..ReactorTelemetry::default()
        })));
        let snap = r.snapshot();
        let reactor = snap.reactor.expect("probe consulted");
        assert_eq!(reactor.loops, 3);
        assert!((reactor.utilization() - 0.25).abs() < 1e-9);
        r.set_reactor_probe(None);
        assert!(r.snapshot().reactor.is_none(), "probe cleared");
    }

    #[test]
    fn two_recorders_on_one_thread_stay_separate() {
        let a = Recorder::new();
        let b = Recorder::new();
        a.record(1, Stage::Total, 10);
        b.record(2, Stage::Total, 20);
        b.record(3, Stage::Total, 30);
        assert_eq!(a.snapshot().requests, 1);
        assert_eq!(b.snapshot().requests, 2);
    }
}
