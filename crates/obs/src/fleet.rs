//! Fleet-level aggregation of per-pod `/stats` snapshots.
//!
//! A fleet view answers two questions a single pod cannot: *is the
//! fleet healthy as a whole* (merged per-stage histograms, summed
//! counters) and *are the replicas even* (per-pod p50/p99 skew, queue
//! depths). Merging happens on the exact sparse histogram buckets each
//! pod ships in its snapshot ([`crate::stats::StageCounts`]), so the
//! merged histogram is **bit-identical** to folding the pods' own
//! histograms together, in any scrape order — an acceptance criterion,
//! verified end-to-end by `etude-serve`'s fleet test.

use crate::stats::{parse_stats_json, ReactorTelemetry, StageCounts, StatsSnapshot};
use crate::Stage;
use etude_metrics::hdr::Histogram;

/// Per-pod quantile spread for one stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSkew {
    /// Stage label.
    pub stage: String,
    /// Smallest per-pod median.
    pub p50_min_us: u64,
    /// Largest per-pod median.
    pub p50_max_us: u64,
    /// Smallest per-pod p99.
    pub p99_min_us: u64,
    /// Largest per-pod p99.
    pub p99_max_us: u64,
}

/// Health and residency of one shard group in a scatter/gather tier:
/// which catalog slice it owns, how many bytes each replica keeps
/// resident, and how many of its replicas answered the last scrape.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardGroupHealth {
    /// Shard group id (position in the partition).
    pub group: u32,
    /// First global catalog row of the group's slice.
    pub base: u64,
    /// Rows in the group's slice.
    pub rows: u64,
    /// Embedding-table bytes resident on *each* replica of this group.
    pub resident_bytes: u64,
    /// Configured replicas.
    pub replicas: usize,
    /// Replicas that answered the last scrape.
    pub healthy: usize,
}

/// A scrape of the whole fleet.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetSnapshot {
    /// One snapshot per reachable pod.
    pub pods: Vec<StatsSnapshot>,
    /// Pods whose `/stats` could not be scraped.
    pub unreachable: usize,
    /// Pods a stateful scraper has declared unhealthy: several
    /// *consecutive* failed scrapes, not just a blip in this one.
    pub unhealthy: usize,
    /// Shard-group topology and health, when the fleet is a
    /// scatter/gather tier (empty for replicated fleets).
    pub shards: Vec<ShardGroupHealth>,
}

impl FleetSnapshot {
    /// Wraps scraped snapshots (no health verdicts — a stateless scrape
    /// cannot tell a blip from a dead pod).
    pub fn new(pods: Vec<StatsSnapshot>, unreachable: usize) -> FleetSnapshot {
        FleetSnapshot {
            pods,
            unreachable,
            unhealthy: 0,
            shards: Vec::new(),
        }
    }

    /// Attaches a stateful scraper's unhealthy-pod count.
    pub fn with_unhealthy(mut self, unhealthy: usize) -> FleetSnapshot {
        self.unhealthy = unhealthy;
        self
    }

    /// Attaches shard-group topology/health rows (scatter/gather tiers).
    pub fn with_shards(mut self, shards: Vec<ShardGroupHealth>) -> FleetSnapshot {
        self.shards = shards;
        self
    }

    /// Sum of a counter over the fleet.
    fn sum(&self, f: impl Fn(&StatsSnapshot) -> u64) -> u64 {
        self.pods.iter().map(f).sum()
    }

    /// Merges one stage's histogram across every pod from the exact
    /// sparse buckets. `None` when no pod recorded the stage.
    pub fn merged_stage(&self, stage: &str) -> Option<Histogram> {
        let mut h = Histogram::new();
        let mut seen = false;
        for pod in &self.pods {
            if let Some(counts) = pod.hist.iter().find(|c| c.stage == stage) {
                seen = true;
                for &(index, count) in &counts.counts {
                    h.add_bucket(index, count);
                }
            }
        }
        seen.then_some(h)
    }

    /// The merged sparse buckets per stage, pipeline order — the same
    /// shape a single pod ships, so fleet output can be re-verified
    /// against per-pod scrapes token by token.
    pub fn merged_counts(&self) -> Vec<StageCounts> {
        Stage::ALL
            .iter()
            .filter_map(|&stage| {
                let h = self.merged_stage(stage.name())?;
                Some(StageCounts {
                    stage: stage.name().to_string(),
                    counts: h.nonzero_buckets().collect(),
                })
            })
            .collect()
    }

    /// Merges reactor telemetry across every pod that ships it: summed
    /// counters and busy/wait nanos (so fleet utilization is the
    /// time-weighted mean), histograms folded on their exact sparse
    /// buckets — order-independent like [`FleetSnapshot::merged_stage`].
    /// `None` when no pod runs the reactor tier.
    pub fn merged_reactor(&self) -> Option<ReactorTelemetry> {
        let mut merged: Option<ReactorTelemetry> = None;
        for pod in &self.pods {
            if let Some(r) = &pod.reactor {
                match &mut merged {
                    Some(m) => m.merge(r),
                    None => merged = Some(r.clone()),
                }
            }
        }
        merged
    }

    /// Per-pod quantile spread for every stage at least two pods
    /// recorded (skew of a single replica is meaningless).
    pub fn skew(&self) -> Vec<StageSkew> {
        Stage::ALL
            .iter()
            .filter_map(|&stage| {
                let per_pod: Vec<(u64, u64)> = self
                    .pods
                    .iter()
                    .filter_map(|p| p.stage(stage.name()).map(|s| (s.p50_us, s.p99_us)))
                    .collect();
                if per_pod.len() < 2 {
                    return None;
                }
                Some(StageSkew {
                    stage: stage.name().to_string(),
                    p50_min_us: per_pod.iter().map(|x| x.0).min().unwrap_or(0),
                    p50_max_us: per_pod.iter().map(|x| x.0).max().unwrap_or(0),
                    p99_min_us: per_pod.iter().map(|x| x.1).min().unwrap_or(0),
                    p99_max_us: per_pod.iter().map(|x| x.1).max().unwrap_or(0),
                })
            })
            .collect()
    }

    /// Renders the `/fleet` JSON document: fleet totals, merged
    /// per-stage quantiles *and* their exact sparse buckets, per-stage
    /// skew, and a per-pod summary table.
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str(&format!(
            "{{\n  \"pods\": {},\n  \"unreachable\": {},\n  \"unhealthy\": {},\n  \
             \"requests\": {},\n  \
             \"shed\": {},\n  \"degraded\": {},\n  \"faults\": {},\n",
            self.pods.len(),
            self.unreachable,
            self.unhealthy,
            self.sum(|p| p.requests),
            self.sum(|p| p.shed),
            self.sum(|p| p.degraded),
            self.sum(|p| p.faults),
        ));
        out.push_str(&format!(
            "  \"refused\": {},\n  \"brownout_quantized\": {},\n  \
             \"brownout_reduced\": {},\n  \"brownout_fallback\": {},\n",
            self.sum(|p| p.refused),
            self.sum(|p| p.brownout[0]),
            self.sum(|p| p.brownout[1]),
            self.sum(|p| p.brownout[2]),
        ));
        // Reactor keys stay flat (and their histograms are quoted pair
        // strings), so they sit safely in the pre-array head that
        // [`parse_fleet_health`] scans.
        if let Some(r) = self.merged_reactor() {
            out.push_str(&format!(
                "  \"reactor_loops\": {},\n  \"reactor_busy_nanos\": {},\n  \
                 \"reactor_wait_nanos\": {},\n  \"reactor_accepts\": {},\n  \
                 \"reactor_conns\": {},\n  \"reactor_write_stalls\": {},\n  \
                 \"reactor_evictions\": {},\n",
                r.loops,
                r.busy_nanos,
                r.wait_nanos,
                r.accepts,
                r.conns,
                r.write_stalls,
                r.evictions,
            ));
            out.push_str(&format!(
                "  \"reactor_poll_batch\": \"{}\",\n  \"reactor_wake_us\": \"{}\",\n  \
                 \"reactor_dispatch_wait_us\": \"{}\",\n",
                crate::stats::encode_pairs(&r.poll_batch),
                crate::stats::encode_pairs(&r.wake_us),
                crate::stats::encode_pairs(&r.dispatch_wait_us),
            ));
        }
        if !self.shards.is_empty() {
            out.push_str("  \"shards\": [");
            for (i, s) in self.shards.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n    {{\"group\": {}, \"base\": {}, \"rows\": {}, \
                     \"resident_bytes\": {}, \"replicas\": {}, \"healthy\": {}}}",
                    s.group, s.base, s.rows, s.resident_bytes, s.replicas, s.healthy
                ));
            }
            out.push_str("\n  ],\n");
        }
        out.push_str("  \"skew\": [");
        for (i, s) in self.skew().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"stage\": \"{}\", \"p50_min_us\": {}, \"p50_max_us\": {}, \
                 \"p99_min_us\": {}, \"p99_max_us\": {}}}",
                s.stage, s.p50_min_us, s.p50_max_us, s.p99_min_us, s.p99_max_us
            ));
        }
        out.push_str("\n  ],\n  \"merged\": [");
        for (i, counts) in self.merged_counts().iter().enumerate() {
            let h = counts.to_histogram();
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"stage\": \"{}\", \"count\": {}, \"p50_us\": {}, \
                 \"p90_us\": {}, \"p99_us\": {}, \"max_us\": {}, \"counts\": \"{}\"}}",
                counts.stage,
                h.count(),
                h.p50(),
                h.p90(),
                h.p99(),
                h.max(),
                counts.encode_counts()
            ));
        }
        out.push_str("\n  ],\n  \"per_pod\": [");
        for (i, p) in self.pods.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let (p50, p99) = p
                .stage("total")
                .map(|s| (s.p50_us, s.p99_us))
                .unwrap_or((0, 0));
            out.push_str(&format!(
                "\n    {{\"pod\": {}, \"requests\": {}, \"queue_depth\": {}, \
                 \"shed\": {}, \"degraded\": {}, \"faults\": {}, \
                 \"refused\": {}, \"p50_us\": {p50}, \"p99_us\": {p99}}}",
                p.pod.map(i64::from).unwrap_or(-1),
                p.requests,
                p.queue_depth,
                p.shed,
                p.degraded,
                p.faults,
                p.refused,
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Renders the fleet view in the Prometheus text exposition format
    /// (`/fleet/metrics`): merged quantiles plus per-pod gauges, all
    /// labelled so per-replica skew graphs directly.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str(
            "# HELP etude_fleet_pods Pods reached by the last fleet scrape.\n\
             # TYPE etude_fleet_pods gauge\n",
        );
        out.push_str(&format!("etude_fleet_pods {}\n", self.pods.len()));
        out.push_str(
            "# HELP etude_fleet_unreachable Pods that failed the last fleet scrape.\n\
             # TYPE etude_fleet_unreachable gauge\n",
        );
        out.push_str(&format!("etude_fleet_unreachable {}\n", self.unreachable));
        out.push_str(
            "# HELP etude_fleet_unhealthy Pods past the consecutive-failure threshold.\n\
             # TYPE etude_fleet_unhealthy gauge\n",
        );
        out.push_str(&format!("etude_fleet_unhealthy {}\n", self.unhealthy));
        out.push_str(
            "# HELP etude_fleet_requests_total Requests served across the fleet.\n\
             # TYPE etude_fleet_requests_total counter\n",
        );
        out.push_str(&format!(
            "etude_fleet_requests_total {}\n",
            self.sum(|p| p.requests)
        ));
        out.push_str(
            "# HELP etude_fleet_requests_refused_total Admission refusals (429) across the fleet.\n\
             # TYPE etude_fleet_requests_refused_total counter\n",
        );
        out.push_str(&format!(
            "etude_fleet_requests_refused_total {}\n",
            self.sum(|p| p.refused)
        ));
        out.push_str(
            "# HELP etude_fleet_brownout_responses_total Browned-out 200s across the fleet per ladder level.\n\
             # TYPE etude_fleet_brownout_responses_total counter\n",
        );
        for (label, i) in [("quantized", 0), ("reduced-k", 1), ("fallback", 2)] {
            out.push_str(&format!(
                "etude_fleet_brownout_responses_total{{level=\"{label}\"}} {}\n",
                self.sum(|p| p.brownout[i])
            ));
        }
        out.push_str(
            "# HELP etude_fleet_stage_latency_microseconds Merged fleet stage quantiles.\n\
             # TYPE etude_fleet_stage_latency_microseconds summary\n",
        );
        for counts in self.merged_counts() {
            let h = counts.to_histogram();
            for (q, v) in [("0.5", h.p50()), ("0.9", h.p90()), ("0.99", h.p99())] {
                out.push_str(&format!(
                    "etude_fleet_stage_latency_microseconds{{stage=\"{}\",quantile=\"{q}\"}} {v}\n",
                    counts.stage
                ));
            }
            out.push_str(&format!(
                "etude_fleet_stage_latency_microseconds_count{{stage=\"{}\"}} {}\n",
                counts.stage,
                h.count()
            ));
        }
        out.push_str(
            "# HELP etude_pod_requests_total Requests served per pod.\n\
             # TYPE etude_pod_requests_total counter\n\
             # HELP etude_pod_queue_depth Batcher queue depth per pod.\n\
             # TYPE etude_pod_queue_depth gauge\n\
             # HELP etude_pod_latency_p99_microseconds Per-pod total-stage p99.\n\
             # TYPE etude_pod_latency_p99_microseconds gauge\n",
        );
        for (i, p) in self.pods.iter().enumerate() {
            let pod = p.pod.map(i64::from).unwrap_or(i as i64);
            out.push_str(&format!(
                "etude_pod_requests_total{{pod=\"{pod}\"}} {}\n",
                p.requests
            ));
            out.push_str(&format!(
                "etude_pod_queue_depth{{pod=\"{pod}\"}} {}\n",
                p.queue_depth
            ));
            if let Some(total) = p.stage("total") {
                out.push_str(&format!(
                    "etude_pod_latency_p99_microseconds{{pod=\"{pod}\"}} {}\n",
                    total.p99_us
                ));
            }
        }
        if let Some(r) = self.merged_reactor() {
            out.push_str(&crate::stats::render_reactor_prometheus(&r, "fleet_"));
        }
        if !self.shards.is_empty() {
            out.push_str(
                "# HELP etude_shard_healthy_replicas Replicas of each shard group that answered the last scrape.\n\
                 # TYPE etude_shard_healthy_replicas gauge\n\
                 # HELP etude_shard_resident_bytes Embedding-table bytes resident on each replica of the group.\n\
                 # TYPE etude_shard_resident_bytes gauge\n",
            );
            for s in &self.shards {
                out.push_str(&format!(
                    "etude_shard_healthy_replicas{{group=\"{}\"}} {}\n",
                    s.group, s.healthy
                ));
                out.push_str(&format!(
                    "etude_shard_resident_bytes{{group=\"{}\"}} {}\n",
                    s.group, s.resident_bytes
                ));
            }
        }
        out
    }
}

/// The merged section of a `/fleet` JSON document, parsed back into
/// sparse stage counts — what verification harnesses compare against
/// their own per-pod merge.
pub fn parse_fleet_merged(body: &str) -> Option<Vec<StageCounts>> {
    let at = body.find("\"merged\"")?;
    let rest = &body[at..];
    // Merged entries are flat objects; the array ends at the first `]`.
    let end = rest.find(']')?;
    let mut scan = &rest[..end];
    let mut merged = Vec::new();
    while let Some(open) = scan.find('{') {
        let close = scan[open..].find('}')? + open;
        let obj = &scan[open..=close];
        merged.push(StageCounts {
            stage: crate::stats::str_field(obj, "stage")?,
            counts: StageCounts::decode_counts(&crate::stats::str_field(obj, "counts")?),
        });
        scan = &scan[close + 1..];
    }
    Some(merged)
}

/// Parses the `per_pod` section of a `/fleet` JSON document into
/// `(pod, requests, queue_depth)` rows.
pub fn parse_fleet_pods(body: &str) -> Option<Vec<(i64, u64, u64)>> {
    let at = body.find("\"per_pod\"")?;
    let rest = &body[at..];
    let end = rest.find(']')?;
    let mut scan = &rest[..end];
    let mut rows = Vec::new();
    while let Some(open) = scan.find('{') {
        let close = scan[open..].find('}')? + open;
        let obj = &scan[open..=close];
        rows.push((
            crate::stats::num_field(obj, "pod")?,
            crate::stats::num_field(obj, "requests")?,
            crate::stats::num_field(obj, "queue_depth")?,
        ));
        scan = &scan[close + 1..];
    }
    Some(rows)
}

/// Parses the merged reactor telemetry block of a `/fleet` (or
/// `/stats`) JSON document. `None` when the fleet runs no reactor tier.
pub fn parse_fleet_reactor(body: &str) -> Option<ReactorTelemetry> {
    // The flat reactor keys lead the document, before any array whose
    // nested objects could shadow their names.
    let head = &body[..body.find('[').unwrap_or(body.len())];
    crate::stats::parse_reactor_block(head)
}

/// Parses the health header of a `/fleet` JSON document:
/// `(pods, unreachable, unhealthy)`.
pub fn parse_fleet_health(body: &str) -> Option<(u64, u64, u64)> {
    // These fields lead the document, before any nested object can
    // shadow their names.
    let head = &body[..body.find('[').unwrap_or(body.len())];
    Some((
        crate::stats::num_field(head, "pods")?,
        crate::stats::num_field(head, "unreachable")?,
        crate::stats::num_field(head, "unhealthy")?,
    ))
}

/// Parses the `shards` section of a `/fleet` JSON document. `Some([])`
/// when the document has no shard section (replicated fleets).
pub fn parse_fleet_shards(body: &str) -> Option<Vec<ShardGroupHealth>> {
    let Some(at) = body.find("\"shards\"") else {
        return Some(Vec::new());
    };
    let rest = &body[at..];
    let end = rest.find(']')?;
    let mut scan = &rest[..end];
    let mut rows = Vec::new();
    while let Some(open) = scan.find('{') {
        let close = scan[open..].find('}')? + open;
        let obj = &scan[open..=close];
        rows.push(ShardGroupHealth {
            group: crate::stats::num_field(obj, "group")?,
            base: crate::stats::num_field(obj, "base")?,
            rows: crate::stats::num_field(obj, "rows")?,
            resident_bytes: crate::stats::num_field(obj, "resident_bytes")?,
            replicas: crate::stats::num_field(obj, "replicas")?,
            healthy: crate::stats::num_field(obj, "healthy")?,
        });
        scan = &scan[close + 1..];
    }
    Some(rows)
}

/// Builds a fleet snapshot from raw `/stats` bodies; unparseable or
/// missing bodies count as unreachable.
pub fn fleet_from_bodies<'a>(bodies: impl IntoIterator<Item = Option<&'a str>>) -> FleetSnapshot {
    let mut pods = Vec::new();
    let mut unreachable = 0;
    for body in bodies {
        match body.and_then(parse_stats_json) {
            Some(snap) => pods.push(snap),
            None => unreachable += 1,
        }
    }
    FleetSnapshot::new(pods, unreachable)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::StageStats;

    fn pod_snapshot(pod: u32, values: &[u64]) -> StatsSnapshot {
        let mut h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        StatsSnapshot {
            requests: values.len() as u64,
            pod: Some(pod),
            queue_depth: u64::from(pod),
            hist: vec![StageCounts {
                stage: "total".into(),
                counts: h.nonzero_buckets().collect(),
            }],
            stages: vec![StageStats {
                stage: "total".into(),
                count: h.count(),
                mean_us: h.mean(),
                p50_us: h.p50(),
                p90_us: h.p90(),
                p99_us: h.p99(),
                max_us: h.max(),
            }],
            ..Default::default()
        }
    }

    #[test]
    fn merged_histogram_is_bit_identical_to_local_merge() {
        let a = [100, 120, 130, 5_000];
        let b = [90, 110, 400];
        let fleet = FleetSnapshot::new(vec![pod_snapshot(0, &a), pod_snapshot(1, &b)], 0);
        let merged = fleet.merged_stage("total").unwrap();
        // The local reference merge works from the same wire-carried
        // sparse buckets — reconstruct each pod, then fold.
        let mut local = fleet.pods[0].hist[0].to_histogram();
        local.merge(&fleet.pods[1].hist[0].to_histogram());
        assert_eq!(merged.count(), local.count());
        assert_eq!(merged.p50(), local.p50());
        assert_eq!(merged.p99(), local.p99());
        assert_eq!(merged.max(), local.max());
        assert_eq!(merged.min(), local.min());
        // Scrape order must not matter.
        let swapped = FleetSnapshot::new(vec![pod_snapshot(1, &b), pod_snapshot(0, &a)], 0);
        assert_eq!(
            swapped.merged_counts(),
            fleet.merged_counts(),
            "merge is order-independent"
        );
    }

    #[test]
    fn skew_spans_the_pod_extremes() {
        let fleet = FleetSnapshot::new(
            vec![
                pod_snapshot(0, &[100, 100, 100]),
                pod_snapshot(1, &[900, 900, 900]),
            ],
            0,
        );
        let skew = fleet.skew();
        assert_eq!(skew.len(), 1);
        assert_eq!(skew[0].stage, "total");
        assert!(skew[0].p50_min_us <= 101 && skew[0].p50_max_us >= 899);
    }

    #[test]
    fn fleet_json_roundtrips_merged_counts() {
        let fleet = FleetSnapshot::new(vec![pod_snapshot(0, &[50, 60]), pod_snapshot(1, &[70])], 1);
        let json = fleet.render_json();
        assert!(json.contains("\"unreachable\": 1"));
        let merged = parse_fleet_merged(&json).unwrap();
        assert_eq!(merged, fleet.merged_counts());
        let rows = parse_fleet_pods(&json).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], (0, 2, 0));
        assert_eq!(rows[1], (1, 1, 1));
    }

    #[test]
    fn prometheus_exposes_fleet_and_pod_series() {
        let fleet = FleetSnapshot::new(vec![pod_snapshot(0, &[100]), pod_snapshot(3, &[200])], 0);
        let text = fleet.render_prometheus();
        assert!(text.contains("etude_fleet_pods 2"));
        assert!(text.contains("etude_fleet_requests_total 2"));
        assert!(text
            .contains("etude_fleet_stage_latency_microseconds{stage=\"total\",quantile=\"0.99\"}"));
        assert!(text.contains("etude_pod_requests_total{pod=\"3\"} 1"));
        assert!(text.contains("etude_pod_queue_depth{pod=\"0\"} 0"));
    }

    #[test]
    fn unhealthy_counts_render_and_parse() {
        let fleet = FleetSnapshot::new(vec![pod_snapshot(0, &[10])], 2).with_unhealthy(1);
        let json = fleet.render_json();
        assert!(json.contains("\"unhealthy\": 1"));
        assert_eq!(parse_fleet_health(&json), Some((1, 2, 1)));
        let text = fleet.render_prometheus();
        assert!(text.contains("etude_fleet_unhealthy 1"));
        // The parsers that predate the field still work.
        assert_eq!(parse_fleet_pods(&json).map(|r| r.len()), Some(1));
    }

    #[test]
    fn shard_sections_render_and_parse() {
        let shards = vec![
            ShardGroupHealth {
                group: 0,
                base: 0,
                rows: 500_000,
                resident_bytes: 64_000_000,
                replicas: 2,
                healthy: 2,
            },
            ShardGroupHealth {
                group: 1,
                base: 500_000,
                rows: 500_000,
                resident_bytes: 64_000_000,
                replicas: 2,
                healthy: 0,
            },
        ];
        let fleet = FleetSnapshot::new(vec![pod_snapshot(0, &[10])], 2).with_shards(shards.clone());
        let json = fleet.render_json();
        assert_eq!(parse_fleet_shards(&json).unwrap(), shards);
        // The shard section must not confuse the pre-existing parsers.
        assert_eq!(parse_fleet_health(&json), Some((1, 2, 0)));
        assert_eq!(parse_fleet_pods(&json).map(|r| r.len()), Some(1));
        assert_eq!(parse_fleet_merged(&json), Some(fleet.merged_counts()));
        let text = fleet.render_prometheus();
        assert!(text.contains("etude_shard_healthy_replicas{group=\"1\"} 0"));
        assert!(text.contains("etude_shard_resident_bytes{group=\"0\"} 64000000"));
        // Replicated fleets have no section, and the parser reports that
        // as an empty topology rather than a failure.
        let plain = FleetSnapshot::new(vec![pod_snapshot(0, &[10])], 0).render_json();
        assert!(!plain.contains("\"shards\""));
        assert_eq!(parse_fleet_shards(&plain), Some(Vec::new()));
    }

    #[test]
    fn reactor_telemetry_merges_order_independently_through_fleet_json() {
        let reactor = |busy, wait, batches: Vec<(u32, u64)>| ReactorTelemetry {
            loops: 2,
            busy_nanos: busy,
            wait_nanos: wait,
            accepts: 10,
            conns: 4,
            write_stalls: 1,
            evictions: 0,
            poll_batch: batches,
            wake_us: vec![(5, 7)],
            dispatch_wait_us: vec![(40, 3)],
        };
        let mut a = pod_snapshot(0, &[100]);
        a.reactor = Some(reactor(300, 700, vec![(1, 5), (8, 2)]));
        let mut b = pod_snapshot(1, &[200]);
        b.reactor = Some(reactor(200, 800, vec![(1, 3)]));
        let fleet = FleetSnapshot::new(vec![a.clone(), b.clone()], 0);
        let swapped = FleetSnapshot::new(vec![b, a], 0);
        let merged = fleet.merged_reactor().unwrap();
        assert_eq!(swapped.merged_reactor().as_ref(), Some(&merged));
        assert_eq!(merged.busy_nanos, 500);
        assert_eq!(merged.wait_nanos, 1_500);
        assert!((merged.utilization() - 0.25).abs() < 1e-9);
        assert_eq!(merged.poll_batch, vec![(1, 8), (8, 2)]);
        // The JSON round-trip carries the merged block, and the
        // pre-reactor head parsers still work around it.
        let json = fleet.render_json();
        assert_eq!(parse_fleet_reactor(&json).as_ref(), Some(&merged));
        assert_eq!(parse_fleet_health(&json), Some((2, 0, 0)));
        assert_eq!(parse_fleet_merged(&json), Some(fleet.merged_counts()));
        let text = fleet.render_prometheus();
        assert!(text.contains("etude_fleet_reactor_loop_utilization 0.250000"));
        assert!(text.contains("etude_fleet_dispatch_queue_wait_us_count 6"));
        // Fleets without a reactor tier omit the block entirely.
        let plain = FleetSnapshot::new(vec![pod_snapshot(0, &[10])], 0);
        assert_eq!(parse_fleet_reactor(&plain.render_json()), None);
        assert!(!plain.render_prometheus().contains("reactor"));
    }

    #[test]
    fn unparseable_bodies_count_as_unreachable() {
        let good = pod_snapshot(0, &[10]).render_json();
        let fleet = fleet_from_bodies([Some(good.as_str()), Some("garbage"), None]);
        assert_eq!(fleet.pods.len(), 1);
        assert_eq!(fleet.unreachable, 2);
    }
}
