//! Trace-context propagation and post-run trace assembly.
//!
//! A W3C-`traceparent`-style header (`x-trace-ctx`) carries a
//! `(trace-id, parent-span-id, hop-count)` triple from the load
//! generator through the resilient client (each retry is a new child
//! span) to the pod that serves the request. Pods append their stage
//! spans — tagged with pod id and the parent span id from the header —
//! to their recorder, and a post-run [`TraceCollector`] joins the
//! client-side attempt spans with the pod-side stage spans into full
//! request trees, exportable as Chrome `trace_event` JSON
//! (`chrome://tracing` / Perfetto).
//!
//! Clock synchronisation is deliberately avoided: pods only record
//! *durations*. The collector nests each pod's stages inside the client
//! attempt that carried them and synthesises the two network legs as
//! `(attempt duration − pod total) / 2` each way, so the exported
//! timeline is consistent by construction even across hosts.

use crate::span::Stage;

/// Header name carrying the trace context (lowercase, like all our
/// header handling).
pub const TRACE_HEADER: &str = "x-trace-ctx";

/// Mixes a parent span id and a child index into a new span id.
///
/// FNV-1a over the three words: stable across processes (no
/// `DefaultHasher` randomness), collision-free enough for the span
/// counts of a load test, and cheap.
pub fn span_hash(trace_id: u64, parent_span: u64, index: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for word in [trace_id, parent_span, index] {
        for b in word.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// The propagated trace context: who this request is, and which span
/// spawned this hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Whole-request identity (stable across retries).
    pub trace_id: u64,
    /// Span id of the sender — the parent of whatever the receiver
    /// records.
    pub span_id: u64,
    /// Hops this context has crossed (client=0, incremented per
    /// forward), a cheap loop guard and a depth marker for collectors.
    pub hop: u8,
}

impl TraceCtx {
    /// A fresh root context for a new request.
    pub fn root(trace_id: u64) -> TraceCtx {
        TraceCtx {
            trace_id,
            span_id: span_hash(trace_id, 0, 0),
            hop: 0,
        }
    }

    /// The context to propagate from a child span of this one.
    pub fn child(&self, span_id: u64) -> TraceCtx {
        TraceCtx {
            trace_id: self.trace_id,
            span_id,
            hop: self.hop.saturating_add(1),
        }
    }

    /// Renders the header value: `<trace-id>-<span-id>-<hop>`, ids as
    /// zero-padded hex like W3C `traceparent`.
    pub fn encode(&self) -> String {
        format!("{:016x}-{:016x}-{}", self.trace_id, self.span_id, self.hop)
    }

    /// Parses a header value produced by [`TraceCtx::encode`]. Returns
    /// `None` on malformed input (requests without a valid context are
    /// simply not traced — never an error).
    pub fn parse(value: &str) -> Option<TraceCtx> {
        let mut parts = value.trim().splitn(3, '-');
        let trace_id = u64::from_str_radix(parts.next()?, 16).ok()?;
        let span_id = u64::from_str_radix(parts.next()?, 16).ok()?;
        let hop = parts.next()?.parse::<u8>().ok()?;
        Some(TraceCtx {
            trace_id,
            span_id,
            hop,
        })
    }
}

/// One pod-side stage span, tagged for post-run assembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PodSpanRecord {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// Span id of the client attempt (or upstream hop) that carried the
    /// request to this pod.
    pub parent_span: u64,
    /// This span's own id.
    pub span_id: u64,
    /// Pod that recorded the span.
    pub pod: u32,
    /// Pipeline stage measured.
    pub stage: Stage,
    /// Stage duration in nanoseconds.
    pub duration_nanos: u64,
}

/// One client-side attempt (initial try or retry) of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientAttempt {
    /// This attempt's span id (the pod sees it as its parent).
    pub span_id: u64,
    /// Attempt start, nanoseconds since the load test epoch.
    pub start_nanos: u64,
    /// Attempt duration in nanoseconds.
    pub duration_nanos: u64,
    /// HTTP status of the attempt, `None` on transport errors/timeouts.
    pub status: Option<u16>,
}

/// The client's view of one whole request: the root span plus every
/// attempt made under it (retries are siblings).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientSpan {
    /// Trace identity (FNV hash of the `x-request-id`).
    pub trace_id: u64,
    /// Root span id.
    pub span_id: u64,
    /// Request start, nanoseconds since the load test epoch.
    pub start_nanos: u64,
    /// End-to-end duration including every retry and backoff pause.
    pub duration_nanos: u64,
    /// Whether the request ultimately succeeded (2xx/4xx terminal).
    pub ok: bool,
    /// Attempts in order; the last one produced the terminal outcome.
    pub attempts: Vec<ClientAttempt>,
}

/// One attempt joined with the pod work it triggered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttemptNode {
    /// The client-side attempt span.
    pub attempt: ClientAttempt,
    /// Pod that served it, when pod spans were matched.
    pub pod: Option<u32>,
    /// Synthesised request-leg network time (nanoseconds).
    pub net_out_nanos: u64,
    /// Synthesised response-leg network time (nanoseconds).
    pub net_back_nanos: u64,
    /// The pod's `total` span duration (0 when unmatched).
    pub pod_total_nanos: u64,
    /// Pod component stages in pipeline order (stage, nanoseconds).
    pub stages: Vec<(Stage, u64)>,
}

/// One fully assembled request tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceTree {
    /// The client root span.
    pub client: ClientSpan,
    /// Attempts joined with pod spans.
    pub attempts: Vec<AttemptNode>,
}

impl TraceTree {
    /// A tree is *complete* when the client saw a success and the
    /// successful attempt resolves to pod-side work: a `total` span plus
    /// at least the parse and inference stages. This is the acceptance
    /// metric for chaos runs — retried-through faults must still yield
    /// whole trees.
    pub fn is_complete(&self) -> bool {
        self.client.ok
            && self.attempts.iter().any(|a| {
                matches!(a.attempt.status, Some(s) if s < 500)
                    && a.pod_total_nanos > 0
                    && a.stages.iter().any(|(s, _)| *s == Stage::Parse)
                    && a.stages.iter().any(|(s, _)| *s == Stage::Inference)
            })
    }
}

/// Joins client spans with pod spans into request trees and exports
/// them.
#[derive(Debug, Default)]
pub struct TraceCollector {
    trees: Vec<TraceTree>,
}

impl TraceCollector {
    /// Assembles request trees: pod spans are matched to the client
    /// attempt whose span id they name as parent.
    pub fn assemble(clients: &[ClientSpan], pods: &[PodSpanRecord]) -> TraceCollector {
        use std::collections::HashMap;
        let mut by_parent: HashMap<u64, Vec<&PodSpanRecord>> = HashMap::new();
        for rec in pods {
            by_parent.entry(rec.parent_span).or_default().push(rec);
        }
        let trees = clients
            .iter()
            .map(|client| {
                let attempts = client
                    .attempts
                    .iter()
                    .map(|&attempt| {
                        let mut node = AttemptNode {
                            attempt,
                            pod: None,
                            net_out_nanos: 0,
                            net_back_nanos: 0,
                            pod_total_nanos: 0,
                            stages: Vec::new(),
                        };
                        if let Some(recs) = by_parent.get(&attempt.span_id) {
                            for rec in recs {
                                node.pod = Some(rec.pod);
                                if rec.stage == Stage::Total {
                                    node.pod_total_nanos = rec.duration_nanos;
                                } else {
                                    node.stages.push((rec.stage, rec.duration_nanos));
                                }
                            }
                            node.stages.sort_by_key(|(s, _)| *s as u8);
                            // No synchronised clocks: the wire time is
                            // what the attempt took beyond the pod's own
                            // total, split evenly across the two legs.
                            let wire = attempt.duration_nanos.saturating_sub(node.pod_total_nanos);
                            node.net_out_nanos = wire / 2;
                            node.net_back_nanos = wire - node.net_out_nanos;
                        }
                        node
                    })
                    .collect();
                TraceTree {
                    client: client.clone(),
                    attempts,
                }
            })
            .collect();
        TraceCollector { trees }
    }

    /// The assembled trees.
    pub fn trees(&self) -> &[TraceTree] {
        &self.trees
    }

    /// Fraction of client-*successful* requests whose tree is complete
    /// (1.0 when no request succeeded — nothing to be incomplete).
    pub fn complete_fraction(&self) -> f64 {
        let ok: Vec<&TraceTree> = self.trees.iter().filter(|t| t.client.ok).collect();
        if ok.is_empty() {
            return 1.0;
        }
        ok.iter().filter(|t| t.is_complete()).count() as f64 / ok.len() as f64
    }

    /// Exports Chrome `trace_event` JSON: load it in `chrome://tracing`
    /// or Perfetto. Client spans live in process 0, each pod in process
    /// `pod + 1`; every trace gets its own thread row so retries render
    /// as siblings on one line.
    pub fn to_chrome_json(&self) -> String {
        let us = |nanos: u64| nanos as f64 / 1_000.0;
        let mut out = String::with_capacity(4096 + self.trees.len() * 512);
        out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
        let mut first = true;
        let mut push = |out: &mut String, ev: String| {
            if !std::mem::take(&mut first) {
                out.push_str(",\n");
            }
            out.push_str(&ev);
        };
        push(
            &mut out,
            "{\"ph\": \"M\", \"pid\": 0, \"name\": \"process_name\", \
             \"args\": {\"name\": \"client (loadgen)\"}}"
                .to_string(),
        );
        let mut pods: Vec<u32> = self
            .trees
            .iter()
            .flat_map(|t| t.attempts.iter().filter_map(|a| a.pod))
            .collect();
        pods.sort_unstable();
        pods.dedup();
        for pod in &pods {
            push(
                &mut out,
                format!(
                    "{{\"ph\": \"M\", \"pid\": {}, \"name\": \"process_name\", \
                     \"args\": {{\"name\": \"pod {pod}\"}}}}",
                    pod + 1
                ),
            );
        }
        for (row, tree) in self.trees.iter().enumerate() {
            let c = &tree.client;
            push(
                &mut out,
                format!(
                    "{{\"ph\": \"X\", \"name\": \"request\", \"cat\": \"client\", \
                     \"pid\": 0, \"tid\": {row}, \"ts\": {:.3}, \"dur\": {:.3}, \
                     \"args\": {{\"trace\": \"{:016x}\", \"ok\": {}, \"attempts\": {}}}}}",
                    us(c.start_nanos),
                    us(c.duration_nanos),
                    c.trace_id,
                    c.ok,
                    c.attempts.len()
                ),
            );
            for (k, node) in tree.attempts.iter().enumerate() {
                let a = &node.attempt;
                let status = a
                    .status
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| "\"transport-error\"".to_string());
                push(
                    &mut out,
                    format!(
                        "{{\"ph\": \"X\", \"name\": \"attempt {k}\", \"cat\": \"client\", \
                         \"pid\": 0, \"tid\": {row}, \"ts\": {:.3}, \"dur\": {:.3}, \
                         \"args\": {{\"status\": {status}}}}}",
                        us(a.start_nanos),
                        us(a.duration_nanos),
                    ),
                );
                let Some(pod) = node.pod else { continue };
                // Two synthesised network hops bracketing the pod work.
                push(
                    &mut out,
                    format!(
                        "{{\"ph\": \"X\", \"name\": \"network (out)\", \"cat\": \"network\", \
                         \"pid\": 0, \"tid\": {row}, \"ts\": {:.3}, \"dur\": {:.3}}}",
                        us(a.start_nanos),
                        us(node.net_out_nanos),
                    ),
                );
                push(
                    &mut out,
                    format!(
                        "{{\"ph\": \"X\", \"name\": \"network (back)\", \"cat\": \"network\", \
                         \"pid\": 0, \"tid\": {row}, \"ts\": {:.3}, \"dur\": {:.3}}}",
                        us(a.start_nanos + a.duration_nanos - node.net_back_nanos),
                        us(node.net_back_nanos),
                    ),
                );
                let pod_start = a.start_nanos + node.net_out_nanos;
                push(
                    &mut out,
                    format!(
                        "{{\"ph\": \"X\", \"name\": \"total\", \"cat\": \"pod\", \
                         \"pid\": {}, \"tid\": {row}, \"ts\": {:.3}, \"dur\": {:.3}}}",
                        pod + 1,
                        us(pod_start),
                        us(node.pod_total_nanos),
                    ),
                );
                // Component stages laid out cumulatively in pipeline
                // order inside the pod total.
                let mut at = pod_start;
                for &(stage, nanos) in &node.stages {
                    push(
                        &mut out,
                        format!(
                            "{{\"ph\": \"X\", \"name\": \"{}\", \"cat\": \"pod\", \
                             \"pid\": {}, \"tid\": {row}, \"ts\": {:.3}, \"dur\": {:.3}}}",
                            stage.name(),
                            pod + 1,
                            us(at),
                            us(nanos),
                        ),
                    );
                    at += nanos;
                }
            }
        }
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_roundtrips_through_the_header_value() {
        let ctx = TraceCtx {
            trace_id: 0xdead_beef_0123_4567,
            span_id: 42,
            hop: 3,
        };
        assert_eq!(TraceCtx::parse(&ctx.encode()), Some(ctx));
        assert_eq!(ctx.encode().len(), 16 + 1 + 16 + 1 + 1);
    }

    #[test]
    fn malformed_contexts_do_not_parse() {
        for bad in ["", "xyz", "12-34", "12-34-999", "12-zz-0", "--"] {
            assert_eq!(TraceCtx::parse(bad), None, "{bad:?} should not parse");
        }
    }

    #[test]
    fn child_contexts_advance_the_hop_count() {
        let root = TraceCtx::root(9);
        assert_eq!(root.hop, 0);
        let child = root.child(span_hash(9, root.span_id, 1));
        assert_eq!(child.hop, 1);
        assert_eq!(child.trace_id, 9);
        assert_ne!(child.span_id, root.span_id);
    }

    #[test]
    fn span_hash_spreads_and_is_stable() {
        assert_eq!(span_hash(1, 2, 3), span_hash(1, 2, 3));
        assert_ne!(span_hash(1, 2, 3), span_hash(1, 2, 4));
        assert_ne!(span_hash(1, 2, 3), span_hash(1, 3, 3));
    }

    fn sample_tree() -> (Vec<ClientSpan>, Vec<PodSpanRecord>) {
        let trace_id = 77;
        let root = span_hash(trace_id, 0, 0);
        let a0 = span_hash(trace_id, root, 0);
        let a1 = span_hash(trace_id, root, 1);
        let client = ClientSpan {
            trace_id,
            span_id: root,
            start_nanos: 1_000,
            duration_nanos: 9_000,
            ok: true,
            attempts: vec![
                ClientAttempt {
                    span_id: a0,
                    start_nanos: 1_000,
                    duration_nanos: 2_000,
                    status: Some(500),
                },
                ClientAttempt {
                    span_id: a1,
                    start_nanos: 6_000,
                    duration_nanos: 4_000,
                    status: Some(200),
                },
            ],
        };
        let pod = |stage, nanos| PodSpanRecord {
            trace_id,
            parent_span: a1,
            span_id: span_hash(trace_id, a1, stage as u64),
            pod: 2,
            stage,
            duration_nanos: nanos,
        };
        let pods = vec![
            pod(Stage::Parse, 100),
            pod(Stage::Inference, 2_500),
            pod(Stage::TopK, 200),
            pod(Stage::Serialize, 100),
            pod(Stage::Total, 3_000),
        ];
        (vec![client], pods)
    }

    #[test]
    fn assembly_joins_pod_spans_to_the_right_attempt() {
        let (clients, pods) = sample_tree();
        let collector = TraceCollector::assemble(&clients, &pods);
        let tree = &collector.trees()[0];
        assert!(tree.is_complete());
        assert_eq!(collector.complete_fraction(), 1.0);
        // First attempt (the 500) matched no pod spans.
        assert_eq!(tree.attempts[0].pod, None);
        let served = &tree.attempts[1];
        assert_eq!(served.pod, Some(2));
        assert_eq!(served.pod_total_nanos, 3_000);
        assert_eq!(served.stages.len(), 4);
        // 4000ns attempt − 3000ns pod = 1000ns wire, split 500/500.
        assert_eq!(served.net_out_nanos, 500);
        assert_eq!(served.net_back_nanos, 500);
    }

    #[test]
    fn incomplete_trees_are_counted() {
        let (clients, _) = sample_tree();
        // No pod spans at all: the ok request cannot resolve.
        let collector = TraceCollector::assemble(&clients, &[]);
        assert_eq!(collector.complete_fraction(), 0.0);
        assert!(!collector.trees()[0].is_complete());
        // No successful requests → vacuously complete.
        let mut failed = clients;
        failed[0].ok = false;
        let collector = TraceCollector::assemble(&failed, &[]);
        assert_eq!(collector.complete_fraction(), 1.0);
    }

    #[test]
    fn chrome_export_is_wellformed_and_nested() {
        let (clients, pods) = sample_tree();
        let json = TraceCollector::assemble(&clients, &pods).to_chrome_json();
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"pod 2\""));
        assert!(json.contains("\"attempt 1\""));
        assert!(json.contains("\"network (out)\""));
        assert!(json.contains("\"inference\""));
        // Balanced braces/brackets — good enough without a JSON parser.
        let depth = json.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
    }
}
