//! # etude-obs
//!
//! Server-side request tracing and stage-latency observability.
//!
//! ETUDE's whole point is *measuring* inference latency, but a load
//! generator only sees the end-to-end round trip: queue wait, batch
//! formation, model compute, top-k retrieval and serialization are
//! indistinguishable from the outside. This crate records where the
//! milliseconds go *inside* the server, cheaply enough to stay on in
//! production-style runs:
//!
//! * [`span::Stage`] — the fixed request pipeline stages
//!   (parse → queue → inference → top-k → serialize, plus the
//!   server-observed total),
//! * [`ring::SpanRing`] — a fixed-capacity, lock-free (atomic-cursor)
//!   ring buffer of POD [`span::SpanRecord`]s with per-slot seqlocks;
//!   one ring per writing thread, so the hot path takes no locks and
//!   performs no allocation,
//! * [`recorder::Recorder`] — the per-server registry of thread rings,
//!   hands out RAII [`recorder::SpanGuard`]s and aggregates ring
//!   contents into per-stage [`etude_metrics::hdr::Histogram`]s,
//! * [`stats`] — snapshot aggregation plus rendering to the Prometheus
//!   text exposition format (`/metrics`) and a JSON document (`/stats`),
//!   and the matching parser the load generator uses to merge
//!   server-side breakdowns into its client-side reports.
//!
//! The overhead budget is enforced by tests: recording a span in steady
//! state performs zero heap allocations (a counting global allocator
//! proves it) and costs two `Instant::now()` calls plus a handful of
//! relaxed atomic stores.

//! PR 4 extends the single-server story to a fleet:
//!
//! * [`trace`] — `x-trace-ctx` propagation, pod span retention and the
//!   post-run collector that exports Chrome `trace_event` JSON,
//! * [`window`] — rolling fixed-bucket per-stage histograms (constant
//!   memory, zero steady-state allocation),
//! * [`fleet`] — merging per-pod `/stats` snapshots into bit-identical
//!   fleet histograms, skew views and Prometheus series,
//! * [`slo`] — a multi-window multi-burn-rate SLO evaluator reporting
//!   when an SLO first fell over and why.
//!
//! PR 9 adds the third layer — seeing *why* a tail is slow:
//!
//! * [`profile`] — an always-on cooperative sampling profiler: scoped
//!   tags on per-thread seqlock stacks, folded into flamegraph-
//!   compatible counts by a ticker thread (`/debug/profile`),
//! * [`exemplar`] — a bounded slowest-N-per-window store retaining each
//!   outlier's complete stage span tree plus profiler leaf deltas,
//!   exported as Chrome trace JSON (`/debug/slow`),
//! * [`stats::ReactorTelemetry`] — event-loop busy/wait utilization,
//!   poll batch, wake-to-dequeue and dispatch queue-wait histograms
//!   from the reactor tier, merged order-independently into `/fleet`.

pub mod exemplar;
pub mod fleet;
pub mod profile;
pub mod recorder;
pub mod ring;
pub mod slo;
pub mod span;
pub mod stats;
pub mod trace;
pub mod window;

pub use exemplar::{ExemplarMark, ExemplarStore};
pub use fleet::{
    parse_fleet_health, parse_fleet_shards, FleetSnapshot, ShardGroupHealth, StageSkew,
};
pub use profile::{ProfileStats, ScopeGuard, Site};
pub use recorder::{Recorder, SpanGuard};
pub use ring::SpanRing;
pub use slo::{SloCause, SloMonitor, SloPolicy, SloReport, SloViolation, TickAttribution};
pub use span::{request_id_hash, SpanRecord, Stage};
pub use stats::{parse_stats_json, ReactorTelemetry, StageCounts, StageStats, StatsSnapshot};
pub use trace::{ClientAttempt, ClientSpan, PodSpanRecord, TraceCollector, TraceCtx, TRACE_HEADER};
pub use window::{WindowConfig, WindowSnapshot};
