//! A fixed-capacity, lock-free ring buffer of POD span records.
//!
//! One [`SpanRing`] belongs to exactly one writing thread (the
//! [`crate::recorder::Recorder`] hands each thread its own ring), so the
//! write side is single-producer: a relaxed atomic cursor claims the next
//! slot and a per-slot sequence word makes concurrent reads safe. The
//! hot path performs no allocation and takes no locks — pushing a record
//! is one `fetch_add` plus five plain atomic stores.
//!
//! The sequence word doubles as a generation tag: slot `n & mask` holds
//! `2n + 2` once push `n` has completed (and `2n + 1` while it is in
//! progress). A reader that expects push `n` therefore detects both torn
//! reads *and* slots that a faster writer has already lapped, so records
//! are folded into the aggregate histograms exactly once.

use crate::span::{SpanRecord, Stage};
use std::sync::atomic::{fence, AtomicU64, Ordering};

/// Default ring capacity per thread (records). At 32 bytes per slot this
/// is 256 KiB per writing thread — roomy enough that a scrape every few
/// seconds never laps, small enough to forget about.
pub const DEFAULT_CAPACITY: usize = 8_192;

struct Slot {
    /// `2n + 2` after push `n` completed, `2n + 1` while it is written.
    seq: AtomicU64,
    request_id: AtomicU64,
    /// Stage discriminant in the low byte.
    stage: AtomicU64,
    duration_nanos: AtomicU64,
}

/// A single-writer, multi-reader ring of [`SpanRecord`]s.
pub struct SpanRing {
    slots: Box<[Slot]>,
    mask: u64,
    /// Total records ever pushed (the write cursor).
    pushed: AtomicU64,
    /// Total records folded out by [`SpanRing::drain`] (the read cursor).
    /// Only the aggregating reader advances this, under the recorder's
    /// aggregation lock.
    consumed: AtomicU64,
}

impl SpanRing {
    /// Creates a ring with `capacity` slots (rounded up to a power of
    /// two, minimum 64).
    pub fn new(capacity: usize) -> SpanRing {
        let cap = capacity.max(64).next_power_of_two();
        let slots = (0..cap)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                request_id: AtomicU64::new(0),
                stage: AtomicU64::new(0),
                duration_nanos: AtomicU64::new(0),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SpanRing {
            slots,
            mask: (cap - 1) as u64,
            pushed: AtomicU64::new(0),
            consumed: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records pushed over the ring's lifetime.
    pub fn pushed(&self) -> u64 {
        self.pushed.load(Ordering::Relaxed)
    }

    /// Records one span. Lock-free and allocation-free; must only be
    /// called from the thread that owns this ring.
    pub fn push(&self, record: SpanRecord) {
        let n = self.pushed.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(n & self.mask) as usize];
        slot.seq.store(2 * n + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.request_id.store(record.request_id, Ordering::Relaxed);
        slot.stage
            .store(record.stage as u8 as u64, Ordering::Relaxed);
        slot.duration_nanos
            .store(record.duration_nanos, Ordering::Relaxed);
        slot.seq.store(2 * n + 2, Ordering::Release);
    }

    /// Folds every record pushed since the previous drain into `f`,
    /// advancing the read cursor. Returns the number of records lost to
    /// lapping (overwritten before this drain, or torn by a concurrent
    /// lap mid-read).
    ///
    /// Intended to be called by one aggregating reader at a time (the
    /// recorder serialises drains behind its aggregation lock); the
    /// writer may keep pushing concurrently.
    pub fn drain(&self, mut f: impl FnMut(SpanRecord)) -> u64 {
        let to = self.pushed.load(Ordering::Acquire);
        let from = self.consumed.load(Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        // Records older than one lap are already gone.
        let start = from.max(to.saturating_sub(cap));
        let mut dropped = start - from;
        let mut stop = to;
        for n in start..to {
            let slot = &self.slots[(n & self.mask) as usize];
            let expected = 2 * n + 2;
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 < expected {
                // Push `n` claimed its slot but has not finished writing
                // it; leave it (and everything after) for the next drain.
                stop = n;
                break;
            }
            if s1 > expected {
                // A newer push owns the slot: `n` was lapped and is gone.
                dropped += 1;
                continue;
            }
            let request_id = slot.request_id.load(Ordering::Relaxed);
            let stage = slot.stage.load(Ordering::Relaxed);
            let duration_nanos = slot.duration_nanos.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            let s2 = slot.seq.load(Ordering::Relaxed);
            if s2 != expected {
                // Overwritten mid-read; the data is torn and unusable.
                dropped += 1;
                continue;
            }
            match Stage::from_u8(stage as u8) {
                Some(stage) => f(SpanRecord {
                    request_id,
                    stage,
                    duration_nanos,
                }),
                None => dropped += 1,
            }
        }
        self.consumed.store(stop, Ordering::Relaxed);
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, nanos: u64) -> SpanRecord {
        SpanRecord {
            request_id: id,
            stage: Stage::Inference,
            duration_nanos: nanos,
        }
    }

    #[test]
    fn push_then_drain_roundtrips_in_order() {
        let ring = SpanRing::new(64);
        for i in 0..10 {
            ring.push(rec(i, i * 100));
        }
        let mut seen = Vec::new();
        let dropped = ring.drain(|r| seen.push(r.request_id));
        assert_eq!(dropped, 0);
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn drain_is_incremental() {
        let ring = SpanRing::new(64);
        ring.push(rec(1, 10));
        let mut count = 0;
        ring.drain(|_| count += 1);
        assert_eq!(count, 1);
        ring.push(rec(2, 20));
        ring.push(rec(3, 30));
        let mut ids = Vec::new();
        ring.drain(|r| ids.push(r.request_id));
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn lapping_drops_oldest_records() {
        let ring = SpanRing::new(64); // rounds to 64 slots
        for i in 0..100 {
            ring.push(rec(i, 0));
        }
        let mut ids = Vec::new();
        let dropped = ring.drain(|r| ids.push(r.request_id));
        assert_eq!(dropped, 36);
        assert_eq!(ids.first(), Some(&36));
        assert_eq!(ids.len(), 64);
        assert_eq!(ids.last(), Some(&99));
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(SpanRing::new(100).capacity(), 128);
        assert_eq!(SpanRing::new(1).capacity(), 64);
    }

    #[test]
    fn concurrent_drain_never_yields_torn_or_duplicate_records() {
        use std::sync::Arc;
        let ring = Arc::new(SpanRing::new(256));
        let writer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..200_000u64 {
                    // id and duration always agree; a torn read would break that.
                    ring.push(rec(i, i * 7));
                }
            })
        };
        let mut last_seen = None;
        let mut total = 0u64;
        let mut dropped = 0u64;
        while !writer.is_finished() {
            dropped += ring.drain(|r| {
                assert_eq!(r.duration_nanos, r.request_id * 7, "torn record");
                if let Some(prev) = last_seen {
                    assert!(r.request_id > prev, "duplicate or reordered record");
                }
                last_seen = Some(r.request_id);
                total += 1;
            });
        }
        writer.join().unwrap();
        dropped += ring.drain(|r| {
            assert_eq!(r.duration_nanos, r.request_id * 7);
            total += 1;
        });
        assert_eq!(
            total + dropped,
            200_000,
            "every push accounted exactly once"
        );
    }
}
