//! Fitting the two marginal statistics from a raw click log.
//!
//! ETUDE's workflow (paper, Section II): "These statistics can be
//! estimated once from a real click log and reused for experiments
//! later." [`LogStatistics::estimate`] performs that estimation —
//! maximum-likelihood power-law fits of the session-length and
//! click-count distributions — and converts directly into a
//! [`WorkloadConfig`] for Algorithm 1.

use crate::generator::WorkloadConfig;
use crate::powerlaw::fit_exponent;
use crate::session::SessionLog;

/// Tail fit: prefers `x_min = 5` (low discretisation bias) when at least
/// 500 samples reach the tail, falling back to smaller thresholds for
/// small logs.
fn fit_tail(samples: &[u64]) -> Option<f64> {
    for x_min in [5u64, 3, 2, 1] {
        let n_tail = samples.iter().filter(|&&x| x >= x_min).count();
        if n_tail >= 500 || x_min == 1 {
            if let Some(a) = fit_exponent(samples, x_min) {
                return Some(a);
            }
        }
    }
    None
}

/// Marginal statistics estimated from a click log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogStatistics {
    /// MLE exponent of the session-length distribution.
    pub alpha_length: f64,
    /// MLE exponent of the per-item click-count distribution.
    pub alpha_clicks: f64,
    /// Number of sessions observed.
    pub sessions: usize,
    /// Number of clicks observed.
    pub clicks: usize,
    /// Longest session observed.
    pub max_session_len: usize,
}

impl LogStatistics {
    /// Estimates the statistics from a log over a catalog of size `c`.
    ///
    /// Returns `None` when the log is too small for a meaningful fit
    /// (fewer than two sessions or no repeated items).
    pub fn estimate(log: &SessionLog, catalog_size: usize) -> Option<LogStatistics> {
        let lengths = log.session_lengths();
        let alpha_length = fit_tail(&lengths)?;
        let counts: Vec<u64> = log
            .item_click_counts(catalog_size)
            .into_iter()
            .filter(|&c| c > 0)
            .collect();
        let alpha_clicks = fit_tail(&counts)?;
        Some(LogStatistics {
            alpha_length,
            alpha_clicks,
            sessions: lengths.len(),
            clicks: log.len(),
            max_session_len: lengths.iter().copied().max().unwrap_or(0) as usize,
        })
    }

    /// Converts into a generator configuration for catalog size `c`.
    pub fn to_workload_config(&self, catalog_size: usize, seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            catalog_size,
            alpha_length: self.alpha_length,
            alpha_clicks: self.alpha_clicks,
            max_session_len: self.max_session_len.max(2),
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::SyntheticWorkload;

    #[test]
    fn roundtrip_recovers_generator_exponents() {
        // Generate with known exponents, estimate, and compare — the
        // self-consistency check behind the paper's claim that the two
        // marginals suffice.
        let cfg = WorkloadConfig {
            catalog_size: 2_000,
            alpha_length: 2.2,
            alpha_clicks: 1.9,
            max_session_len: 60,
            seed: 123,
        };
        let w = SyntheticWorkload::new(cfg);
        let log = w.generate(150_000);
        let stats = LogStatistics::estimate(&log, 2_000).expect("log large enough");
        assert!(
            (stats.alpha_length - 2.2).abs() < 0.3,
            "alpha_l {}",
            stats.alpha_length
        );
        // Click-count marginal passes through the popularity CDF, so the
        // recovered exponent is close but not exact.
        assert!(
            stats.alpha_clicks > 1.2 && stats.alpha_clicks < 2.8,
            "alpha_c {}",
            stats.alpha_clicks
        );
    }

    #[test]
    fn too_small_logs_are_rejected() {
        let log = SessionLog::new(vec![]);
        assert!(LogStatistics::estimate(&log, 100).is_none());
    }

    #[test]
    fn config_conversion_preserves_fields() {
        let stats = LogStatistics {
            alpha_length: 2.0,
            alpha_clicks: 1.7,
            sessions: 10,
            clicks: 25,
            max_session_len: 40,
        };
        let cfg = stats.to_workload_config(5_000, 9);
        assert_eq!(cfg.catalog_size, 5_000);
        assert_eq!(cfg.max_session_len, 40);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.alpha_length, 2.0);
    }
}
