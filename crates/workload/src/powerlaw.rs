//! Discrete bounded power-law distributions.
//!
//! Both workload marginals of the paper are power laws: session lengths
//! (`P(l) ∝ l^{-alpha_l}`) and item click counts (`P(x) ∝ x^{-alpha_c}`).
//! Sampling uses inverse-transform on the continuous bounded Pareto
//! distribution, which is branch-free and fast enough for the >1M
//! clicks/second requirement of the generator.

use rand::Rng;

/// A power law `P(x) ∝ x^{-alpha}` truncated to `[min, max]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLaw {
    /// Exponent `alpha > 1`.
    pub alpha: f64,
    /// Inclusive lower bound (>= 1).
    pub min: f64,
    /// Inclusive upper bound.
    pub max: f64,
}

impl PowerLaw {
    /// Creates a bounded power law. Bounds are sanitised to `1 <= min < max`
    /// and the exponent clamped away from the degenerate `alpha = 1`.
    pub fn new(alpha: f64, min: f64, max: f64) -> PowerLaw {
        let min = min.max(1.0);
        let max = max.max(min + 1.0);
        let alpha = if (alpha - 1.0).abs() < 1e-9 {
            1.000001
        } else {
            alpha
        };
        PowerLaw { alpha, min, max }
    }

    /// Samples a continuous value via inverse-transform sampling on the
    /// bounded Pareto CDF.
    pub fn sample_f64<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen::<f64>();
        let a = 1.0 - self.alpha;
        // Inverse of F(x) = (x^{1-α} - min^{1-α}) / (max^{1-α} - min^{1-α})
        let lo = self.min.powf(a);
        let hi = self.max.powf(a);
        (lo + u * (hi - lo)).powf(1.0 / a)
    }

    /// Samples a discrete value (rounded to nearest, clamped to bounds).
    ///
    /// Round-to-nearest (not floor) keeps the discrete MLE of
    /// [`fit_exponent`] — which assumes each integer represents the bin
    /// `[x - 0.5, x + 0.5)` — nearly unbiased.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        (self.sample_f64(rng).round() as u64).clamp(self.min.ceil() as u64, self.max.floor() as u64)
    }
}

/// Maximum-likelihood estimate of a power-law exponent (Clauset et al.):
/// `alpha = 1 + n / sum(ln(x_i / (x_min - 0.5)))` for discrete data.
///
/// Returns `None` when fewer than two samples are at or above `x_min`.
pub fn fit_exponent(samples: &[u64], x_min: u64) -> Option<f64> {
    let x_min = x_min.max(1);
    let shifted_min = x_min as f64 - 0.5;
    let mut n = 0u64;
    let mut log_sum = 0.0f64;
    for &x in samples {
        if x >= x_min {
            n += 1;
            log_sum += (x as f64 / shifted_min).ln();
        }
    }
    if n < 2 || log_sum <= 0.0 {
        return None;
    }
    Some(1.0 + n as f64 / log_sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn samples_respect_bounds() {
        let pl = PowerLaw::new(2.0, 1.0, 100.0);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = pl.sample(&mut rng);
            assert!((1..=100).contains(&x));
        }
    }

    #[test]
    fn heavier_tail_with_smaller_alpha() {
        let mut rng = SmallRng::seed_from_u64(2);
        let heavy = PowerLaw::new(1.5, 1.0, 10_000.0);
        let light = PowerLaw::new(3.0, 1.0, 10_000.0);
        let mean = |pl: &PowerLaw, rng: &mut SmallRng| {
            (0..20_000).map(|_| pl.sample(rng) as f64).sum::<f64>() / 20_000.0
        };
        let mh = mean(&heavy, &mut rng);
        let ml = mean(&light, &mut rng);
        assert!(mh > 2.0 * ml, "heavy {mh} vs light {ml}");
    }

    #[test]
    fn mle_recovers_known_exponent() {
        // Sample from a known alpha and check the estimator lands close.
        // Fitting from x_min = 5 (a tail fit, standard practice for
        // discrete data) keeps the discretisation bias small.
        for &alpha in &[1.6f64, 2.0, 2.8] {
            let pl = PowerLaw::new(alpha, 1.0, 1e9);
            let mut rng = SmallRng::seed_from_u64(3);
            let samples: Vec<u64> = (0..200_000).map(|_| pl.sample(&mut rng)).collect();
            let est = fit_exponent(&samples, 5).expect("enough samples");
            assert!((est - alpha).abs() < 0.2, "alpha {alpha}: estimated {est}");
        }
    }

    #[test]
    fn mle_requires_enough_samples() {
        assert_eq!(fit_exponent(&[], 1), None);
        assert_eq!(fit_exponent(&[5], 1), None);
        assert_eq!(fit_exponent(&[1, 1, 2], 5), None); // all below x_min
    }

    #[test]
    fn degenerate_alpha_is_sanitised() {
        let pl = PowerLaw::new(1.0, 1.0, 50.0);
        assert!(pl.alpha > 1.0);
        let mut rng = SmallRng::seed_from_u64(4);
        let x = pl.sample(&mut rng);
        assert!((1..=50).contains(&x));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let pl = PowerLaw::new(2.0, 1.0, 1000.0);
        let a: Vec<u64> = {
            let mut rng = SmallRng::seed_from_u64(9);
            (0..100).map(|_| pl.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = SmallRng::seed_from_u64(9);
            (0..100).map(|_| pl.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
