//! A generative stand-in for the proprietary bol.com click log.
//!
//! The paper validates its synthetic generator by replaying a *real*
//! click log and comparing latencies against a synthetic workload fitted
//! to it. The real log cannot be shipped; this module simulates one with
//! a *richer* process than Algorithm 1 — Zipf popularity with temporal
//! drift, browsing locality (a click is likely near the previous item in
//! id space, mimicking category browsing) and burstier session lengths —
//! so the validation is meaningful: the marginals must be *estimated*,
//! and matching them is not trivially true by construction.

use crate::session::{Click, SessionLog};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of the ground-truth log simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RealLogConfig {
    /// Catalog size.
    pub catalog_size: usize,
    /// Zipf skew of the base popularity (s ~ 1 is web-like).
    pub zipf_skew: f64,
    /// Fraction of clicks that follow browsing locality instead of
    /// popularity.
    pub locality: f64,
    /// Mean of the geometric-ish session-length mixture.
    pub mean_session_len: f64,
    /// Fraction of "research" sessions with long lengths.
    pub long_session_fraction: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for RealLogConfig {
    fn default() -> Self {
        RealLogConfig {
            catalog_size: 100_000,
            zipf_skew: 1.05,
            locality: 0.35,
            mean_session_len: 2.8,
            long_session_fraction: 0.05,
            seed: 4242,
        }
    }
}

/// Generates a ground-truth click log with `n` clicks (whole sessions).
pub fn generate_real_log(cfg: &RealLogConfig, n: u64) -> SessionLog {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let c = cfg.catalog_size;
    // Zipf popularity over a permuted id space with slow temporal drift:
    // rank r has weight (r+1)^(-s); ids are assigned ranks pseudo-randomly.
    let mut ranks: Vec<u32> = (0..c as u32).collect();
    // Deterministic Fisher-Yates shuffle.
    for i in (1..c).rev() {
        let j = rng.gen_range(0..=i);
        ranks.swap(i, j);
    }
    let mut weights: Vec<f64> = vec![0.0; c];
    for (rank, &id) in ranks.iter().enumerate() {
        weights[id as usize] = 1.0 / ((rank + 1) as f64).powf(cfg.zipf_skew);
    }
    let cdf = crate::ecdf::Ecdf::from_weights(weights.iter().copied());

    let mut clicks = Vec::with_capacity(n as usize + 64);
    let mut session = 0u64;
    let mut t = 0u64;
    while (clicks.len() as u64) < n {
        session += 1;
        // Session length: geometric mixture with a long-session component.
        let len = if rng.gen::<f64>() < cfg.long_session_fraction {
            rng.gen_range(10..60)
        } else {
            sample_geometric(&mut rng, 1.0 / cfg.mean_session_len).clamp(1, 30)
        };
        let mut prev: Option<u32> = None;
        for _ in 0..len {
            t += 1;
            let item = match prev {
                Some(p) if rng.gen::<f64>() < cfg.locality => {
                    // Browse near the previous item (same "category").
                    let offset = rng.gen_range(-20i64..=20);
                    ((p as i64 + offset).rem_euclid(c as i64)) as u32
                }
                _ => cdf.sample(&mut rng),
            };
            prev = Some(item);
            clicks.push(Click { session, item, t });
        }
    }
    SessionLog::new(clicks)
}

/// Geometric sample with success probability `p` (support >= 1).
fn sample_geometric(rng: &mut SmallRng, p: f64) -> usize {
    let p = p.clamp(1e-6, 1.0 - 1e-6);
    let u: f64 = rng.gen::<f64>().max(1e-12);
    (u.ln() / (1.0 - p).ln()).ceil().max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::LogStatistics;

    #[test]
    fn real_log_is_well_formed() {
        let cfg = RealLogConfig {
            catalog_size: 5_000,
            ..Default::default()
        };
        let log = generate_real_log(&cfg, 20_000);
        assert!(log.len() >= 20_000);
        log.check_invariants(5_000).unwrap();
    }

    #[test]
    fn marginals_are_estimable() {
        // The point of the stand-in: the two exponents can be fitted from
        // it, exactly as a data scientist would fit a real log.
        let cfg = RealLogConfig {
            catalog_size: 5_000,
            ..Default::default()
        };
        let log = generate_real_log(&cfg, 50_000);
        let stats = LogStatistics::estimate(&log, 5_000).expect("estimable");
        assert!(stats.alpha_length > 1.1 && stats.alpha_length < 5.0);
        assert!(stats.alpha_clicks > 1.1 && stats.alpha_clicks < 5.0);
    }

    #[test]
    fn popularity_is_skewed() {
        let cfg = RealLogConfig {
            catalog_size: 2_000,
            ..Default::default()
        };
        let log = generate_real_log(&cfg, 40_000);
        let mut counts = log.item_click_counts(2_000);
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = counts.iter().sum();
        let top: u64 = counts.iter().take(20).sum(); // top 1%
        assert!(top as f64 > 0.15 * total as f64);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = RealLogConfig {
            catalog_size: 1_000,
            ..Default::default()
        };
        let a = generate_real_log(&cfg, 5_000);
        let b = generate_real_log(&cfg, 5_000);
        assert_eq!(a.clicks(), b.clicks());
    }
}
