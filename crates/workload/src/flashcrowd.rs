//! Flash-crowd and diurnal arrival schedules for overload experiments
//! (DESIGN.md §16). The synthetic generator ([`crate::generator`])
//! answers *what* a session looks like; this module answers *when*
//! sessions arrive and *how important* each one is, so the overload
//! bench and chaos tests can drive a server through a reproducible
//! brownout.
//!
//! The arrival process is a nonhomogeneous Poisson process sampled by
//! thinning against the peak rate. The instantaneous rate is
//!
//! ```text
//! rate(t) = base_rps · (1 + A·sin(2πt/P)) · spike_multiplier(t)
//! ```
//!
//! — a diurnal sinusoid with one or more multiplicative flash-crowd
//! spikes layered on top. Item popularity *drifts* over the horizon:
//! each request draws its session from either the base catalog
//! distribution or a re-seeded (different Zipf realisation) one, with
//! the drifted share ramping linearly from 0 to [`FlashCrowdSpec::drift`].
//! Everything — arrival times, criticality classes, session content —
//! derives from one seed, so two builds of the same spec are
//! bit-identical and a chaos run can be replayed exactly.

use crate::generator::{SyntheticWorkload, WorkloadConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// One multiplicative flash-crowd spike: for `duration` starting at
/// `at`, the base (diurnal) rate is multiplied by `multiplier`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpikeSpec {
    /// Spike onset, measured from schedule start.
    pub at: Duration,
    /// Spike length.
    pub duration: Duration,
    /// Rate multiplier while the spike is active (`>= 1`).
    pub multiplier: f64,
}

/// A complete, seeded description of an overload workload.
#[derive(Debug, Clone, PartialEq)]
pub struct FlashCrowdSpec {
    /// Baseline arrival rate in requests per second.
    pub base_rps: f64,
    /// Relative amplitude of the diurnal sinusoid in `[0, 1)`.
    pub diurnal_amplitude: f64,
    /// Period of the diurnal sinusoid (compressed for tests: a "day"
    /// can be two seconds).
    pub diurnal_period: Duration,
    /// Flash-crowd spikes layered over the sinusoid.
    pub spikes: Vec<SpikeSpec>,
    /// Total schedule length.
    pub horizon: Duration,
    /// Traffic mix over the criticality classes
    /// `[shed-first, normal, critical]`; normalised internally.
    pub criticality_mix: [f64; 3],
    /// Fraction of requests drawn from the *drifted* item popularity
    /// distribution at the end of the horizon (linear ramp from 0).
    pub drift: f64,
    /// Session-content marginals (Algorithm 1).
    pub workload: WorkloadConfig,
    /// Master seed for arrivals, classes, and content streams.
    pub seed: u64,
}

impl FlashCrowdSpec {
    /// A compact flash-crowd: mild diurnal swing, one hard spike of
    /// `multiplier`× covering the middle half of the horizon, 10%
    /// shed-first / 70% normal / 20% critical traffic, mild drift.
    pub fn flash(catalog_size: usize, base_rps: f64, multiplier: f64, horizon: Duration) -> Self {
        FlashCrowdSpec {
            base_rps,
            diurnal_amplitude: 0.2,
            diurnal_period: horizon,
            spikes: vec![SpikeSpec {
                at: horizon / 4,
                duration: horizon / 2,
                multiplier,
            }],
            horizon,
            criticality_mix: [0.1, 0.7, 0.2],
            drift: 0.25,
            workload: WorkloadConfig::bolcom_like(catalog_size),
            seed: 0,
        }
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Instantaneous arrival rate at offset `t`.
    pub fn rate_at(&self, t: Duration) -> f64 {
        let secs = t.as_secs_f64();
        let period = self.diurnal_period.as_secs_f64().max(1e-9);
        let diurnal = 1.0 + self.diurnal_amplitude * (secs / period * std::f64::consts::TAU).sin();
        let spike: f64 = self
            .spikes
            .iter()
            .filter(|s| t >= s.at && t < s.at + s.duration)
            .map(|s| s.multiplier)
            .product();
        (self.base_rps * diurnal * spike).max(0.0)
    }

    /// An upper bound on [`Self::rate_at`] over the whole horizon —
    /// the thinning envelope.
    pub fn peak_rate(&self) -> f64 {
        let spike_peak: f64 = self.spikes.iter().map(|s| s.multiplier).fold(1.0, f64::max);
        self.base_rps * (1.0 + self.diurnal_amplitude.abs()) * spike_peak
    }

    /// Materialises the full schedule. Deterministic in `self`: equal
    /// specs yield byte-equal schedules.
    pub fn schedule(&self) -> Vec<ScheduledRequest> {
        let base = SyntheticWorkload::new(self.workload);
        // The drifted distribution is a different Zipf *realisation*
        // over the same catalog: same marginals, re-shuffled heads.
        let drifted = SyntheticWorkload::new(
            self.workload
                .with_seed(self.workload.seed ^ 0xd1f7_0000_0000_00d1),
        );
        let mut base_stream = base.clicks(self.seed ^ 0xa5a5);
        let mut drift_stream = drifted.clicks(self.seed ^ 0x5a5a);

        let mut rng = SmallRng::seed_from_u64(self.seed);
        let lambda = self.peak_rate().max(1e-9);
        let horizon = self.horizon.as_secs_f64();
        let mix = normalise(self.criticality_mix);

        let mut out = Vec::new();
        let mut t = 0.0f64;
        loop {
            // Exponential inter-arrival at the envelope rate...
            let u: f64 = rng.gen::<f64>();
            t += -(1.0 - u).ln() / lambda;
            if t >= horizon {
                break;
            }
            let at = Duration::from_secs_f64(t);
            // ...thinned down to the instantaneous rate.
            let accept: f64 = rng.gen::<f64>();
            if accept * lambda >= self.rate_at(at) {
                continue;
            }
            let class: f64 = rng.gen::<f64>();
            let criticality = pick_class(&mix, class);
            let drift_p = self.drift.clamp(0.0, 1.0) * (t / horizon);
            let coin: f64 = rng.gen::<f64>();
            let stream = if coin < drift_p {
                &mut drift_stream
            } else {
                &mut base_stream
            };
            out.push(ScheduledRequest {
                at,
                session: next_session(stream),
                criticality,
            });
        }
        out
    }
}

/// One request on the wire-clock: when to send it, which session body,
/// and which criticality class header to stamp.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledRequest {
    /// Send offset from schedule start.
    pub at: Duration,
    /// Session item ids (all `< C`).
    pub session: Vec<u32>,
    /// Criticality class index: 0 = shed-first, 1 = normal, 2 = critical.
    pub criticality: u8,
}

impl ScheduledRequest {
    /// The `/predictions` body: comma-separated item ids.
    pub fn body(&self) -> String {
        let mut s = String::with_capacity(self.session.len() * 4);
        for (i, item) in self.session.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&item.to_string());
        }
        s
    }
}

fn normalise(mix: [f64; 3]) -> [f64; 3] {
    let total: f64 = mix.iter().map(|m| m.max(0.0)).sum();
    if total <= 0.0 {
        return [0.0, 1.0, 0.0]; // default everything to `normal`
    }
    [
        mix[0].max(0.0) / total,
        mix[1].max(0.0) / total,
        mix[2].max(0.0) / total,
    ]
}

fn pick_class(mix: &[f64; 3], u: f64) -> u8 {
    let mut acc = 0.0;
    for (i, m) in mix.iter().enumerate() {
        acc += m;
        if u < acc {
            return i as u8;
        }
    }
    2
}

/// Pulls one whole session off an infinite click stream.
fn next_session(stream: &mut crate::generator::ClickStream<'_>) -> Vec<u32> {
    let mut items = Vec::new();
    loop {
        let click = stream.next().expect("stream is infinite");
        items.push(click.item);
        if stream.at_session_boundary() {
            return items;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FlashCrowdSpec {
        FlashCrowdSpec::flash(2_000, 200.0, 5.0, Duration::from_secs(4)).with_seed(7)
    }

    #[test]
    fn same_spec_replays_bit_identically() {
        let a = spec().schedule();
        let b = spec().schedule();
        assert_eq!(a, b, "equal specs must give byte-equal schedules");
        let c = spec().with_seed(8).schedule();
        assert_ne!(a, c, "a different seed must perturb the schedule");
    }

    #[test]
    fn spike_window_is_denser_than_the_shoulders() {
        let s = spec();
        let schedule = s.schedule();
        assert!(!schedule.is_empty());
        let spike = &s.spikes[0];
        let (mut inside, mut outside) = (0usize, 0usize);
        for r in &schedule {
            if r.at >= spike.at && r.at < spike.at + spike.duration {
                inside += 1;
            } else {
                outside += 1;
            }
        }
        // The spike covers half the horizon at 5× rate: the inside
        // count must dominate by a wide margin, not just half/half.
        assert!(
            inside as f64 > 2.5 * outside as f64,
            "spike density missing: {inside} in, {outside} out"
        );
    }

    #[test]
    fn rate_envelope_bounds_the_instantaneous_rate() {
        let s = spec();
        let peak = s.peak_rate();
        for i in 0..400 {
            let t = s.horizon * i / 400;
            assert!(s.rate_at(t) <= peak + 1e-9, "rate above envelope at {t:?}");
        }
    }

    #[test]
    fn criticality_mix_and_catalog_bounds_hold() {
        let s = spec();
        let schedule = s.schedule();
        let mut counts = [0usize; 3];
        for r in &schedule {
            counts[r.criticality as usize] += 1;
            assert!(!r.session.is_empty());
            assert!(r.session.iter().all(|&i| (i as usize) < 2_000));
        }
        let n = schedule.len() as f64;
        assert!((counts[0] as f64 / n - 0.1).abs() < 0.05, "{counts:?}");
        assert!((counts[1] as f64 / n - 0.7).abs() < 0.05, "{counts:?}");
        assert!((counts[2] as f64 / n - 0.2).abs() < 0.05, "{counts:?}");
    }

    #[test]
    fn body_round_trips_through_the_wire_format() {
        let r = ScheduledRequest {
            at: Duration::ZERO,
            session: vec![3, 1, 4, 1, 5],
            criticality: 1,
        };
        assert_eq!(r.body(), "3,1,4,1,5");
    }

    #[test]
    fn zero_mix_defaults_to_normal() {
        let mut s = spec();
        s.criticality_mix = [0.0, 0.0, 0.0];
        assert!(s.schedule().iter().all(|r| r.criticality == 1));
    }
}
