//! Algorithm 1: synthetic workload generation from marginal statistics.
//!
//! ```text
//! function GENERATE_SYNTHETIC_SESSIONS(C, N, alpha_l, alpha_c)
//!   I <- sample C click counts from power law with exponent alpha_c
//!   while n < N:
//!     s <- s + 1
//!     l <- sample session length from power law with exponent alpha_l
//!     n <- n + l
//!     for 0 to l:
//!       t <- t + 1
//!       i <- sample item id from the empirical CDF of I
//!       Q <- Q ∪ (s, i, t)
//! ```
//!
//! The implementation offers a batch form ([`SyntheticWorkload::generate`])
//! and a streaming iterator ([`SyntheticWorkload::clicks`]) for the load
//! generator, which must not hold multi-minute workloads in memory.

use crate::ecdf::Ecdf;
use crate::powerlaw::PowerLaw;
use crate::session::{Click, SessionLog};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Marginal statistics driving Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Catalog size `C`.
    pub catalog_size: usize,
    /// Exponent of the session-length power law (`alpha_l`).
    pub alpha_length: f64,
    /// Exponent of the click-count power law (`alpha_c`).
    pub alpha_clicks: f64,
    /// Maximum session length (sessions are truncated here; bol.com-style
    /// logs rarely exceed a few hundred interactions).
    pub max_session_len: usize,
    /// RNG seed for reproducible workloads.
    pub seed: u64,
}

impl WorkloadConfig {
    /// Marginals estimated from the bol.com click log as reported in the
    /// Serenade line of work: session lengths are heavily skewed towards
    /// one or two clicks; item popularity has a heavy Zipf-like tail.
    pub fn bolcom_like(catalog_size: usize) -> WorkloadConfig {
        WorkloadConfig {
            catalog_size,
            alpha_length: 2.0,
            alpha_clicks: 1.8,
            max_session_len: 200,
            seed: 20240101,
        }
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A prepared synthetic workload: the per-item click-count CDF is built
/// once (Algorithm 1, line 7) and reused for any number of sessions.
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    config: WorkloadConfig,
    item_cdf: Ecdf,
    length_dist: PowerLaw,
}

impl SyntheticWorkload {
    /// Builds the workload: samples `C` click counts and prepares the CDF.
    pub fn new(config: WorkloadConfig) -> SyntheticWorkload {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let count_dist = PowerLaw::new(config.alpha_clicks, 1.0, 1e7);
        let weights = (0..config.catalog_size).map(|_| count_dist.sample(&mut rng) as f64);
        let item_cdf = Ecdf::from_weights(weights);
        let length_dist = PowerLaw::new(
            config.alpha_length,
            1.0,
            config.max_session_len.max(2) as f64,
        );
        SyntheticWorkload {
            config,
            item_cdf,
            length_dist,
        }
    }

    /// The configuration this workload was built from.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// The empirical item-popularity CDF.
    pub fn item_cdf(&self) -> &Ecdf {
        &self.item_cdf
    }

    /// Generates at least `n` clicks as a batch (Algorithm 1 verbatim).
    /// Generation stops at the next session boundary so replayed sessions
    /// are always whole.
    pub fn generate(&self, n: u64) -> SessionLog {
        let mut clicks = Vec::with_capacity(n as usize + self.config.max_session_len);
        let mut stream = self.clicks(self.config.seed ^ 0x9e37_79b9);
        loop {
            let c = stream.next().expect("stream is infinite");
            clicks.push(c);
            if clicks.len() as u64 >= n && stream.at_session_boundary() {
                break;
            }
        }
        SessionLog::new(clicks)
    }

    /// An infinite streaming click iterator with its own RNG stream.
    pub fn clicks(&self, stream_seed: u64) -> ClickStream<'_> {
        ClickStream {
            workload: self,
            rng: SmallRng::seed_from_u64(stream_seed),
            session: 0,
            t: 0,
            remaining_in_session: 0,
        }
    }
}

/// Infinite iterator over synthetic clicks (Algorithm 1's inner loops).
pub struct ClickStream<'a> {
    workload: &'a SyntheticWorkload,
    rng: SmallRng,
    session: u64,
    t: u64,
    remaining_in_session: usize,
}

impl<'a> ClickStream<'a> {
    /// Whether the next click starts a new session.
    pub fn at_session_boundary(&self) -> bool {
        self.remaining_in_session == 0
    }
}

impl<'a> Iterator for ClickStream<'a> {
    type Item = Click;

    fn next(&mut self) -> Option<Click> {
        if self.remaining_in_session == 0 {
            self.session += 1; // line 9: s <- s + 1
            let l = self.workload.length_dist.sample(&mut self.rng) as usize; // line 10
            self.remaining_in_session = l.clamp(1, self.workload.config.max_session_len);
        }
        self.t += 1; // line 13
        self.remaining_in_session -= 1;
        let item = self.workload.item_cdf.sample(&mut self.rng); // line 14
        Some(Click {
            session: self.session,
            item,
            t: self.t,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::powerlaw::fit_exponent;

    fn config() -> WorkloadConfig {
        WorkloadConfig {
            catalog_size: 5_000,
            alpha_length: 2.0,
            alpha_clicks: 1.8,
            max_session_len: 50,
            seed: 77,
        }
    }

    #[test]
    fn generates_at_least_n_clicks_with_whole_sessions() {
        let w = SyntheticWorkload::new(config());
        let log = w.generate(10_000);
        assert!(log.len() >= 10_000);
        log.check_invariants(5_000).unwrap();
    }

    #[test]
    fn session_length_marginal_is_recovered() {
        let w = SyntheticWorkload::new(config());
        let log = w.generate(200_000);
        let lengths = log.session_lengths();
        // Tail fit from x_min = 5; truncation at max_session_len biases
        // the estimate slightly low, hence the widened tolerance.
        let est = fit_exponent(&lengths, 5).expect("enough sessions");
        assert!(
            (est - config().alpha_length).abs() < 0.35,
            "estimated alpha_l = {est}"
        );
    }

    #[test]
    fn click_count_marginal_is_heavy_tailed() {
        let w = SyntheticWorkload::new(config());
        let log = w.generate(100_000);
        let counts = log.item_click_counts(5_000);
        // Top 1% of items should attract a disproportionate click share.
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = sorted.iter().sum();
        let top1pct: u64 = sorted.iter().take(50).sum();
        assert!(
            top1pct as f64 > 0.10 * total as f64,
            "top-1% share {}",
            top1pct as f64 / total as f64
        );
    }

    #[test]
    fn streams_are_deterministic_and_independent() {
        let w = SyntheticWorkload::new(config());
        let a: Vec<Click> = w.clicks(1).take(100).collect();
        let b: Vec<Click> = w.clicks(1).take(100).collect();
        let c: Vec<Click> = w.clicks(2).take(100).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn stream_t_and_sessions_are_monotone() {
        let w = SyntheticWorkload::new(config());
        let clicks: Vec<Click> = w.clicks(3).take(5_000).collect();
        SessionLog::new(clicks).check_invariants(5_000).unwrap();
    }

    #[test]
    fn sessions_respect_max_length() {
        let mut cfg = config();
        cfg.max_session_len = 5;
        cfg.alpha_length = 1.2; // heavy tail would exceed the cap often
        let w = SyntheticWorkload::new(cfg);
        let log = w.generate(5_000);
        assert!(log.session_lengths().iter().all(|&l| l <= 5));
    }
}
