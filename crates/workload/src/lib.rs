//! # etude-workload
//!
//! Synthetic click-workload generation for ETUDE (paper, Section II,
//! Algorithm 1). A core design goal of the framework is load testing
//! *without replaying sensitive real click data*: users provide only two
//! marginal statistics of their click log — the power-law exponent
//! `alpha_l` of the session-length distribution and the exponent
//! `alpha_c` of the item click-count distribution — and the generator
//! produces synthetic sessions preserving those marginals.
//!
//! The crate contains:
//!
//! * [`powerlaw`] — discrete bounded power-law sampling and maximum
//!   likelihood exponent estimation,
//! * [`ecdf`] — empirical CDFs with `O(log C)` inverse-transform sampling,
//! * [`flashcrowd`] — seeded flash-crowd/diurnal arrival schedules with
//!   Zipf drift and criticality classes, for overload experiments,
//! * [`generator`] — Algorithm 1 itself, in batch and streaming forms
//!   (the paper reports >1M clicks/second on one core at `C = 10^7`;
//!   `cargo bench -p etude-bench --bench workload_gen` reproduces this),
//! * [`stats`] — fitting the two exponents from a raw click log,
//! * [`reallog`] — a generative stand-in for the proprietary bol.com
//!   click log, used to reproduce the real-vs-synthetic validation
//!   experiment,
//! * [`session`] — click/session types and invariant helpers.

pub mod ecdf;
pub mod flashcrowd;
pub mod generator;
pub mod powerlaw;
pub mod reallog;
pub mod session;
pub mod stats;

pub use ecdf::Ecdf;
pub use flashcrowd::{FlashCrowdSpec, ScheduledRequest, SpikeSpec};
pub use generator::{SyntheticWorkload, WorkloadConfig};
pub use session::{Click, SessionLog};
pub use stats::LogStatistics;
