//! Empirical cumulative distribution functions with fast
//! inverse-transform sampling (Algorithm 1, line 14).
//!
//! The generator draws `C` click counts once (line 7) and then samples
//! item ids from their empirical CDF for every synthetic click. With
//! catalogs of up to 20 million items, sampling must be `O(log C)` and
//! allocation-free: a binary search over the cumulative weight array.

use rand::Rng;

/// An empirical CDF over items `0..n`, built from per-item weights.
#[derive(Debug, Clone)]
pub struct Ecdf {
    cumulative: Vec<f64>,
    total: f64,
}

impl Ecdf {
    /// Builds the CDF from per-item weights (e.g. click counts).
    /// Zero-weight items are never sampled.
    pub fn from_weights<I>(weights: I) -> Ecdf
    where
        I: IntoIterator<Item = f64>,
    {
        let mut cumulative = Vec::new();
        let mut acc = 0.0;
        for w in weights {
            acc += w.max(0.0);
            cumulative.push(acc);
        }
        Ecdf {
            total: acc,
            cumulative,
        }
    }

    /// Number of items covered.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the CDF covers no items.
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Total weight mass.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Samples an item id by inverse-transform sampling.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        debug_assert!(!self.cumulative.is_empty() && self.total > 0.0);
        let u = rng.gen::<f64>() * self.total;
        self.quantile_index(u)
    }

    /// Index of the first cumulative weight >= `u` (binary search).
    fn quantile_index(&self, u: f64) -> u32 {
        let mut lo = 0usize;
        let mut hi = self.cumulative.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.cumulative[mid] < u {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo.min(self.cumulative.len() - 1) as u32
    }

    /// Probability mass of item `i`.
    pub fn mass(&self, i: usize) -> f64 {
        if self.total == 0.0 {
            return 0.0;
        }
        let prev = if i == 0 { 0.0 } else { self.cumulative[i - 1] };
        (self.cumulative[i] - prev) / self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn samples_follow_weights() {
        let cdf = Ecdf::from_weights([1.0, 0.0, 3.0]);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[cdf.sample(&mut rng) as usize] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight item sampled");
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn mass_sums_to_one() {
        let cdf = Ecdf::from_weights([2.0, 5.0, 3.0]);
        let total: f64 = (0..3).map(|i| cdf.mass(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((cdf.mass(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_index_is_monotone() {
        let cdf = Ecdf::from_weights((0..100).map(|i| (i + 1) as f64));
        let mut last = 0;
        for step in 0..50 {
            let u = cdf.total() * step as f64 / 50.0;
            let idx = cdf.quantile_index(u);
            assert!(idx >= last);
            last = idx;
        }
    }

    #[test]
    fn negative_weights_are_clamped() {
        let cdf = Ecdf::from_weights([1.0, -5.0, 1.0]);
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..1000 {
            assert_ne!(cdf.sample(&mut rng), 1);
        }
    }

    #[test]
    fn single_item_cdf_always_returns_it() {
        let cdf = Ecdf::from_weights([7.0]);
        let mut rng = SmallRng::seed_from_u64(7);
        assert_eq!(cdf.sample(&mut rng), 0);
    }
}
