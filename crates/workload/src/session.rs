//! Click and session types shared across the workload pipeline.

/// A single click: session `s`, item `i`, logical timestamp `t`
/// (Algorithm 1's `(s, i, t)` tuples).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Click {
    /// Session identifier (1-based, monotonically increasing).
    pub session: u64,
    /// Clicked item id (`< C`).
    pub item: u32,
    /// Global click counter (unique, monotonically increasing).
    pub t: u64,
}

/// A click log grouped by session, in arrival order.
#[derive(Debug, Clone, Default)]
pub struct SessionLog {
    clicks: Vec<Click>,
}

impl SessionLog {
    /// Wraps a click vector (assumed to be in generation order).
    pub fn new(clicks: Vec<Click>) -> SessionLog {
        SessionLog { clicks }
    }

    /// All clicks in order.
    pub fn clicks(&self) -> &[Click] {
        &self.clicks
    }

    /// Total click count.
    pub fn len(&self) -> usize {
        self.clicks.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.clicks.is_empty()
    }

    /// Number of distinct sessions.
    pub fn session_count(&self) -> usize {
        let mut n = 0;
        let mut last = None;
        for c in &self.clicks {
            if last != Some(c.session) {
                n += 1;
                last = Some(c.session);
            }
        }
        n
    }

    /// Iterates sessions as item-id slices (clicks of one session are
    /// contiguous in a well-formed log).
    pub fn sessions(&self) -> impl Iterator<Item = (u64, Vec<u32>)> + '_ {
        SessionIter {
            clicks: &self.clicks,
            pos: 0,
        }
    }

    /// Session length histogram (index = length, value = count).
    pub fn session_lengths(&self) -> Vec<u64> {
        self.sessions()
            .map(|(_, items)| items.len() as u64)
            .collect()
    }

    /// Per-item click counts over a catalog of size `c`.
    pub fn item_click_counts(&self, c: usize) -> Vec<u64> {
        let mut counts = vec![0u64; c];
        for click in &self.clicks {
            if (click.item as usize) < c {
                counts[click.item as usize] += 1;
            }
        }
        counts
    }

    /// Checks the structural invariants of Algorithm 1's output:
    /// session ids contiguous and non-decreasing, `t` strictly increasing,
    /// all items below `c`. Returns the first violated invariant.
    pub fn check_invariants(&self, c: usize) -> Result<(), &'static str> {
        let mut last_session = 0u64;
        let mut last_t = 0u64;
        for click in &self.clicks {
            if click.session < last_session {
                return Err("session ids must be non-decreasing");
            }
            if click.session > last_session + 1 {
                return Err("session ids must be contiguous");
            }
            if click.t <= last_t && last_t != 0 {
                return Err("click timestamps must strictly increase");
            }
            if click.item as usize >= c {
                return Err("item id outside catalog");
            }
            last_session = click.session;
            last_t = click.t;
        }
        Ok(())
    }
}

struct SessionIter<'a> {
    clicks: &'a [Click],
    pos: usize,
}

impl<'a> Iterator for SessionIter<'a> {
    type Item = (u64, Vec<u32>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.clicks.len() {
            return None;
        }
        let sid = self.clicks[self.pos].session;
        let mut items = Vec::new();
        while self.pos < self.clicks.len() && self.clicks[self.pos].session == sid {
            items.push(self.clicks[self.pos].item);
            self.pos += 1;
        }
        Some((sid, items))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log() -> SessionLog {
        SessionLog::new(vec![
            Click {
                session: 1,
                item: 5,
                t: 1,
            },
            Click {
                session: 1,
                item: 6,
                t: 2,
            },
            Click {
                session: 2,
                item: 5,
                t: 3,
            },
        ])
    }

    #[test]
    fn groups_sessions_in_order() {
        let sessions: Vec<_> = log().sessions().collect();
        assert_eq!(sessions.len(), 2);
        assert_eq!(sessions[0], (1, vec![5, 6]));
        assert_eq!(sessions[1], (2, vec![5]));
    }

    #[test]
    fn counts_items_and_sessions() {
        let l = log();
        assert_eq!(l.session_count(), 2);
        let counts = l.item_click_counts(10);
        assert_eq!(counts[5], 2);
        assert_eq!(counts[6], 1);
    }

    #[test]
    fn invariants_hold_for_well_formed_logs() {
        assert!(log().check_invariants(10).is_ok());
    }

    #[test]
    fn invariants_catch_violations() {
        let bad_item = SessionLog::new(vec![Click {
            session: 1,
            item: 99,
            t: 1,
        }]);
        assert!(bad_item.check_invariants(10).is_err());
        let bad_t = SessionLog::new(vec![
            Click {
                session: 1,
                item: 1,
                t: 5,
            },
            Click {
                session: 1,
                item: 1,
                t: 5,
            },
        ]);
        assert!(bad_t.check_invariants(10).is_err());
        let gap = SessionLog::new(vec![
            Click {
                session: 1,
                item: 1,
                t: 1,
            },
            Click {
                session: 3,
                item: 1,
                t: 2,
            },
        ]);
        assert!(gap.check_invariants(10).is_err());
    }

    #[test]
    fn session_lengths_histogram() {
        assert_eq!(log().session_lengths(), vec![2, 1]);
    }
}
