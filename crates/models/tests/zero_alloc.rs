//! Verifies the steady-state zero-allocation guarantee of the scratch
//! based index search paths: after warm-up, `search_into` must not touch
//! the heap at all. A counting global allocator makes the claim
//! checkable rather than aspirational.
//!
//! The whole check lives in a single `#[test]` so no concurrently
//! running test pollutes the process-wide allocation counter.

use etude_models::retrieval::{ExactIndex, QuantizedIndex, SearchScratch};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_search_into_does_not_allocate() {
    let (c, d, k) = (4_096, 16, 21);
    let mut rng = SmallRng::seed_from_u64(42);
    let table: Vec<f32> = (0..c * d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let query: Vec<f32> = (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let exact = ExactIndex::new(table.clone(), c, d);
    let quant = QuantizedIndex::from_f32(&table, c, d);

    let mut scratch = SearchScratch::default();
    let mut ids = Vec::new();
    let mut scores = Vec::new();

    // Warm-up: buffers grow to their steady-state capacity here.
    for _ in 0..3 {
        exact.search_into(&query, k, &mut scratch, &mut ids, &mut scores);
        quant.search_into(&query, k, &mut scratch, &mut ids, &mut scores);
    }
    let expected_ids = ids.clone();

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..100 {
        exact.search_into(&query, k, &mut scratch, &mut ids, &mut scores);
        quant.search_into(&query, k, &mut scratch, &mut ids, &mut scores);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state search_into allocated {} times over 200 searches",
        after - before
    );
    assert_eq!(
        ids, expected_ids,
        "results must stay identical across reuse"
    );
    assert_eq!(ids.len(), k);
}
