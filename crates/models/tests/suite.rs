//! Cross-model behavioural suite: every paper claim about the model set
//! (JIT-ability, quirk costs, determinism) checked across all ten models.

use etude_models::{traits, ModelConfig, ModelKind};
use etude_tensor::{Device, ExecMode, JitError, JitOptions};

fn small_cfg() -> ModelConfig {
    ModelConfig::new(200).with_max_session_len(8).with_seed(11)
}

/// Golden-output regression: every model's exact recommendation for a
/// fixed seed/session is pinned in `tests/golden/<model>.txt`. Scores are
/// rendered with `f32`'s shortest round-trip `Display`, so any numeric
/// drift — a reordered reduction, a changed initialiser, an "equivalent"
/// refactor — fails this test. Regenerate fixtures deliberately with
/// `ETUDE_BLESS_GOLDEN=1 cargo test -p etude-models --test suite golden`.
#[test]
fn outputs_match_golden_fixtures() {
    let cfg = small_cfg();
    let session = [3u32, 5, 7, 11];
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let bless = std::env::var_os("ETUDE_BLESS_GOLDEN").is_some();
    for kind in ModelKind::ALL {
        let model = kind.build(&cfg);
        let rec = traits::recommend_eager(model.as_ref(), &Device::cpu(), &session).unwrap();
        let rendered: String = rec
            .items
            .iter()
            .zip(&rec.scores)
            .map(|(item, score)| format!("{item}:{score}\n"))
            .collect();
        let path = dir.join(format!("{}.txt", kind.name()));
        if bless {
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(&path, &rendered).unwrap();
            continue;
        }
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{}: missing golden fixture {path:?}: {e}", kind.name()));
        assert_eq!(
            rendered,
            golden,
            "{}: output drifted from {path:?} — if the change is intended, \
             re-bless with ETUDE_BLESS_GOLDEN=1",
            kind.name()
        );
    }
}

#[test]
fn all_ten_models_build_and_recommend() {
    let cfg = small_cfg();
    for kind in ModelKind::ALL {
        let model = kind.build(&cfg);
        let rec = traits::recommend_eager(model.as_ref(), &Device::cpu(), &[3, 5, 7])
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        assert_eq!(rec.items.len(), cfg.top_k.min(cfg.catalog_size));
        assert!(
            rec.items.iter().all(|&i| (i as usize) < cfg.catalog_size),
            "{}: item out of catalog",
            kind.name()
        );
        assert!(
            rec.scores
                .windows(2)
                .all(|w| w[0] >= w[1] || (w[0] - w[1]).abs() < 1e-6),
            "{}: scores not sorted",
            kind.name()
        );
    }
}

#[test]
fn recommendations_are_deterministic() {
    let cfg = small_cfg();
    for kind in ModelKind::ALL {
        let a = kind.build(&cfg);
        let b = kind.build(&cfg);
        let ra = traits::recommend_eager(a.as_ref(), &Device::cpu(), &[1, 2, 3]).unwrap();
        let rb = traits::recommend_eager(b.as_ref(), &Device::cpu(), &[1, 2, 3]).unwrap();
        assert_eq!(ra.items, rb.items, "{} not deterministic", kind.name());
    }
}

#[test]
fn session_context_changes_recommendations() {
    // Models must actually condition on the session; require it for at
    // least 8/10 on this particular seed.
    let cfg = small_cfg();
    let mut differing = 0;
    for kind in ModelKind::ALL {
        let model = kind.build(&cfg);
        let a = traits::recommend_eager(model.as_ref(), &Device::cpu(), &[1]).unwrap();
        let b = traits::recommend_eager(model.as_ref(), &Device::cpu(), &[150, 42, 99]).unwrap();
        if a.items != b.items {
            differing += 1;
        }
    }
    assert!(differing >= 8, "only {differing}/10 models use context");
}

#[test]
fn cost_only_mode_agrees_with_real_mode_cost() {
    // The cost model used for 10M+ catalogs must agree exactly with what
    // real execution records, or Figure 3/4 numbers would be fiction.
    let cfg = small_cfg();
    for kind in ModelKind::ALL {
        let dense = kind.build(&cfg);
        let phantom = kind.build(&cfg.clone().without_weights());
        let real = traits::forward_cost(dense.as_ref(), &Device::cpu(), ExecMode::Real, 3)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        let est = traits::forward_cost(phantom.as_ref(), &Device::cpu(), ExecMode::CostOnly, 3)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        assert!(
            (real.flops - est.flops).abs() <= 1e-6 * real.flops.max(1.0),
            "{}: {} vs {}",
            kind.name(),
            real.flops,
            est.flops
        );
        assert_eq!(real.launches, est.launches, "{}", kind.name());
    }
}

#[test]
fn jit_compiles_all_models_except_quirky_lightsans() {
    // Paper, Section III-B: LightSANs "cannot be JIT-optimised by PyTorch
    // due to dynamic code paths"; the other nine compile.
    let cfg = small_cfg();
    for kind in ModelKind::ALL {
        let model = kind.build(&cfg);
        let compiled = traits::compile(model.as_ref(), JitOptions::default());
        if kind == ModelKind::LightSans {
            assert!(
                matches!(compiled, Err(JitError::DynamicControlFlow(_))),
                "quirky LightSANs must refuse JIT"
            );
        } else {
            compiled.unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        }
    }
}

#[test]
fn fixed_lightsans_is_jittable() {
    let cfg = small_cfg().with_quirks(false);
    let model = ModelKind::LightSans.build(&cfg);
    assert!(traits::compile(model.as_ref(), JitOptions::default()).is_ok());
}

#[test]
fn compiled_models_match_eager_outputs() {
    let cfg = small_cfg();
    for kind in ModelKind::ALL {
        if kind == ModelKind::LightSans {
            continue; // not JIT-able with quirks on
        }
        let model = kind.build(&cfg);
        let session = [4u32, 9, 2, 7];
        let eager = traits::recommend_eager(model.as_ref(), &Device::cpu(), &session).unwrap();
        let compiled = traits::compile(model.as_ref(), JitOptions::default()).unwrap();
        let jit = traits::recommend_compiled(model.as_ref(), &compiled, &session).unwrap();
        assert_eq!(
            eager.items,
            jit.items,
            "{}: JIT changed outputs",
            kind.name()
        );
    }
}

#[test]
fn jit_never_increases_cost() {
    // Paper, Section III-B: "JIT-optimisation is always beneficial and
    // never hurts performance."
    let cfg = small_cfg();
    for kind in ModelKind::ALL {
        if kind == ModelKind::LightSans {
            continue;
        }
        let model = kind.build(&cfg);
        let base = traits::compile(model.as_ref(), JitOptions::none()).unwrap();
        let opt = traits::compile(model.as_ref(), JitOptions::default()).unwrap();
        let b = base.cost().at_batch(1);
        let o = opt.cost().at_batch(1);
        assert!(o.launches <= b.launches, "{}", kind.name());
        assert!(o.bytes <= b.bytes * 1.0001, "{}", kind.name());
    }
}

#[test]
fn jit_strictly_reduces_launches_for_most_models() {
    // GRU4Rec's forward pass is almost entirely GRU-cell primitives with
    // no fusible elementwise chains, so strict reduction is not guaranteed
    // there; it must hold for the attention/graph/transformer models.
    let cfg = small_cfg();
    let mut strictly_reduced = 0;
    let mut eligible = 0;
    for kind in ModelKind::ALL {
        if kind == ModelKind::LightSans {
            continue;
        }
        eligible += 1;
        let model = kind.build(&cfg);
        let base = traits::compile(model.as_ref(), JitOptions::none()).unwrap();
        let opt = traits::compile(model.as_ref(), JitOptions::default()).unwrap();
        if opt.cost().at_batch(1).launches < base.cost().at_batch(1).launches {
            strictly_reduced += 1;
        }
    }
    assert!(
        strictly_reduced >= eligible - 1,
        "fusion fired for only {strictly_reduced}/{eligible} models"
    );
}

#[test]
fn quirky_models_cost_more_than_fixed_ones() {
    // Paper, Section III-C: SR-GNN, GC-SAN and RepeatNet carry
    // implementation bugs that make them drastically slower.
    let quirky_cfg = small_cfg();
    let fixed_cfg = small_cfg().with_quirks(false);
    for kind in [ModelKind::RepeatNet, ModelKind::SrGnn, ModelKind::GcSan] {
        let quirky = kind.build(&quirky_cfg);
        let fixed = kind.build(&fixed_cfg);
        let qc = traits::forward_cost(quirky.as_ref(), &Device::t4(), ExecMode::Real, 4).unwrap();
        let fc = traits::forward_cost(fixed.as_ref(), &Device::t4(), ExecMode::Real, 4).unwrap();
        let worse = qc.bytes > fc.bytes || qc.transfers > fc.transfers;
        assert!(worse, "{}: quirk has no cost effect", kind.name());
    }
}

#[test]
fn decode_cost_scales_linearly_with_catalog_size() {
    // Paper, Section II: inference time is dominated by catalog size C
    // across all models — the microbenchmark's linear scaling.
    for kind in ModelKind::ALL {
        let c1 = {
            let cfg = ModelConfig::new(10_000)
                .without_weights()
                .with_embedding_dim(16);
            let m = kind.build(&cfg);
            traits::forward_cost(m.as_ref(), &Device::cpu(), ExecMode::CostOnly, 4).unwrap()
        };
        let c2 = {
            let cfg = ModelConfig::new(1_000_000)
                .without_weights()
                .with_embedding_dim(16);
            let m = kind.build(&cfg);
            traits::forward_cost(m.as_ref(), &Device::cpu(), ExecMode::CostOnly, 4).unwrap()
        };
        let ratio = c2.bytes / c1.bytes;
        assert!(
            ratio > 20.0,
            "{}: catalog growth x100 moved bytes only x{ratio:.1}",
            kind.name()
        );
    }
}

#[test]
fn phantom_models_handle_platform_scale_catalogs() {
    // 20M items, d=67: the table would be 5.4 GB dense. Phantom weights
    // let cost-only inference run instantly.
    let cfg = ModelConfig::new(20_000_000).without_weights();
    for kind in [ModelKind::Core, ModelKind::Gru4Rec, ModelKind::SasRec] {
        let m = kind.build(&cfg);
        let cost =
            traits::forward_cost(m.as_ref(), &Device::a100(), ExecMode::CostOnly, 5).unwrap();
        // The MIPS alone reads 4 * 20e6 * 67 bytes = 5.4 GB.
        assert!(cost.bytes > 5.0e9, "{}: {}", kind.name(), cost.bytes);
    }
}
