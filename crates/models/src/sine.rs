//! SINE (Tan et al., WSDM 2021): sparse-interest network.
//!
//! A prototype bank of latent "interests" is maintained; for each session
//! the model activates its top interests, pools the session separately
//! per activated interest, and aggregates the per-interest vectors into
//! the final representation. The interest activation is itself a top-k
//! selection — a rare case of top-k *inside* the encoder.

use crate::common::{
    self, decode, key_query_logits, linear_vec, masked_softmax, weight, weighted_sum,
};
use crate::config::ModelConfig;
use crate::traits::SbrModel;
use etude_tensor::rng::Initializer;
use etude_tensor::{Exec, Param, SessionInput, TRef, TensorError};

/// Size of the latent prototype bank.
const PROTOTYPES: usize = 16;
/// Number of interests activated per session.
const ACTIVE_INTERESTS: usize = 4;

/// The SINE model.
pub struct Sine {
    cfg: ModelConfig,
    embedding: Param,
    /// Prototype bank `[PROTOTYPES, d]`.
    prototypes: Param,
    /// Self-attention pooling vector `[d, 1]` for the session summary.
    pool: Param,
    /// Aggregation projection `[d, d]`.
    agg: Param,
}

impl Sine {
    /// Builds the model with randomly initialised weights.
    pub fn new(cfg: ModelConfig) -> Sine {
        let mut init = Initializer::new(cfg.seed).child("sine");
        let d = cfg.embedding_dim;
        Sine {
            embedding: common::embedding_table(&mut init, &cfg),
            prototypes: weight(&mut init, &cfg, &[PROTOTYPES, d]),
            pool: weight(&mut init, &cfg, &[d, 1]),
            agg: weight(&mut init, &cfg, &[d, d]),
            cfg,
        }
    }
}

impl SbrModel for Sine {
    fn name(&self) -> &'static str {
        "sine"
    }

    fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    fn forward(&self, exec: &mut Exec, input: SessionInput) -> Result<TRef, TensorError> {
        let l = self.cfg.max_session_len;
        let d = self.cfg.embedding_dim;
        let table = exec.param(&self.embedding)?;
        let x = exec.embedding(table, input.items)?; // [l, d]

        // Session summary z via attention pooling.
        let pool = exec.param(&self.pool)?;
        let logits = exec.matmul(x, pool)?; // [l, 1]
        let logits = exec.reshape(logits, &[l])?;
        let alpha = masked_softmax(exec, logits, input.mask)?;
        let z = weighted_sum(exec, alpha, x)?; // [d]

        // Sparse interest activation: top interests by prototype affinity.
        let protos = exec.param(&self.prototypes)?;
        let affinity = key_query_logits(exec, protos, z)?; // [PROTOTYPES]
        let active = exec.topk(affinity, ACTIVE_INTERESTS)?; // [2, k]
        let active_ids = exec.slice_rows(active, 0, 1)?; // [1, k] bit-cast ids
        let active_ids = exec.reshape(active_ids, &[ACTIVE_INTERESTS])?;

        // Per-interest pooling of the session, then aggregation.
        let selected = exec.embedding(protos, active_ids)?; // [k, d] gather prototypes
        let mut interest_vecs: Option<TRef> = None;
        for i in 0..ACTIVE_INTERESTS {
            let p = exec.slice_rows(selected, i, i + 1)?; // [1, d]
            let p = exec.reshape(p, &[d])?;
            let e = key_query_logits(exec, x, p)?; // [l]
            let w = masked_softmax(exec, e, input.mask)?;
            let v = weighted_sum(exec, w, x)?; // [d]
            let v_row = exec.reshape(v, &[1, d])?;
            interest_vecs = Some(match interest_vecs {
                Some(acc) => exec.concat(acc, v_row)?, // accumulate columns
                None => v_row,
            });
        }
        // interest_vecs: [1, k*d] -> [k, d]
        let stacked = exec.reshape(interest_vecs.expect("k >= 1"), &[ACTIVE_INTERESTS, d])?;

        // Aggregate per-interest vectors weighted by their match with z.
        let beta_logits = key_query_logits(exec, stacked, z)?; // [k]
        let beta = exec.softmax(beta_logits)?;
        let merged = weighted_sum(exec, beta, stacked)?; // [d]
        let s = linear_vec(exec, merged, &self.agg, None)?;
        decode(exec, &self.embedding, s, &self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{compile, recommend_compiled, recommend_eager};
    use etude_tensor::Device;

    fn model() -> Sine {
        Sine::new(ModelConfig::new(90).with_max_session_len(6).with_seed(13))
    }

    #[test]
    fn recommends_k_items() {
        let m = model();
        let r = recommend_eager(&m, &Device::cpu(), &[1, 2, 3]).unwrap();
        assert_eq!(r.items.len(), m.cfg.top_k);
    }

    #[test]
    fn interest_selection_is_traceable() {
        // The mid-graph top-k is a tensor op, not host control flow, so
        // SINE JIT-compiles (it is not one of the four flagged models).
        let m = model();
        let compiled = compile(&m, Default::default()).unwrap();
        let eager = recommend_eager(&m, &Device::cpu(), &[7, 8]).unwrap();
        let jit = recommend_compiled(&m, &compiled, &[7, 8]).unwrap();
        assert_eq!(eager.items, jit.items);
    }

    #[test]
    fn different_sessions_activate_different_scores() {
        let m = model();
        let a = recommend_eager(&m, &Device::cpu(), &[1, 2]).unwrap();
        let b = recommend_eager(&m, &Device::cpu(), &[80, 81]).unwrap();
        assert_ne!(a.scores, b.scores);
    }
}
