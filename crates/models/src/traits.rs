//! The [`SbrModel`] trait, the model registry and execution helpers
//! (eager recommendation, cost probing, tracing and JIT compilation).

use crate::common::{prepare_session, register_session};
use crate::config::ModelConfig;
use etude_tensor::{
    f32_to_id, jit, CompiledGraph, Cost, Device, Exec, ExecMode, JitError, JitOptions,
    SessionInput, TRef, Tensor, TensorError,
};

/// A session-based recommendation model.
///
/// `forward` encodes the (padded) session and returns a `[2, k]` tensor:
/// row 0 holds bit-cast item ids, row 1 their scores. The same
/// implementation serves eager execution, cost-only estimation and JIT
/// tracing, depending on the [`Exec`] mode.
pub trait SbrModel: Send + Sync {
    /// Stable model name as used in the paper (e.g. `"gru4rec"`).
    fn name(&self) -> &'static str;

    /// The model's configuration.
    fn config(&self) -> &ModelConfig;

    /// Runs inference for one session.
    fn forward(&self, exec: &mut Exec, input: SessionInput) -> Result<TRef, TensorError>;
}

/// The result of one inference: ranked item ids with scores.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// Recommended item ids, best first.
    pub items: Vec<u32>,
    /// Inner-product scores aligned with `items`.
    pub scores: Vec<f32>,
}

impl Recommendation {
    /// Decodes a `[2, k]` output tensor into a recommendation.
    pub fn from_output(t: &Tensor) -> Result<Recommendation, TensorError> {
        let (rows, k) = t.dims2("recommendation output")?;
        if rows != 2 {
            return Err(TensorError::Invalid("expected [2, k] output"));
        }
        if t.is_phantom() {
            // Cost-only runs produce no item data.
            return Ok(Recommendation {
                items: vec![0; k],
                scores: vec![0.0; k],
            });
        }
        let data = t.as_slice()?;
        Ok(Recommendation {
            items: data[..k].iter().map(|&x| f32_to_id(x)).collect(),
            scores: data[k..].to_vec(),
        })
    }
}

/// Runs eager inference for a session and returns the recommendation.
pub fn recommend_eager(
    model: &dyn SbrModel,
    device: &Device,
    session: &[u32],
) -> Result<Recommendation, TensorError> {
    let cfg = model.config();
    let (items, mask, last) = prepare_session(session, cfg);
    let mut exec = Exec::new(ExecMode::Real, device.clone());
    let input = register_session(&mut exec, items, mask, last)?;
    let out = model.forward(&mut exec, input)?;
    Recommendation::from_output(exec.tensor(out)?)
}

/// Wall-time decomposition of one forward pass into the serving
/// pipeline's model-side stages.
///
/// The top-k selection over the catalogue executes *inside* the forward
/// graph (it is a `TopK` op), yet the paper reports it as its own
/// pipeline stage — this struct carries the split out of the tensor
/// layer's [`etude_tensor::OpTimes`] accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Forward-pass time excluding top-k selection.
    pub inference: std::time::Duration,
    /// Time spent selecting the top-k items over the catalogue.
    pub topk: std::time::Duration,
}

impl StageTimings {
    fn from_op_times(wall: std::time::Duration, ops: etude_tensor::OpTimes) -> StageTimings {
        // Attribute non-op overhead (session prep, arena bookkeeping) to
        // inference so the two components tile the measured wall time.
        StageTimings {
            inference: wall.saturating_sub(ops.topk),
            topk: ops.topk,
        }
    }
}

/// Like [`recommend_eager`], but also returns the inference/top-k wall
/// time split for stage-level observability.
pub fn recommend_eager_timed(
    model: &dyn SbrModel,
    device: &Device,
    session: &[u32],
) -> Result<(Recommendation, StageTimings), TensorError> {
    let cfg = model.config();
    let (items, mask, last) = prepare_session(session, cfg);
    let start = std::time::Instant::now();
    let mut exec = Exec::new(ExecMode::Real, device.clone());
    exec.enable_op_timing();
    let input = register_session(&mut exec, items, mask, last)?;
    let out = model.forward(&mut exec, input)?;
    let rec = Recommendation::from_output(exec.tensor(out)?)?;
    let timings = StageTimings::from_op_times(start.elapsed(), exec.op_times().unwrap_or_default());
    Ok((rec, timings))
}

/// Measures the total operation cost of one forward pass.
///
/// `session_len` controls only the *content* of the inputs; the padded
/// shape (and therefore the cost) is determined by the configuration.
pub fn forward_cost(
    model: &dyn SbrModel,
    device: &Device,
    mode: ExecMode,
    session_len: usize,
) -> Result<Cost, TensorError> {
    let cfg = model.config();
    let session: Vec<u32> = (1..=session_len.max(1) as u32)
        .map(|i| i % cfg.catalog_size.max(1) as u32)
        .collect();
    let (items, mask, last) = prepare_session(&session, cfg);
    let mut exec = Exec::new(mode, device.clone());
    let input = register_session(&mut exec, items, mask, last)?;
    model.forward(&mut exec, input)?;
    Ok(exec.cost().total())
}

/// Traces a model's forward pass into a dataflow graph.
pub fn trace(model: &dyn SbrModel) -> Result<etude_tensor::Graph, JitError> {
    let cfg = model.config();
    let (items, mask, last) = prepare_session(&[1, 2], cfg);
    let mut exec = Exec::new(ExecMode::Trace, Device::cpu());
    let input = register_session(&mut exec, items, mask, last)?;
    let out = model.forward(&mut exec, input)?;
    Ok(exec.finish_trace(out)?)
}

/// Traces and JIT-compiles a model — the reproduction of
/// `torch.jit.optimize_for_inference`. Models with data-dependent control
/// flow (quirky LightSANs) fail with
/// [`JitError::DynamicControlFlow`], matching the paper's finding.
pub fn compile(model: &dyn SbrModel, options: JitOptions) -> Result<CompiledGraph, JitError> {
    let graph = trace(model)?;
    jit::compile(graph, options)
}

/// Runs inference through a compiled graph.
pub fn recommend_compiled(
    model: &dyn SbrModel,
    compiled: &CompiledGraph,
    session: &[u32],
) -> Result<Recommendation, TensorError> {
    let (items, mask, last) = prepare_session(session, model.config());
    let (out, _) = compiled.run(&[items, mask, last])?;
    Recommendation::from_output(&out)
}

/// Like [`recommend_compiled`], but also returns the inference/top-k
/// wall time split for stage-level observability.
pub fn recommend_compiled_timed(
    model: &dyn SbrModel,
    compiled: &CompiledGraph,
    session: &[u32],
) -> Result<(Recommendation, StageTimings), TensorError> {
    let start = std::time::Instant::now();
    let (items, mask, last) = prepare_session(session, model.config());
    let (out, _, ops) = compiled.run_timed(&[items, mask, last])?;
    let rec = Recommendation::from_output(&out)?;
    Ok((rec, StageTimings::from_op_times(start.elapsed(), ops)))
}

/// The ten SBR models of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModelKind {
    /// CORE (Hou et al., SIGIR 2022) — consistent representation space.
    Core,
    /// GRU4Rec (Tan et al., DLRS 2016) — gated recurrent units.
    Gru4Rec,
    /// LightSANs (Fan et al., SIGIR 2021) — low-rank self-attention.
    LightSans,
    /// NARM (Li et al., CIKM 2017) — neural attentive recommendation.
    Narm,
    /// RepeatNet (Ren et al., AAAI 2019) — repeat-explore decoding.
    RepeatNet,
    /// SASRec (Kang & McAuley, ICDM 2018) — self-attentive sequences.
    SasRec,
    /// SINE (Tan et al., WSDM 2021) — sparse interest extraction.
    Sine,
    /// SR-GNN (Wu et al., AAAI 2019) — gated session graphs.
    SrGnn,
    /// GC-SAN (Xu et al., IJCAI 2019) — graph-contextualised attention.
    GcSan,
    /// STAMP (Liu et al., KDD 2018) — short-term attention/memory priority.
    Stamp,
}

impl ModelKind {
    /// All ten models in the paper's presentation order.
    pub const ALL: [ModelKind; 10] = [
        ModelKind::Gru4Rec,
        ModelKind::RepeatNet,
        ModelKind::GcSan,
        ModelKind::SrGnn,
        ModelKind::Narm,
        ModelKind::Sine,
        ModelKind::Stamp,
        ModelKind::LightSans,
        ModelKind::Core,
        ModelKind::SasRec,
    ];

    /// The six models the paper retains for Table I (the four with
    /// implementation errors removed).
    pub const TABLE1: [ModelKind; 6] = [
        ModelKind::Core,
        ModelKind::Gru4Rec,
        ModelKind::Narm,
        ModelKind::SasRec,
        ModelKind::Sine,
        ModelKind::Stamp,
    ];

    /// Models the paper flags as having RecBole implementation errors.
    pub const WITH_IMPLEMENTATION_ERRORS: [ModelKind; 4] = [
        ModelKind::SrGnn,
        ModelKind::GcSan,
        ModelKind::RepeatNet,
        ModelKind::LightSans,
    ];

    /// Stable lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Core => "core",
            ModelKind::Gru4Rec => "gru4rec",
            ModelKind::LightSans => "lightsans",
            ModelKind::Narm => "narm",
            ModelKind::RepeatNet => "repeatnet",
            ModelKind::SasRec => "sasrec",
            ModelKind::Sine => "sine",
            ModelKind::SrGnn => "srgnn",
            ModelKind::GcSan => "gcsan",
            ModelKind::Stamp => "stamp",
        }
    }

    /// Parses a model name.
    pub fn parse(name: &str) -> Option<ModelKind> {
        ModelKind::ALL
            .iter()
            .copied()
            .find(|k| k.name() == name.to_ascii_lowercase())
    }

    /// Builds the model for a configuration.
    pub fn build(&self, cfg: &ModelConfig) -> Box<dyn SbrModel> {
        match self {
            ModelKind::Core => Box::new(crate::core_model::Core::new(cfg.clone())),
            ModelKind::Gru4Rec => Box::new(crate::gru4rec::Gru4Rec::new(cfg.clone())),
            ModelKind::LightSans => Box::new(crate::lightsans::LightSans::new(cfg.clone())),
            ModelKind::Narm => Box::new(crate::narm::Narm::new(cfg.clone())),
            ModelKind::RepeatNet => Box::new(crate::repeatnet::RepeatNet::new(cfg.clone())),
            ModelKind::SasRec => Box::new(crate::sasrec::SasRec::new(cfg.clone())),
            ModelKind::Sine => Box::new(crate::sine::Sine::new(cfg.clone())),
            ModelKind::SrGnn => Box::new(crate::srgnn::SrGnn::new(cfg.clone())),
            ModelKind::GcSan => Box::new(crate::gcsan::GcSan::new(cfg.clone())),
            ModelKind::Stamp => Box::new(crate::stamp::Stamp::new(cfg.clone())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_parse_roundtrip() {
        for kind in ModelKind::ALL {
            assert_eq!(ModelKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(ModelKind::parse("SASRec"), Some(ModelKind::SasRec));
        assert_eq!(ModelKind::parse("bert4rec"), None);
    }

    #[test]
    fn table1_excludes_flagged_models() {
        for kind in ModelKind::WITH_IMPLEMENTATION_ERRORS {
            assert!(!ModelKind::TABLE1.contains(&kind));
        }
        assert_eq!(
            ModelKind::TABLE1.len() + ModelKind::WITH_IMPLEMENTATION_ERRORS.len(),
            10
        );
    }

    #[test]
    fn recommendation_decodes_phantom_outputs() {
        let t = Tensor::phantom(&[2, 5]);
        let r = Recommendation::from_output(&t).unwrap();
        assert_eq!(r.items.len(), 5);
    }

    #[test]
    fn recommendation_rejects_bad_shapes() {
        let t = Tensor::zeros(&[3, 5]);
        assert!(Recommendation::from_output(&t).is_err());
    }

    fn tiny_model() -> Box<dyn SbrModel> {
        let cfg = ModelConfig::new(1_000)
            .with_max_session_len(16)
            .with_top_k(5);
        ModelKind::Stamp.build(&cfg)
    }

    #[test]
    fn timed_eager_matches_untimed_and_tiles_wall_time() {
        let model = tiny_model();
        let device = Device::cpu();
        let session = [3u32, 9, 42];
        let plain = recommend_eager(model.as_ref(), &device, &session).unwrap();
        let (timed, stages) = recommend_eager_timed(model.as_ref(), &device, &session).unwrap();
        assert_eq!(plain.items, timed.items, "timing must not change results");
        assert!(stages.inference > std::time::Duration::ZERO);
        assert!(stages.topk > std::time::Duration::ZERO, "topk op was timed");
    }

    #[test]
    fn timed_compiled_matches_untimed() {
        let model = tiny_model();
        let compiled = compile(model.as_ref(), JitOptions::default()).unwrap();
        let session = [7u32, 1];
        let plain = recommend_compiled(model.as_ref(), &compiled, &session).unwrap();
        let (timed, stages) =
            recommend_compiled_timed(model.as_ref(), &compiled, &session).unwrap();
        assert_eq!(plain.items, timed.items);
        assert!(stages.topk > std::time::Duration::ZERO);
        assert!(stages.inference + stages.topk > std::time::Duration::ZERO);
    }
}
