//! SASRec (Kang & McAuley, ICDM 2018): a causal transformer over the
//! session, taking the representation at the last valid position.

use crate::common::{self, causal_mask, decode, gather_last, positional_table, TransformerBlock};
use crate::config::ModelConfig;
use crate::traits::SbrModel;
use etude_tensor::rng::Initializer;
use etude_tensor::{Exec, Param, SessionInput, TRef, TensorError};

/// The SASRec model.
pub struct SasRec {
    cfg: ModelConfig,
    embedding: Param,
    positions: Param,
    blocks: Vec<TransformerBlock>,
    causal: Param,
    final_ln: common::LayerNormWeights,
}

impl SasRec {
    /// Builds the model with randomly initialised weights.
    pub fn new(cfg: ModelConfig) -> SasRec {
        let mut init = Initializer::new(cfg.seed).child("sasrec");
        let blocks = (0..cfg.num_layers)
            .map(|_| TransformerBlock::new(&mut init, &cfg))
            .collect();
        SasRec {
            embedding: common::embedding_table(&mut init, &cfg),
            positions: positional_table(&mut init, &cfg),
            blocks,
            causal: causal_mask(&cfg),
            final_ln: common::LayerNormWeights::new(&cfg, cfg.embedding_dim),
            cfg,
        }
    }
}

impl SbrModel for SasRec {
    fn name(&self) -> &'static str {
        "sasrec"
    }

    fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    fn forward(&self, exec: &mut Exec, input: SessionInput) -> Result<TRef, TensorError> {
        let table = exec.param(&self.embedding)?;
        let x = exec.embedding(table, input.items)?; // [l, d]
        let pos = exec.param(&self.positions)?;
        let mut x = exec.add(x, pos)?;
        for block in &self.blocks {
            x = block.forward(
                exec,
                x,
                self.cfg.num_heads,
                Some(&self.causal),
                Some(input.mask),
            )?;
        }
        let x = common::layer_norm(exec, x, &self.final_ln)?;
        let s = gather_last(exec, x, input.last)?; // [d]
        decode(exec, &self.embedding, s, &self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{compile, recommend_compiled, recommend_eager};
    use etude_tensor::Device;

    fn model() -> SasRec {
        SasRec::new(
            ModelConfig::new(64)
                .with_max_session_len(6)
                .with_embedding_dim(8)
                .with_num_heads(2)
                .with_seed(6),
        )
    }

    #[test]
    fn recommends_k_items() {
        let m = model();
        let r = recommend_eager(&m, &Device::cpu(), &[1, 2]).unwrap();
        assert_eq!(r.items.len(), m.cfg.top_k);
    }

    #[test]
    fn causal_masking_hides_padding_from_early_positions() {
        // Appending items must not change nothing — but more importantly
        // the output must be finite despite -1e9 masks.
        let m = model();
        let r = recommend_eager(&m, &Device::cpu(), &[5]).unwrap();
        assert!(r.scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn jit_compilation_matches_eager() {
        let m = model();
        let compiled = compile(&m, Default::default()).unwrap();
        let session = [3u32, 9, 1];
        let eager = recommend_eager(&m, &Device::cpu(), &session).unwrap();
        let jit = recommend_compiled(&m, &compiled, &session).unwrap();
        assert_eq!(eager.items, jit.items);
    }

    #[test]
    fn multi_layer_variant_builds() {
        let m = SasRec::new(
            ModelConfig::new(64)
                .with_max_session_len(4)
                .with_embedding_dim(8)
                .with_num_layers(2),
        );
        let r = recommend_eager(&m, &Device::cpu(), &[2, 3]).unwrap();
        assert_eq!(r.items.len(), m.cfg.top_k);
    }
}
