//! NARM (Li et al., CIKM 2017): a neural attentive recommendation machine
//! with a hybrid encoder — a global GRU summary plus an attention-pooled
//! local summary — combined through a bilinear decode.

use crate::common::{
    self, decode, gather_last, gru_sequence, linear, masked_softmax, weight, weighted_sum,
    GruWeights,
};
use crate::config::ModelConfig;
use crate::traits::SbrModel;
use etude_tensor::kernels::UnOp;
use etude_tensor::rng::Initializer;
use etude_tensor::{Exec, Param, SessionInput, TRef, TensorError};

/// The NARM model.
pub struct Narm {
    cfg: ModelConfig,
    embedding: Param,
    gru: GruWeights,
    /// Attention projection of the last hidden state `[h, h]`.
    a1: Param,
    /// Attention projection of each hidden state `[h, h]`.
    a2: Param,
    /// Attention energy vector `[h, 1]`.
    v: Param,
    /// Bilinear decode `[2h, d]`.
    b: Param,
}

impl Narm {
    /// Builds the model with randomly initialised weights.
    pub fn new(cfg: ModelConfig) -> Narm {
        let mut init = Initializer::new(cfg.seed).child("narm");
        let h = cfg.hidden_size;
        Narm {
            embedding: common::embedding_table(&mut init, &cfg),
            gru: GruWeights::new(&mut init, &cfg, cfg.embedding_dim, h),
            a1: weight(&mut init, &cfg, &[h, h]),
            a2: weight(&mut init, &cfg, &[h, h]),
            v: weight(&mut init, &cfg, &[h, 1]),
            b: weight(&mut init, &cfg, &[2 * h, cfg.embedding_dim]),
            cfg,
        }
    }
}

impl SbrModel for Narm {
    fn name(&self) -> &'static str {
        "narm"
    }

    fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    fn forward(&self, exec: &mut Exec, input: SessionInput) -> Result<TRef, TensorError> {
        let h = self.cfg.hidden_size;
        let table = exec.param(&self.embedding)?;
        let x = exec.embedding(table, input.items)?; // [l, d]
        let hs = gru_sequence(exec, x, &self.gru, h)?; // [l, h]
        let c_global = gather_last(exec, hs, input.last)?; // [h]

        // Attention energies: e_j = v^T sigmoid(A1 h_t + A2 h_j).
        let q = common::linear_vec(exec, c_global, &self.a1, None)?; // [h]
        let keys = linear(exec, hs, &self.a2, None)?; // [l, h]
        let shifted = exec.binary_row(etude_tensor::kernels::BinOp::Add, keys, q)?;
        let act = exec.unary(UnOp::Sigmoid, shifted)?; // [l, h]
        let v = exec.param(&self.v)?;
        let e = exec.matmul(act, v)?; // [l, 1]
        let l = self.cfg.max_session_len;
        let e = exec.reshape(e, &[l])?;
        let alpha = masked_softmax(exec, e, input.mask)?; // [l]
        let c_local = weighted_sum(exec, alpha, hs)?; // [h]

        let c = exec.concat(c_global, c_local)?; // [2h]
        let s = common::linear_vec(exec, c, &self.b, None)?; // [d]
        decode(exec, &self.embedding, s, &self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{forward_cost, recommend_eager};
    use etude_tensor::{Device, ExecMode};

    fn model() -> Narm {
        Narm::new(ModelConfig::new(60).with_max_session_len(6).with_seed(2))
    }

    #[test]
    fn recommends_k_items() {
        let m = model();
        let r = recommend_eager(&m, &Device::cpu(), &[4, 5]).unwrap();
        assert_eq!(r.items.len(), m.cfg.top_k);
        assert!(r.items.iter().all(|&i| (i as usize) < 60));
    }

    #[test]
    fn attention_responds_to_session_history() {
        let m = model();
        let a = recommend_eager(&m, &Device::cpu(), &[1, 2, 3, 4]).unwrap();
        let b = recommend_eager(&m, &Device::cpu(), &[40, 41, 42, 4]).unwrap();
        assert_ne!(a.scores, b.scores);
    }

    #[test]
    fn decode_dominates_cost_at_larger_catalogs() {
        // The paper's complexity analysis: C dwarfs encoder terms.
        let small = Narm::new(ModelConfig::new(100).with_max_session_len(6));
        let large = Narm::new(ModelConfig::new(10_000).with_max_session_len(6));
        let cs = forward_cost(&small, &Device::cpu(), ExecMode::Real, 3).unwrap();
        let cl = forward_cost(&large, &Device::cpu(), ExecMode::Real, 3).unwrap();
        assert!(cl.bytes > 10.0 * cs.bytes);
    }
}
