//! STAMP (Liu et al., KDD 2018): short-term attention/memory priority.
//!
//! The session is summarised by an attention over item embeddings driven
//! by both the last click (`x_t`, short-term) and the session mean (`m_s`,
//! memory). Two small MLPs produce `h_s` and `h_t`, whose Hadamard product
//! scores the catalog.

use crate::common::{
    self, decode, gather_last, linear, linear_vec, mask_logits, masked_mean, weight, weighted_sum,
};
use crate::config::ModelConfig;
use crate::traits::SbrModel;
use etude_tensor::kernels::{BinOp, UnOp};
use etude_tensor::rng::Initializer;
use etude_tensor::{Exec, Param, SessionInput, TRef, TensorError};

/// The STAMP model.
pub struct Stamp {
    cfg: ModelConfig,
    embedding: Param,
    /// Attention projections `[d, d]` for items, last click and mean.
    w1: Param,
    w2: Param,
    w3: Param,
    /// Attention bias `[d]`.
    ba: Param,
    /// Attention energy vector `[d, 1]`.
    w0: Param,
    /// Output MLPs `[d, d]`.
    mlp_a: Param,
    mlp_b: Param,
}

impl Stamp {
    /// Builds the model with randomly initialised weights.
    pub fn new(cfg: ModelConfig) -> Stamp {
        let mut init = Initializer::new(cfg.seed).child("stamp");
        let d = cfg.embedding_dim;
        Stamp {
            embedding: common::embedding_table(&mut init, &cfg),
            w1: weight(&mut init, &cfg, &[d, d]),
            w2: weight(&mut init, &cfg, &[d, d]),
            w3: weight(&mut init, &cfg, &[d, d]),
            ba: common::bias(&cfg, d),
            w0: weight(&mut init, &cfg, &[d, 1]),
            mlp_a: weight(&mut init, &cfg, &[d, d]),
            mlp_b: weight(&mut init, &cfg, &[d, d]),
            cfg,
        }
    }
}

impl SbrModel for Stamp {
    fn name(&self) -> &'static str {
        "stamp"
    }

    fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    fn forward(&self, exec: &mut Exec, input: SessionInput) -> Result<TRef, TensorError> {
        let l = self.cfg.max_session_len;
        let table = exec.param(&self.embedding)?;
        let x = exec.embedding(table, input.items)?; // [l, d]
        let x_t = gather_last(exec, x, input.last)?; // [d] last click
        let m_s = masked_mean(exec, x, input.mask)?; // [d] session memory

        // Attention: a_i = W0^T sigmoid(W1 e_i + W2 x_t + W3 m_s + b_a).
        let items_proj = linear(exec, x, &self.w1, None)?; // [l, d]
        let q_t = linear_vec(exec, x_t, &self.w2, None)?; // [d]
        let q_s = linear_vec(exec, m_s, &self.w3, None)?; // [d]
        let q = exec.add(q_t, q_s)?;
        let ba = exec.param(&self.ba)?;
        let q = exec.add(q, ba)?;
        let shifted = exec.binary_row(BinOp::Add, items_proj, q)?;
        let act = exec.unary(UnOp::Sigmoid, shifted)?;
        let w0 = exec.param(&self.w0)?;
        let e = exec.matmul(act, w0)?; // [l, 1]
        let e = exec.reshape(e, &[l])?;
        // STAMP uses unnormalised attention (no softmax) in the original
        // formulation; padding must still be excluded.
        let e = mask_logits(exec, e, input.mask)?;
        let alpha = exec.softmax(e)?;
        let m_a = weighted_sum(exec, alpha, x)?; // [d]

        let h_s0 = linear_vec(exec, m_a, &self.mlp_a, None)?;
        let h_s = exec.tanh(h_s0)?;
        let h_t0 = linear_vec(exec, x_t, &self.mlp_b, None)?;
        let h_t = exec.tanh(h_t0)?;
        let s = exec.mul(h_s, h_t)?; // [d]
        decode(exec, &self.embedding, s, &self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::recommend_eager;
    use etude_tensor::Device;

    fn model() -> Stamp {
        Stamp::new(ModelConfig::new(80).with_max_session_len(6).with_seed(5))
    }

    #[test]
    fn recommends_k_items() {
        let m = model();
        let r = recommend_eager(&m, &Device::cpu(), &[7, 8, 9]).unwrap();
        assert_eq!(r.items.len(), m.cfg.top_k);
    }

    #[test]
    fn short_term_priority_last_click_changes_output() {
        let m = model();
        let a = recommend_eager(&m, &Device::cpu(), &[10, 11, 12]).unwrap();
        let b = recommend_eager(&m, &Device::cpu(), &[10, 11, 70]).unwrap();
        assert_ne!(a.scores, b.scores);
    }

    #[test]
    fn single_click_sessions_are_supported() {
        let m = model();
        let r = recommend_eager(&m, &Device::cpu(), &[3]).unwrap();
        assert_eq!(r.items.len(), m.cfg.top_k);
        assert!(r.scores.iter().all(|s| s.is_finite()));
    }
}
