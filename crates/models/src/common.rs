//! Building blocks shared by the ten SBR models: weight construction,
//! session input preparation, the full-catalog decode (MIPS + top-k),
//! attention primitives, transformer blocks and a GRU encoder.

use crate::config::ModelConfig;
use etude_tensor::kernels::BinOp;
use etude_tensor::rng::Initializer;
use etude_tensor::{Exec, Param, SessionInput, TRef, Tensor, TensorError};

/// Creates a weight tensor: Xavier-initialised when the config
/// materialises weights, phantom otherwise.
pub fn weight(init: &mut Initializer, cfg: &ModelConfig, shape: &[usize]) -> Param {
    if cfg.materialize_weights {
        Param::new(init.xavier(shape))
    } else {
        Param::new(Tensor::phantom(shape))
    }
}

/// Creates the `[C, d]` item-embedding table.
pub fn embedding_table(init: &mut Initializer, cfg: &ModelConfig) -> Param {
    if cfg.materialize_weights {
        Param::new(init.embedding(cfg.catalog_size, cfg.embedding_dim))
    } else {
        Param::new(Tensor::phantom(&[cfg.catalog_size, cfg.embedding_dim]))
    }
}

/// Creates a zero bias vector (phantom when weights are not materialised).
pub fn bias(cfg: &ModelConfig, n: usize) -> Param {
    if cfg.materialize_weights {
        Param::new(Tensor::zeros(&[n]))
    } else {
        Param::new(Tensor::phantom(&[n]))
    }
}

/// Creates a `[max_len, d]` positional-embedding table.
pub fn positional_table(init: &mut Initializer, cfg: &ModelConfig) -> Param {
    weight(init, cfg, &[cfg.max_session_len, cfg.embedding_dim])
}

/// Creates the additive causal attention mask `[l, l]`: `0` on and below
/// the diagonal, `-1e9` above.
pub fn causal_mask(cfg: &ModelConfig) -> Param {
    let l = cfg.max_session_len;
    if !cfg.materialize_weights {
        return Param::new(Tensor::phantom(&[l, l]));
    }
    let mut m = vec![0.0f32; l * l];
    for i in 0..l {
        for j in (i + 1)..l {
            m[i * l + j] = -1e9;
        }
    }
    Param::new(Tensor::from_vec(m, &[l, l]).expect("shape consistent"))
}

/// Prepares the three standard model inputs from a raw session.
///
/// The session is truncated to its most recent `max_session_len`
/// interactions and right-padded with item 0 (RecBole's convention).
/// Returns `(items, mask, last_index)` dense tensors.
pub fn prepare_session(session: &[u32], cfg: &ModelConfig) -> (Tensor, Tensor, Tensor) {
    let l = cfg.max_session_len;
    let tail: Vec<u32> = session
        .iter()
        .copied()
        .skip(session.len().saturating_sub(l))
        .collect();
    let n = tail.len().min(l).max(1);
    let mut items = vec![0u32; l];
    let mut mask = vec![0.0f32; l];
    for (i, &id) in tail.iter().take(l).enumerate() {
        items[i] = id;
        mask[i] = 1.0;
    }
    if tail.is_empty() {
        mask[0] = 1.0; // an empty session behaves as a single pad click
    }
    let items = Tensor::from_ids(&items);
    let mask = Tensor::from_vec(mask, &[l]).expect("shape consistent");
    let last = Tensor::from_ids(&[(n - 1) as u32]);
    (items, mask, last)
}

/// Registers the prepared session tensors as graph inputs.
pub fn register_session(
    exec: &mut Exec,
    items: Tensor,
    mask: Tensor,
    last: Tensor,
) -> Result<SessionInput, TensorError> {
    Ok(SessionInput {
        items: exec.input(items)?,
        mask: exec.input(mask)?,
        last: exec.input(last)?,
    })
}

/// The decode stage common to every model: score the session
/// representation `s ∈ R^d` against all `C` item embeddings and select the
/// top `k` — the `O(C (d + log k))` maximum-inner-product search.
///
/// Emits a single fused [`score_topk`](Exec::score_topk) node: the scan
/// keeps the running top-k while scoring, so the `[C]` score vector is
/// never written to memory. Models that must post-process raw scores
/// (RepeatNet, CORE) use [`catalog_scores`] + `topk` instead.
pub fn decode(
    exec: &mut Exec,
    table: &Param,
    s: TRef,
    cfg: &ModelConfig,
) -> Result<TRef, TensorError> {
    let table_ref = exec.param(table)?;
    exec.score_topk(table_ref, s, cfg.top_k)
}

/// Computes raw catalog scores without top-k (RepeatNet needs to mix
/// distributions before selection).
pub fn catalog_scores(
    exec: &mut Exec,
    table: &Param,
    s: TRef,
    cfg: &ModelConfig,
) -> Result<TRef, TensorError> {
    let d = cfg.embedding_dim;
    let table_ref = exec.param(table)?;
    let s_col = exec.reshape(s, &[d, 1])?;
    let scores = exec.matmul(table_ref, s_col)?;
    exec.reshape(scores, &[cfg.catalog_size])
}

/// Adds `-1e9 * (1 - mask)` to a logit vector so padded positions vanish
/// under softmax.
pub fn mask_logits(exec: &mut Exec, logits: TRef, mask: TRef) -> Result<TRef, TensorError> {
    let m1 = exec.scalar(BinOp::Sub, mask, 1.0)?; // mask - 1 ∈ {-1, 0}
    let m2 = exec.scalar(BinOp::Mul, m1, 1e9)?; // {-1e9, 0}
    exec.add(logits, m2)
}

/// Masked attention weights: `softmax(logits + mask_bias)` over `[l]`.
pub fn masked_softmax(exec: &mut Exec, logits: TRef, mask: TRef) -> Result<TRef, TensorError> {
    let masked = mask_logits(exec, logits, mask)?;
    exec.softmax(masked)
}

/// Scores `[l, d]` keys against a `[d]` query: returns `[l]` logits.
pub fn key_query_logits(exec: &mut Exec, keys: TRef, query: TRef) -> Result<TRef, TensorError> {
    let d = exec.tensor(query)?.shape()[0];
    let l = exec.tensor(keys)?.shape()[0];
    let q_col = exec.reshape(query, &[d, 1])?;
    let s = exec.matmul(keys, q_col)?; // [l, 1]
    exec.reshape(s, &[l])
}

/// Weighted sum of `[l, d]` values by `[l]` weights: returns `[d]`.
pub fn weighted_sum(exec: &mut Exec, weights: TRef, values: TRef) -> Result<TRef, TensorError> {
    let l = exec.tensor(weights)?.shape()[0];
    let d = exec.tensor(values)?.shape()[1];
    let w_row = exec.reshape(weights, &[1, l])?;
    let s = exec.matmul(w_row, values)?; // [1, d]
    exec.reshape(s, &[d])
}

/// Multiplies a `[d]` vector by a `[1]` scalar tensor (e.g. `1/len`).
pub fn scale_by_scalar_tensor(exec: &mut Exec, v: TRef, s: TRef) -> Result<TRef, TensorError> {
    let d = exec.tensor(v)?.shape()[0];
    let v_col = exec.reshape(v, &[d, 1])?;
    let scaled = exec.binary_row(BinOp::Mul, v_col, s)?;
    exec.reshape(scaled, &[d])
}

/// Mean of the *valid* (unmasked) rows of `[l, d]`: `maskᵀ X / Σ mask`.
pub fn masked_mean(exec: &mut Exec, x: TRef, mask: TRef) -> Result<TRef, TensorError> {
    let sum = weighted_sum(exec, mask, x)?;
    let l = exec.tensor(mask)?.shape()[0];
    let mask_col = exec.reshape(mask, &[l, 1])?;
    let count = exec.sum_rows(mask_col)?; // [1]
    let inv = exec.unary(etude_tensor::kernels::UnOp::Recip, count)?;
    scale_by_scalar_tensor(exec, sum, inv)
}

/// A dense layer `x W + b` for `x: [m, in]`, `w: [in, out]`, `b: [out]`.
pub fn linear(exec: &mut Exec, x: TRef, w: &Param, b: Option<&Param>) -> Result<TRef, TensorError> {
    let w_ref = exec.param(w)?;
    let y = exec.matmul(x, w_ref)?;
    match b {
        Some(b) => {
            let b_ref = exec.param(b)?;
            exec.binary_row(BinOp::Add, y, b_ref)
        }
        None => Ok(y),
    }
}

/// A dense layer for a `[in]` vector: returns `[out]`.
pub fn linear_vec(
    exec: &mut Exec,
    x: TRef,
    w: &Param,
    b: Option<&Param>,
) -> Result<TRef, TensorError> {
    let d_in = exec.tensor(x)?.shape()[0];
    let x_row = exec.reshape(x, &[1, d_in])?;
    let y = linear(exec, x_row, w, b)?;
    let d_out = exec.tensor(y)?.shape()[1];
    exec.reshape(y, &[d_out])
}

/// Weights of one multi-head self-attention block.
#[derive(Debug, Clone)]
pub struct AttentionWeights {
    /// Query projection `[d, d]`.
    pub wq: Param,
    /// Key projection `[d, d]`.
    pub wk: Param,
    /// Value projection `[d, d]`.
    pub wv: Param,
    /// Output projection `[d, d]`.
    pub wo: Param,
}

impl AttentionWeights {
    /// Initialises a block for dimension `d`.
    pub fn new(init: &mut Initializer, cfg: &ModelConfig) -> AttentionWeights {
        let d = cfg.embedding_dim;
        AttentionWeights {
            wq: weight(init, cfg, &[d, d]),
            wk: weight(init, cfg, &[d, d]),
            wv: weight(init, cfg, &[d, d]),
            wo: weight(init, cfg, &[d, d]),
        }
    }
}

/// Multi-head self-attention over `x: [l, d]` with optional causal mask
/// and key padding mask. Head count must divide `d`; excess heads
/// degrade to a single head.
pub fn self_attention(
    exec: &mut Exec,
    x: TRef,
    w: &AttentionWeights,
    heads: usize,
    causal: Option<&Param>,
    pad_mask: Option<TRef>,
) -> Result<TRef, TensorError> {
    let (l, d) = {
        let s = exec.tensor(x)?.shape();
        (s[0], s[1])
    };
    let heads = if heads > 0 && d % heads == 0 {
        heads
    } else {
        1
    };
    let dh = d / heads;
    let q = linear(exec, x, &w.wq, None)?;
    let k = linear(exec, x, &w.wk, None)?;
    let v = linear(exec, x, &w.wv, None)?;
    let scale = 1.0 / (dh as f32).sqrt();

    let mut head_outputs: Option<TRef> = None;
    for h in 0..heads {
        let (s, e) = (h * dh, (h + 1) * dh);
        let qh = exec.slice_cols(q, s, e)?;
        let kh = exec.slice_cols(k, s, e)?;
        let vh = exec.slice_cols(v, s, e)?;
        let kt = exec.transpose(kh)?; // [dh, l]
        let logits = exec.matmul(qh, kt)?; // [l, l]
        let logits = exec.scalar(BinOp::Mul, logits, scale)?;
        let logits = match causal {
            Some(c) => {
                let c_ref = exec.param(c)?;
                exec.add(logits, c_ref)?
            }
            None => logits,
        };
        let logits = match pad_mask {
            Some(m) => {
                // Bias out padded *keys* (columns).
                let m1 = exec.scalar(BinOp::Sub, m, 1.0)?;
                let m2 = exec.scalar(BinOp::Mul, m1, 1e9)?;
                exec.binary_row(BinOp::Add, logits, m2)?
            }
            None => logits,
        };
        let attn = exec.softmax(logits)?; // [l, l]
        let oh = exec.matmul(attn, vh)?; // [l, dh]
        head_outputs = Some(match head_outputs {
            Some(acc) => exec.concat(acc, oh)?,
            None => oh,
        });
    }
    let concat = head_outputs.expect("at least one head");
    let _ = l;
    linear(exec, concat, &w.wo, None)
}

/// Weights of one position-wise feed-forward block.
#[derive(Debug, Clone)]
pub struct FfnWeights {
    /// Expansion `[d, 4d]`.
    pub w1: Param,
    /// Contraction `[4d, d]`.
    pub w2: Param,
    /// Expansion bias `[4d]`.
    pub b1: Param,
    /// Contraction bias `[d]`.
    pub b2: Param,
}

impl FfnWeights {
    /// Initialises a block for dimension `d` with a 4x inner width.
    pub fn new(init: &mut Initializer, cfg: &ModelConfig) -> FfnWeights {
        let d = cfg.embedding_dim;
        FfnWeights {
            w1: weight(init, cfg, &[d, 4 * d]),
            w2: weight(init, cfg, &[4 * d, d]),
            b1: bias(cfg, 4 * d),
            b2: bias(cfg, d),
        }
    }
}

/// `gelu(x W1 + b1) W2 + b2`.
pub fn feed_forward(exec: &mut Exec, x: TRef, w: &FfnWeights) -> Result<TRef, TensorError> {
    let h = linear(exec, x, &w.w1, Some(&w.b1))?;
    let h = exec.gelu(h)?;
    linear(exec, h, &w.w2, Some(&w.b2))
}

/// Weights of one layer-norm (affine) over dimension `d`.
#[derive(Debug, Clone)]
pub struct LayerNormWeights {
    /// Scale `[d]`, initialised to ones.
    pub gamma: Param,
    /// Shift `[d]`, initialised to zeros.
    pub beta: Param,
}

impl LayerNormWeights {
    /// Identity-initialised layer norm.
    pub fn new(cfg: &ModelConfig, n: usize) -> LayerNormWeights {
        if cfg.materialize_weights {
            LayerNormWeights {
                gamma: Param::new(Tensor::full(&[n], 1.0)),
                beta: Param::new(Tensor::zeros(&[n])),
            }
        } else {
            LayerNormWeights {
                gamma: Param::new(Tensor::phantom(&[n])),
                beta: Param::new(Tensor::phantom(&[n])),
            }
        }
    }
}

/// Applies layer normalisation with these weights.
pub fn layer_norm(exec: &mut Exec, x: TRef, w: &LayerNormWeights) -> Result<TRef, TensorError> {
    let g = exec.param(&w.gamma)?;
    let b = exec.param(&w.beta)?;
    exec.layernorm(x, g, b)
}

/// A full pre-norm transformer block: attention + residual, FFN + residual.
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    /// Self-attention weights.
    pub attn: AttentionWeights,
    /// Feed-forward weights.
    pub ffn: FfnWeights,
    /// Norm before attention.
    pub ln1: LayerNormWeights,
    /// Norm before FFN.
    pub ln2: LayerNormWeights,
}

impl TransformerBlock {
    /// Initialises one block.
    pub fn new(init: &mut Initializer, cfg: &ModelConfig) -> TransformerBlock {
        TransformerBlock {
            attn: AttentionWeights::new(init, cfg),
            ffn: FfnWeights::new(init, cfg),
            ln1: LayerNormWeights::new(cfg, cfg.embedding_dim),
            ln2: LayerNormWeights::new(cfg, cfg.embedding_dim),
        }
    }

    /// Applies the block to `x: [l, d]`.
    pub fn forward(
        &self,
        exec: &mut Exec,
        x: TRef,
        heads: usize,
        causal: Option<&Param>,
        pad_mask: Option<TRef>,
    ) -> Result<TRef, TensorError> {
        let n = layer_norm(exec, x, &self.ln1)?;
        let a = self_attention(exec, n, &self.attn, heads, causal, pad_mask)?;
        let x = exec.add(x, a)?;
        let n = layer_norm(exec, x, &self.ln2)?;
        let f = feed_forward(exec, n, &self.ffn)?;
        exec.add(x, f)
    }
}

/// Weights of a single-layer GRU.
#[derive(Debug, Clone)]
pub struct GruWeights {
    /// Input-to-hidden `[3h, in]`.
    pub w_ih: Param,
    /// Hidden-to-hidden `[3h, h]`.
    pub w_hh: Param,
    /// Input bias `[3h]`.
    pub b_ih: Param,
    /// Hidden bias `[3h]`.
    pub b_hh: Param,
}

impl GruWeights {
    /// Initialises GRU weights for `input -> hidden`.
    pub fn new(init: &mut Initializer, cfg: &ModelConfig, input: usize, hidden: usize) -> Self {
        GruWeights {
            w_ih: weight(init, cfg, &[3 * hidden, input]),
            w_hh: weight(init, cfg, &[3 * hidden, hidden]),
            b_ih: bias(cfg, 3 * hidden),
            b_hh: bias(cfg, 3 * hidden),
        }
    }
}

/// Runs a GRU over the rows of `x: [l, in]`, returning all hidden states
/// stacked as `[l, h]`.
///
/// The loop is static over the padded length — exactly what `torch.nn.GRU`
/// does on a padded batch — so the trace is shape-stable.
pub fn gru_sequence(
    exec: &mut Exec,
    x: TRef,
    w: &GruWeights,
    hidden: usize,
) -> Result<TRef, TensorError> {
    let (l, d_in) = {
        let s = exec.tensor(x)?.shape();
        (s[0], s[1])
    };
    let w_ih = exec.param(&w.w_ih)?;
    let w_hh = exec.param(&w.w_hh)?;
    let b_ih = exec.param(&w.b_ih)?;
    let b_hh = exec.param(&w.b_hh)?;
    let zero = Param::new(Tensor::zeros(&[hidden]));
    let mut h = exec.param(&zero)?;
    let mut states: Option<TRef> = None;
    for t in 0..l {
        let xt = exec.slice_rows(x, t, t + 1)?; // [1, in]
        let xt = exec.reshape(xt, &[d_in])?;
        h = exec.gru_cell(xt, h, w_ih, w_hh, b_ih, b_hh)?;
        let h_flat = exec.reshape(h, &[hidden])?;
        states = Some(match states {
            Some(acc) => exec.concat(acc, h_flat)?,
            None => h_flat,
        });
    }
    let all = states.expect("l >= 1");
    exec.reshape(all, &[l, hidden])
}

/// Gathers the hidden state at the last valid position: `[l, h]` + last
/// index tensor -> `[h]`.
pub fn gather_last(exec: &mut Exec, states: TRef, last: TRef) -> Result<TRef, TensorError> {
    exec.gather_row(states, last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use etude_tensor::{Device, ExecMode};

    fn cfg() -> ModelConfig {
        ModelConfig::new(100).with_max_session_len(6).with_seed(3)
    }

    fn real_exec() -> Exec {
        Exec::new(ExecMode::Real, Device::cpu())
    }

    #[test]
    fn prepare_session_pads_and_masks() {
        let c = cfg();
        let (items, mask, last) = prepare_session(&[5, 9], &c);
        assert_eq!(items.to_ids().unwrap(), vec![5, 9, 0, 0, 0, 0]);
        assert_eq!(mask.as_slice().unwrap(), &[1.0, 1.0, 0.0, 0.0, 0.0, 0.0]);
        assert_eq!(last.to_ids().unwrap(), vec![1]);
    }

    #[test]
    fn prepare_session_truncates_to_most_recent() {
        let c = cfg();
        let session: Vec<u32> = (1..=10).collect();
        let (items, mask, last) = prepare_session(&session, &c);
        assert_eq!(items.to_ids().unwrap(), vec![5, 6, 7, 8, 9, 10]);
        assert!(mask.as_slice().unwrap().iter().all(|&m| m == 1.0));
        assert_eq!(last.to_ids().unwrap(), vec![5]);
    }

    #[test]
    fn prepare_empty_session_is_well_formed() {
        let c = cfg();
        let (items, mask, last) = prepare_session(&[], &c);
        assert_eq!(items.to_ids().unwrap()[0], 0);
        assert_eq!(mask.as_slice().unwrap()[0], 1.0);
        assert_eq!(last.to_ids().unwrap(), vec![0]);
    }

    #[test]
    fn decode_returns_topk_over_catalog() {
        // Orthogonal (one-hot) embeddings make the expected ranking exact:
        // querying with e_5 must rank item 5 first.
        let c = ModelConfig::new(8).with_embedding_dim(8).with_top_k(3);
        let mut table_data = vec![0.0f32; 64];
        for i in 0..8 {
            table_data[i * 8 + i] = 1.0;
        }
        let table = Param::new(Tensor::from_vec(table_data, &[8, 8]).unwrap());
        let mut e = real_exec();
        let mut q = vec![0.0f32; 8];
        q[5] = 1.0;
        let q = e.input(Tensor::from_vec(q, &[8]).unwrap()).unwrap();
        let out = decode(&mut e, &table, q, &c).unwrap();
        let t = e.tensor(out).unwrap();
        assert_eq!(t.shape(), &[2, 3]); // [ids ; scores] x top_k
        let ids = t.to_ids().unwrap();
        assert_eq!(ids[0], 5); // row 0 holds the bit-cast item ids
    }

    #[test]
    fn masked_softmax_zeroes_padding() {
        let mut e = real_exec();
        let logits = e
            .input(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap())
            .unwrap();
        let mask = e
            .input(Tensor::from_vec(vec![1.0, 1.0, 0.0], &[3]).unwrap())
            .unwrap();
        let w = masked_softmax(&mut e, logits, mask).unwrap();
        let v = e.tensor(w).unwrap().as_slice().unwrap().to_vec();
        assert!(v[2] < 1e-6);
        assert!((v[0] + v[1] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn masked_mean_ignores_padded_rows() {
        let mut e = real_exec();
        let x = e
            .input(Tensor::from_vec(vec![2.0, 4.0, 6.0, 8.0, 99.0, 99.0], &[3, 2]).unwrap())
            .unwrap();
        let mask = e
            .input(Tensor::from_vec(vec![1.0, 1.0, 0.0], &[3]).unwrap())
            .unwrap();
        let m = masked_mean(&mut e, x, mask).unwrap();
        assert_eq!(e.tensor(m).unwrap().as_slice().unwrap(), &[4.0, 6.0]);
    }

    #[test]
    fn weighted_sum_blends_rows() {
        let mut e = real_exec();
        let w = e
            .input(Tensor::from_vec(vec![0.25, 0.75], &[2]).unwrap())
            .unwrap();
        let v = e
            .input(Tensor::from_vec(vec![0.0, 4.0, 8.0, 0.0], &[2, 2]).unwrap())
            .unwrap();
        let s = weighted_sum(&mut e, w, v).unwrap();
        assert_eq!(e.tensor(s).unwrap().as_slice().unwrap(), &[6.0, 1.0]);
    }

    #[test]
    fn gru_sequence_shapes_and_padding_stability() {
        let c = cfg();
        let mut init = Initializer::new(9);
        let w = GruWeights::new(&mut init, &c, c.embedding_dim, c.hidden_size);
        let mut e = real_exec();
        let x = e
            .input(Tensor::zeros(&[c.max_session_len, c.embedding_dim]))
            .unwrap();
        let states = gru_sequence(&mut e, x, &w, c.hidden_size).unwrap();
        assert_eq!(
            e.tensor(states).unwrap().shape(),
            &[c.max_session_len, c.hidden_size]
        );
    }

    #[test]
    fn self_attention_preserves_shape_and_heads_partition() {
        let c = cfg().with_embedding_dim(8);
        let mut init = Initializer::new(5);
        let w = AttentionWeights::new(&mut init, &c);
        for heads in [1usize, 2, 4] {
            let mut e = real_exec();
            let x = e.input(Tensor::full(&[c.max_session_len, 8], 0.1)).unwrap();
            let y = self_attention(&mut e, x, &w, heads, None, None).unwrap();
            assert_eq!(e.tensor(y).unwrap().shape(), &[c.max_session_len, 8]);
        }
    }

    #[test]
    fn causal_mask_blocks_future_positions() {
        let c = cfg().with_embedding_dim(4);
        let mask = causal_mask(&c);
        let m = mask.value().as_slice().unwrap();
        let l = c.max_session_len;
        assert_eq!(m[1], -1e9); // position 0 cannot see position 1
        assert_eq!(m[l], 0.0); // position 1 sees position 0
        assert_eq!(m[l + 1], 0.0); // diagonal visible
    }

    #[test]
    fn transformer_block_runs_end_to_end() {
        let c = cfg().with_embedding_dim(8);
        let mut init = Initializer::new(4);
        let block = TransformerBlock::new(&mut init, &c);
        let causal = causal_mask(&c);
        let mut e = real_exec();
        let x = e.input(Tensor::full(&[c.max_session_len, 8], 0.2)).unwrap();
        let mask = e
            .input(
                Tensor::from_vec(vec![1.0, 1.0, 1.0, 0.0, 0.0, 0.0], &[c.max_session_len]).unwrap(),
            )
            .unwrap();
        let y = block
            .forward(&mut e, x, 2, Some(&causal), Some(mask))
            .unwrap();
        let out = e.tensor(y).unwrap();
        assert_eq!(out.shape(), &[c.max_session_len, 8]);
        assert!(out.as_slice().unwrap().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn linear_vec_round_trips_shapes() {
        let c = cfg();
        let mut init = Initializer::new(2);
        let w = weight(&mut init, &c, &[c.embedding_dim, 5]);
        let b = bias(&c, 5);
        let mut e = real_exec();
        let x = e.input(Tensor::zeros(&[c.embedding_dim])).unwrap();
        let y = linear_vec(&mut e, x, &w, Some(&b)).unwrap();
        assert_eq!(e.tensor(y).unwrap().shape(), &[5]);
    }
}
