//! SR-GNN (Wu et al., AAAI 2019): session graphs with gated GNNs.
//!
//! The session is converted into a directed graph over its interactions;
//! a gated graph neural network propagates item states along incoming and
//! outgoing edges, and an attention readout combines long-term preference
//! with the current interest (the last click).
//!
//! **Quirk (paper, Section III-C):** the RecBole implementation constructs
//! the adjacency matrices "with NumPy operations in their inference
//! functions which require repeated data transfers between CPU and GPU at
//! inference time". With [`ModelConfig::recbole_quirks`] enabled, the
//! [`Exec::session_graph`] ops are marked host-side, charging two PCIe
//! round-trips per request on GPU devices. The repaired variant builds the
//! graph on-device.

use crate::common::{
    self, decode, gather_last, linear, linear_vec, masked_softmax, weight, weighted_sum,
};
use crate::config::ModelConfig;
use crate::traits::SbrModel;
use etude_tensor::kernels::{BinOp, UnOp};
use etude_tensor::rng::Initializer;
use etude_tensor::{Exec, Param, SessionInput, TRef, TensorError};

/// Weights of the gated graph network and readout shared by SR-GNN and
/// GC-SAN.
pub struct GgnnWeights {
    /// Edge projections `[d, d]` for incoming/outgoing messages.
    pub w_in: Param,
    pub w_out: Param,
    /// Gate projections `[2d, d]` (messages) and `[d, d]` (state).
    pub wz_a: Param,
    pub wz_h: Param,
    pub wr_a: Param,
    pub wr_h: Param,
    pub wh_a: Param,
    pub wh_h: Param,
}

impl GgnnWeights {
    /// Initialises GGNN weights for hidden size `d`.
    pub fn new(init: &mut Initializer, cfg: &ModelConfig) -> GgnnWeights {
        let d = cfg.embedding_dim;
        GgnnWeights {
            w_in: weight(init, cfg, &[d, d]),
            w_out: weight(init, cfg, &[d, d]),
            wz_a: weight(init, cfg, &[2 * d, d]),
            wz_h: weight(init, cfg, &[d, d]),
            wr_a: weight(init, cfg, &[2 * d, d]),
            wr_h: weight(init, cfg, &[d, d]),
            wh_a: weight(init, cfg, &[2 * d, d]),
            wh_h: weight(init, cfg, &[d, d]),
        }
    }

    /// One gated propagation step over the session graph.
    ///
    /// `a = [A_in H W_in ; A_out H W_out]`, then a GRU-style gate updates
    /// the node states `h`.
    pub fn step(
        &self,
        exec: &mut Exec,
        h: TRef,
        a_in: TRef,
        a_out: TRef,
    ) -> Result<TRef, TensorError> {
        let m_in0 = linear(exec, h, &self.w_in, None)?; // [l, d]
        let m_in = exec.matmul(a_in, m_in0)?; // [l, d]
        let m_out0 = linear(exec, h, &self.w_out, None)?;
        let m_out = exec.matmul(a_out, m_out0)?;
        let a = exec.concat(m_in, m_out)?; // [l, 2d]

        let z0 = linear(exec, a, &self.wz_a, None)?;
        let z1 = linear(exec, h, &self.wz_h, None)?;
        let z = exec.add(z0, z1)?;
        let z = exec.unary(UnOp::Sigmoid, z)?;

        let r0 = linear(exec, a, &self.wr_a, None)?;
        let r1 = linear(exec, h, &self.wr_h, None)?;
        let r = exec.add(r0, r1)?;
        let r = exec.unary(UnOp::Sigmoid, r)?;

        let gated = exec.mul(r, h)?;
        let n0 = linear(exec, a, &self.wh_a, None)?;
        let n1 = linear(exec, gated, &self.wh_h, None)?;
        let n = exec.add(n0, n1)?;
        let n = exec.tanh(n)?;

        // h' = (1 - z) * h + z * n
        let one_minus_z = exec.scalar(BinOp::Sub, z, 1.0)?; // z - 1
        let one_minus_z = exec.scalar(BinOp::Mul, one_minus_z, -1.0)?; // 1 - z
        let keep = exec.mul(one_minus_z, h)?;
        let update = exec.mul(z, n)?;
        exec.add(keep, update)
    }
}

/// Builds the in/out adjacency matrices, marked host-side when the
/// RecBole quirk is enabled.
pub fn session_adjacency(
    exec: &mut Exec,
    input: SessionInput,
    quirky: bool,
) -> Result<(TRef, TRef), TensorError> {
    let a_in = exec.session_graph(input.items, input.mask, false, quirky)?;
    let a_out = exec.session_graph(input.items, input.mask, true, quirky)?;
    Ok((a_in, a_out))
}

/// The SR-GNN model.
pub struct SrGnn {
    cfg: ModelConfig,
    embedding: Param,
    ggnn: GgnnWeights,
    /// Readout attention: `q = W1 h_last`, `K = H W2`, `e = v^T sigmoid(...)`.
    w1: Param,
    w2: Param,
    v: Param,
    /// Hybrid combine `[2d, d]`.
    w3: Param,
}

impl SrGnn {
    /// Builds the model with randomly initialised weights.
    pub fn new(cfg: ModelConfig) -> SrGnn {
        let mut init = Initializer::new(cfg.seed).child("srgnn");
        let d = cfg.embedding_dim;
        SrGnn {
            embedding: common::embedding_table(&mut init, &cfg),
            ggnn: GgnnWeights::new(&mut init, &cfg),
            w1: weight(&mut init, &cfg, &[d, d]),
            w2: weight(&mut init, &cfg, &[d, d]),
            v: weight(&mut init, &cfg, &[d, 1]),
            w3: weight(&mut init, &cfg, &[2 * d, d]),
            cfg,
        }
    }
}

impl SbrModel for SrGnn {
    fn name(&self) -> &'static str {
        "srgnn"
    }

    fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    fn forward(&self, exec: &mut Exec, input: SessionInput) -> Result<TRef, TensorError> {
        let l = self.cfg.max_session_len;
        let table = exec.param(&self.embedding)?;
        let mut h = exec.embedding(table, input.items)?; // [l, d]
        let (a_in, a_out) = session_adjacency(exec, input, self.cfg.recbole_quirks)?;
        for _ in 0..self.cfg.num_layers {
            h = self.ggnn.step(exec, h, a_in, a_out)?;
        }

        // Attention readout: long-term preference s_g.
        let h_last = gather_last(exec, h, input.last)?; // [d]
        let q = linear_vec(exec, h_last, &self.w1, None)?;
        let keys = linear(exec, h, &self.w2, None)?;
        let shifted = exec.binary_row(BinOp::Add, keys, q)?;
        let act = exec.unary(UnOp::Sigmoid, shifted)?;
        let v = exec.param(&self.v)?;
        let e = exec.matmul(act, v)?; // [l, 1]
        let e = exec.reshape(e, &[l])?;
        let alpha = masked_softmax(exec, e, input.mask)?;
        let s_g = weighted_sum(exec, alpha, h)?;

        // Hybrid: combine global preference with current interest.
        let hybrid = exec.concat(s_g, h_last)?; // [2d]
        let s = linear_vec(exec, hybrid, &self.w3, None)?;
        decode(exec, &self.embedding, s, &self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{forward_cost, recommend_eager};
    use etude_tensor::{Device, ExecMode};

    fn cfg() -> ModelConfig {
        ModelConfig::new(70).with_max_session_len(6).with_seed(21)
    }

    #[test]
    fn recommends_k_items() {
        let m = SrGnn::new(cfg());
        let r = recommend_eager(&m, &Device::cpu(), &[1, 2, 3, 2]).unwrap();
        assert_eq!(r.items.len(), m.cfg.top_k);
    }

    #[test]
    fn quirk_forces_host_transfers_on_gpu() {
        let quirky = SrGnn::new(cfg());
        let fixed = SrGnn::new(cfg().with_quirks(false));
        let cq = forward_cost(&quirky, &Device::t4(), ExecMode::Real, 4).unwrap();
        let cf = forward_cost(&fixed, &Device::t4(), ExecMode::Real, 4).unwrap();
        assert!(cq.transfers >= 4, "expected >=2 transfers per adjacency");
        assert_eq!(cf.transfers, 0);
    }

    #[test]
    fn graph_structure_affects_encoding() {
        let m = SrGnn::new(cfg());
        // Same multiset of items, different transition structure.
        let a = recommend_eager(&m, &Device::cpu(), &[1, 2, 3]).unwrap();
        let b = recommend_eager(&m, &Device::cpu(), &[3, 2, 1]).unwrap();
        assert_ne!(a.scores, b.scores);
    }

    #[test]
    fn repeated_items_are_handled() {
        let m = SrGnn::new(cfg());
        let r = recommend_eager(&m, &Device::cpu(), &[5, 5, 5, 5]).unwrap();
        assert!(r.scores.iter().all(|s| s.is_finite()));
    }
}
