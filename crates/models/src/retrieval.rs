//! Catalog retrieval strategies — the paper's future-work item on
//! trading "prediction quality with inference latency, such as model
//! quantisation \[36\] or approximate nearest neighbor search \[37\]"
//! (Section IV).
//!
//! All SBR models end in a maximum-inner-product search over the catalog;
//! this module provides three interchangeable implementations of that
//! search:
//!
//! * [`ExactIndex`] — the exhaustive f32 scan the paper's models use
//!   (the `O(C·d)` baseline),
//! * [`QuantizedIndex`] — int8 symmetric quantisation of the embedding
//!   table: 4x less memory traffic for a small recall loss,
//! * [`IvfIndex`] — an inverted-file ANN index (k-means coarse quantiser,
//!   probe the `nprobe` nearest clusters): sub-linear scans that trade
//!   recall for latency via `nprobe`.
//!
//! Each index reports a [`CostSpec`] so the serving simulation can price
//! deployments using it, and the recall helpers quantify the quality side
//! of the trade-off.

use etude_tensor::cost::CostSpec;
use etude_tensor::pool;
use etude_tensor::topk::{score_topk_into, score_topk_q8_into, topk, TopkScratch};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;

/// A maximum-inner-product index over `C` item embeddings.
pub trait MipsIndex {
    /// Returns the ids and scores of the `k` best items for `query`.
    fn search(&self, query: &[f32], k: usize) -> (Vec<u32>, Vec<f32>);

    /// Batch-parametric cost of one search (for the device models).
    fn cost_spec(&self) -> CostSpec;

    /// Resident size of the index in bytes.
    fn memory_bytes(&self) -> u64;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Reusable per-request buffers for index searches: the quantised query
/// and the fused top-k selection state. Since the scans went through the
/// fused `score_topk` kernels there is no `C`-sized score vector any
/// more — the largest buffer is `O(shards · k)`. Holding one of these
/// across calls makes [`ExactIndex::search_into`] /
/// [`QuantizedIndex::search_into`] allocation-free in steady state.
#[derive(Debug, Default)]
pub struct SearchScratch {
    q8: Vec<i32>,
    topk: TopkScratch,
}

thread_local! {
    /// Per-thread scratch backing the allocating [`MipsIndex::search`]
    /// entry points, so server handler threads reuse their buffers
    /// without coordination.
    static SCRATCH: RefCell<SearchScratch> = RefCell::new(SearchScratch::default());
}

fn with_thread_scratch<R>(f: impl FnOnce(&mut SearchScratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// The exhaustive f32 scan used by the paper's models.
#[derive(Debug, Clone)]
pub struct ExactIndex {
    table: Vec<f32>,
    c: usize,
    d: usize,
}

impl ExactIndex {
    /// Wraps a `[c, d]` row-major embedding table.
    pub fn new(table: Vec<f32>, c: usize, d: usize) -> ExactIndex {
        assert_eq!(table.len(), c * d, "table shape mismatch");
        ExactIndex { table, c, d }
    }

    /// Scores every catalog row into `out` (length `c`), sharding large
    /// catalogs over the intra-op pool. Per-shard results are the same
    /// dot products at the same offsets, so the output is bit-identical
    /// for any pool width. This is the *unfused* reference path — the
    /// serving hot path is [`ExactIndex::search_into`], which never
    /// materialises this vector.
    pub fn scores_into(&self, query: &[f32], out: &mut [f32]) {
        let d = self.d;
        let table = &self.table;
        pool::parallel_rows(out, self.c, 1, |rows, chunk| {
            for (i, s) in chunk.iter_mut().enumerate() {
                let r = rows.start + i;
                *s = etude_tensor::kernels::dot(&table[r * d..(r + 1) * d], query);
            }
        });
    }

    /// [`MipsIndex::search`] without per-request allocation: the fused
    /// SIMD scan streams scores straight into the top-k heap, so no
    /// `C`-sized buffer exists. Results land in the (cleared) output
    /// vectors; warm scratch buffers are reused.
    pub fn search_into(
        &self,
        query: &[f32],
        k: usize,
        scratch: &mut SearchScratch,
        out_ids: &mut Vec<u32>,
        out_scores: &mut Vec<f32>,
    ) {
        score_topk_into(
            &self.table,
            query,
            self.c,
            k,
            &mut scratch.topk,
            out_ids,
            out_scores,
        );
    }
}

impl ExactIndex {
    /// Read-only view of the backing `[c, d]` row-major table.
    pub fn table(&self) -> &[f32] {
        &self.table
    }
}

impl MipsIndex for ExactIndex {
    fn search(&self, query: &[f32], k: usize) -> (Vec<u32>, Vec<f32>) {
        let mut ids = Vec::with_capacity(k);
        let mut scores = Vec::with_capacity(k);
        with_thread_scratch(|scratch| self.search_into(query, k, scratch, &mut ids, &mut scores));
        (ids, scores)
    }

    fn cost_spec(&self) -> CostSpec {
        let n = (self.c * self.d) as f64;
        CostSpec {
            flops_per_item: 2.0 * n,
            shared_bytes: 4.0 * n,
            // Fused score+top-k: only the query is streamed per item —
            // the `[C]` score vector is never written or re-read.
            per_item_bytes: 4.0 * self.d as f64,
            launches: 1,
            ..CostSpec::default()
        }
    }

    fn memory_bytes(&self) -> u64 {
        4 * self.table.len() as u64
    }

    fn name(&self) -> &'static str {
        "exact-f32"
    }
}

/// Int8 symmetric per-row quantisation of the embedding table.
#[derive(Debug, Clone)]
pub struct QuantizedIndex {
    data: Vec<i8>,
    /// Per-row dequantisation scale.
    scales: Vec<f32>,
    c: usize,
    d: usize,
}

impl QuantizedIndex {
    /// Quantises a `[c, d]` f32 table.
    pub fn from_f32(table: &[f32], c: usize, d: usize) -> QuantizedIndex {
        assert_eq!(table.len(), c * d, "table shape mismatch");
        let mut data = Vec::with_capacity(c * d);
        let mut scales = Vec::with_capacity(c);
        for row in table.chunks_exact(d) {
            let max = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            let scale = if max > 0.0 { max / 127.0 } else { 1.0 };
            scales.push(scale);
            for &x in row {
                data.push((x / scale).round().clamp(-127.0, 127.0) as i8);
            }
        }
        QuantizedIndex { data, scales, c, d }
    }

    /// Allocation-free int8 search into reusable buffers; the fused
    /// scan dequantises each raw integer dot in-register and streams it
    /// straight into the top-k heap, exactly like
    /// [`ExactIndex::search_into`].
    pub fn search_into(
        &self,
        query: &[f32],
        k: usize,
        scratch: &mut SearchScratch,
        out_ids: &mut Vec<u32>,
        out_scores: &mut Vec<f32>,
    ) {
        // Quantise the query once (symmetric, per-tensor).
        let qmax = query.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let qscale = if qmax > 0.0 { qmax / 127.0 } else { 1.0 };
        let SearchScratch { q8, topk } = scratch;
        q8.clear();
        q8.extend(
            query
                .iter()
                .map(|&x| (x / qscale).round().clamp(-127.0, 127.0) as i32),
        );
        score_topk_q8_into(
            &self.data,
            &self.scales,
            q8,
            qscale,
            self.c,
            k,
            topk,
            out_ids,
            out_scores,
        );
    }
}

impl MipsIndex for QuantizedIndex {
    fn search(&self, query: &[f32], k: usize) -> (Vec<u32>, Vec<f32>) {
        let mut ids = Vec::with_capacity(k);
        let mut scores = Vec::with_capacity(k);
        with_thread_scratch(|scratch| self.search_into(query, k, scratch, &mut ids, &mut scores));
        (ids, scores)
    }

    fn cost_spec(&self) -> CostSpec {
        let n = (self.c * self.d) as f64;
        CostSpec {
            flops_per_item: 2.0 * n,
            // One byte per weight instead of four: the entire point.
            shared_bytes: n + 4.0 * self.c as f64,
            // Fused scan: per-item traffic is the quantised query only.
            per_item_bytes: 4.0 * self.d as f64,
            launches: 1,
            ..CostSpec::default()
        }
    }

    fn memory_bytes(&self) -> u64 {
        (self.data.len() + 4 * self.scales.len()) as u64
    }

    fn name(&self) -> &'static str {
        "int8"
    }
}

/// An inverted-file ANN index: items are assigned to `nlist` k-means
/// clusters; a search scores the centroids, then scans only the `nprobe`
/// closest clusters exhaustively.
#[derive(Debug, Clone)]
pub struct IvfIndex {
    table: Vec<f32>,
    centroids: Vec<f32>,
    lists: Vec<Vec<u32>>,
    nprobe: usize,
    c: usize,
    d: usize,
}

impl IvfIndex {
    /// Builds the index over a `[c, d]` table with `nlist` clusters,
    /// probing `nprobe` of them per query. K-means runs a fixed number of
    /// Lloyd iterations from a seeded start, so builds are deterministic.
    pub fn build(table: Vec<f32>, c: usize, d: usize, nlist: usize, nprobe: usize) -> IvfIndex {
        assert_eq!(table.len(), c * d, "table shape mismatch");
        let nlist = nlist.clamp(1, c.max(1));
        let mut rng = SmallRng::seed_from_u64(0xC1u64);
        // Initialise centroids from random items.
        let mut centroids: Vec<f32> = (0..nlist)
            .flat_map(|_| {
                let i = rng.gen_range(0..c);
                table[i * d..(i + 1) * d].to_vec()
            })
            .collect();
        let mut assignment = vec![0u32; c];
        for _iter in 0..8 {
            // Assign each item to its nearest centroid (L2).
            for i in 0..c {
                let row = &table[i * d..(i + 1) * d];
                let mut best = 0usize;
                let mut best_dist = f32::INFINITY;
                for (j, cent) in centroids.chunks_exact(d).enumerate() {
                    let dist: f32 = row.iter().zip(cent).map(|(a, b)| (a - b) * (a - b)).sum();
                    if dist < best_dist {
                        best_dist = dist;
                        best = j;
                    }
                }
                assignment[i] = best as u32;
            }
            // Recompute centroids.
            let mut sums = vec![0.0f32; nlist * d];
            let mut counts = vec![0u32; nlist];
            for i in 0..c {
                let j = assignment[i] as usize;
                counts[j] += 1;
                for (s, &x) in sums[j * d..(j + 1) * d]
                    .iter_mut()
                    .zip(&table[i * d..(i + 1) * d])
                {
                    *s += x;
                }
            }
            for j in 0..nlist {
                if counts[j] > 0 {
                    for s in sums[j * d..(j + 1) * d].iter_mut() {
                        *s /= counts[j] as f32;
                    }
                    centroids[j * d..(j + 1) * d].copy_from_slice(&sums[j * d..(j + 1) * d]);
                }
            }
        }
        let mut lists = vec![Vec::new(); nlist];
        for (i, &j) in assignment.iter().enumerate() {
            lists[j as usize].push(i as u32);
        }
        IvfIndex {
            table,
            centroids,
            lists,
            nprobe: nprobe.clamp(1, nlist),
            c,
            d,
        }
    }

    /// Returns a copy of this index probing `nprobe` clusters per query.
    /// The expensive k-means build is shared — sweep `nprobe` without
    /// re-clustering.
    pub fn with_nprobe(&self, nprobe: usize) -> IvfIndex {
        let mut index = self.clone();
        index.nprobe = nprobe.clamp(1, self.lists.len());
        index
    }

    /// Mean fraction of the catalog scanned per query.
    pub fn scan_fraction(&self) -> f64 {
        let mut sizes: Vec<usize> = self.lists.iter().map(Vec::len).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let probed: usize = sizes.iter().take(self.nprobe).sum();
        probed as f64 / self.c.max(1) as f64
    }

    /// The configured probe count.
    pub fn nprobe(&self) -> usize {
        self.nprobe
    }
}

impl MipsIndex for IvfIndex {
    fn search(&self, query: &[f32], k: usize) -> (Vec<u32>, Vec<f32>) {
        // Rank centroids by inner product with the query.
        let cent_scores: Vec<f32> = self
            .centroids
            .chunks_exact(self.d)
            .map(|cent| etude_tensor::kernels::dot(cent, query))
            .collect();
        let (probe_ids, _) = topk(&cent_scores, self.nprobe);
        let mut candidates: Vec<(u32, f32)> = Vec::new();
        for &list_id in &probe_ids {
            for &item in &self.lists[list_id as usize] {
                let row = &self.table[item as usize * self.d..(item as usize + 1) * self.d];
                candidates.push((item, etude_tensor::kernels::dot(row, query)));
            }
        }
        let scores: Vec<f32> = candidates.iter().map(|&(_, s)| s).collect();
        let (local_idx, top_scores) = topk(&scores, k);
        let ids = local_idx
            .iter()
            .map(|&i| candidates[i as usize].0)
            .collect();
        (ids, top_scores)
    }

    fn cost_spec(&self) -> CostSpec {
        let scanned = self.scan_fraction() * self.c as f64;
        let nlist = self.lists.len() as f64;
        CostSpec {
            flops_per_item: 2.0 * (scanned + nlist) * self.d as f64,
            shared_bytes: 4.0 * (scanned + nlist) * self.d as f64,
            per_item_bytes: 4.0 * scanned,
            launches: 2, // centroid scan + probed-list scan
            ..CostSpec::default()
        }
    }

    fn memory_bytes(&self) -> u64 {
        (4 * self.table.len() + 4 * self.centroids.len() + 4 * self.c) as u64
    }

    fn name(&self) -> &'static str {
        "ivf"
    }
}

/// A contiguous slice of the catalog served by one shard group in the
/// scatter/gather tier: rows `[base, base + len)` of the global `[c, d]`
/// embedding table, searched with the same fused [`score_topk_into`]
/// kernel as [`ExactIndex`] but reporting **global** item ids
/// (`base + local row`). Because the slice rows are bit-identical to the
/// corresponding global rows and the selection comparator is shared,
/// concatenating per-shard results and re-sorting (the router's
/// `merge_shard_topk`) reproduces the unsharded scan exactly.
#[derive(Debug, Clone)]
pub struct CatalogShard {
    index: ExactIndex,
    base: u32,
}

impl CatalogShard {
    /// Extracts rows `range` of a global `[_, d]` row-major table.
    pub fn from_table(table: &[f32], d: usize, range: std::ops::Range<usize>) -> CatalogShard {
        let slice = table[range.start * d..range.end * d].to_vec();
        CatalogShard {
            index: ExactIndex::new(slice, range.len(), d),
            base: range.start as u32,
        }
    }

    /// Wraps an already-extracted slice whose row 0 is global row `base`.
    pub fn new(slice: Vec<f32>, d: usize, base: u32) -> CatalogShard {
        let rows = slice.len() / d.max(1);
        CatalogShard {
            index: ExactIndex::new(slice, rows, d),
            base,
        }
    }

    /// First global row held by this shard.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Number of catalog rows held by this shard.
    pub fn rows(&self) -> usize {
        self.index.c
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.index.d
    }

    /// Int8-quantised copy of this shard's slice, for the brownout
    /// ladder's quantized rung. Ids it reports are slice-local; callers
    /// add [`CatalogShard::base`] exactly like
    /// [`CatalogShard::search_into`] does.
    pub fn quantize(&self) -> QuantizedIndex {
        QuantizedIndex::from_f32(self.index.table(), self.index.c, self.index.d)
    }

    /// Allocation-free slice search reporting global item ids.
    pub fn search_into(
        &self,
        query: &[f32],
        k: usize,
        scratch: &mut SearchScratch,
        out_ids: &mut Vec<u32>,
        out_scores: &mut Vec<f32>,
    ) {
        self.index
            .search_into(query, k, scratch, out_ids, out_scores);
        for id in out_ids.iter_mut() {
            *id += self.base;
        }
    }
}

impl MipsIndex for CatalogShard {
    fn search(&self, query: &[f32], k: usize) -> (Vec<u32>, Vec<f32>) {
        let mut ids = Vec::with_capacity(k);
        let mut scores = Vec::with_capacity(k);
        with_thread_scratch(|scratch| self.search_into(query, k, scratch, &mut ids, &mut scores));
        (ids, scores)
    }

    fn cost_spec(&self) -> CostSpec {
        self.index.cost_spec()
    }

    fn memory_bytes(&self) -> u64 {
        self.index.memory_bytes()
    }

    fn name(&self) -> &'static str {
        "shard"
    }
}

/// Deterministic session-to-query embedding shared by every retrieval
/// backend in the scatter/gather tier.
///
/// Shard pods hold only their catalog slice, so they cannot look up
/// embeddings for arbitrary session items; the (tiny) session encoder is
/// therefore replicated as a *pure function* of the item ids — a seeded
/// hash embedding with recency weighting — while only the `C x d` catalog
/// scan is partitioned. The unsharded reference server and every shard
/// backend call this same function, so a query produces bit-identical
/// vectors everywhere and bit-identity of the merged top-k reduces to
/// bit-identity of the partitioned scan.
pub fn encode_session_query(items: &[u32], d: usize, seed: u64) -> Vec<f32> {
    let mut q = vec![0.0f32; d];
    for (pos, &item) in items.iter().enumerate() {
        // Later items dominate, mirroring the recency bias of real
        // session encoders.
        let weight = 1.0 / (items.len() - pos) as f32;
        for (j, slot) in q.iter_mut().enumerate() {
            // FNV-1a over (seed, item, dim), mapped into [-1, 1).
            let mut h = 0xcbf29ce484222325u64 ^ seed;
            for byte in item
                .to_le_bytes()
                .into_iter()
                .chain((j as u32).to_le_bytes())
            {
                h ^= byte as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            let unit = (h >> 40) as f32 / (1u64 << 24) as f32;
            *slot += weight * (2.0 * unit - 1.0);
        }
    }
    q
}

/// Recall@k of `approx` against ground-truth ids `exact`.
pub fn recall_at_k(exact: &[u32], approx: &[u32]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let hits = approx.iter().filter(|i| exact.contains(i)).count();
    hits as f64 / exact.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_table(c: usize, d: usize, seed: u64) -> Vec<f32> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..c * d).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    fn random_query(d: usize, seed: u64) -> Vec<f32> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    #[test]
    fn quantized_recall_stays_high() {
        let (c, d) = (5_000, 16);
        let table = random_table(c, d, 1);
        let exact = ExactIndex::new(table.clone(), c, d);
        let quant = QuantizedIndex::from_f32(&table, c, d);
        let mut total = 0.0;
        for s in 0..10 {
            let q = random_query(d, 100 + s);
            let (e, _) = exact.search(&q, 21);
            let (a, _) = quant.search(&q, 21);
            total += recall_at_k(&e, &a);
        }
        let recall = total / 10.0;
        assert!(recall > 0.85, "int8 recall@21 = {recall:.3}");
    }

    #[test]
    fn quantized_index_is_about_4x_smaller() {
        let (c, d) = (1_000, 32);
        let table = random_table(c, d, 2);
        let exact = ExactIndex::new(table.clone(), c, d);
        let quant = QuantizedIndex::from_f32(&table, c, d);
        let ratio = exact.memory_bytes() as f64 / quant.memory_bytes() as f64;
        assert!(ratio > 3.3 && ratio < 4.0, "ratio {ratio:.2}");
    }

    #[test]
    fn ivf_recall_grows_with_nprobe() {
        let (c, d) = (4_000, 12);
        let table = random_table(c, d, 3);
        let exact = ExactIndex::new(table.clone(), c, d);
        let recall_for = |nprobe: usize| {
            let ivf = IvfIndex::build(table.clone(), c, d, 64, nprobe);
            let mut total = 0.0;
            for s in 0..8 {
                let q = random_query(d, 200 + s);
                let (e, _) = exact.search(&q, 21);
                let (a, _) = ivf.search(&q, 21);
                total += recall_at_k(&e, &a);
            }
            total / 8.0
        };
        let low = recall_for(2);
        let high = recall_for(32);
        assert!(
            high > low,
            "recall must grow with nprobe: {low:.3} vs {high:.3}"
        );
        assert!(high > 0.9, "nprobe=32/64 recall {high:.3}");
    }

    #[test]
    fn ivf_scans_a_fraction_of_the_catalog() {
        let (c, d) = (4_000, 12);
        let ivf = IvfIndex::build(random_table(c, d, 4), c, d, 64, 4);
        let frac = ivf.scan_fraction();
        assert!(frac < 0.35, "scan fraction {frac:.3}");
        assert!(frac > 0.0);
    }

    #[test]
    fn ivf_cost_is_cheaper_than_exact() {
        let (c, d) = (10_000, 16);
        let table = random_table(c, d, 5);
        let exact = ExactIndex::new(table.clone(), c, d);
        let ivf = IvfIndex::build(table, c, d, 128, 8);
        let e = exact.cost_spec().at_batch(1);
        let a = ivf.cost_spec().at_batch(1);
        assert!(a.bytes < 0.5 * e.bytes, "{} vs {}", a.bytes, e.bytes);
    }

    #[test]
    fn all_indexes_agree_on_an_easy_query() {
        // A query equal to one of the rows: every index must rank that
        // row first (it maximises the inner product with itself among
        // near-orthogonal random rows, with overwhelming probability).
        let (c, d) = (2_000, 24);
        let table = random_table(c, d, 6);
        let target = 777usize;
        let q: Vec<f32> = table[target * d..(target + 1) * d].to_vec();
        let exact = ExactIndex::new(table.clone(), c, d);
        let quant = QuantizedIndex::from_f32(&table, c, d);
        let ivf = IvfIndex::build(table, c, d, 64, 16);
        assert_eq!(exact.search(&q, 1).0[0], target as u32);
        assert_eq!(quant.search(&q, 1).0[0], target as u32);
        assert_eq!(ivf.search(&q, 1).0[0], target as u32);
    }

    #[test]
    fn search_into_matches_search_and_reuses_buffers() {
        let (c, d, k) = (3_000, 16, 21);
        let table = random_table(c, d, 9);
        let exact = ExactIndex::new(table.clone(), c, d);
        let quant = QuantizedIndex::from_f32(&table, c, d);
        let mut scratch = SearchScratch::default();
        let mut ids = Vec::new();
        let mut scores = Vec::new();
        for s in 0..5 {
            let q = random_query(d, 300 + s);
            exact.search_into(&q, k, &mut scratch, &mut ids, &mut scores);
            let (eids, escores) = exact.search(&q, k);
            assert_eq!(ids, eids);
            assert_eq!(scores, escores);
            quant.search_into(&q, k, &mut scratch, &mut ids, &mut scores);
            let (qids, qscores) = quant.search(&q, k);
            assert_eq!(ids, qids);
            assert_eq!(scores, qscores);
        }
    }

    #[test]
    fn exact_scores_match_plain_dot_products() {
        // The sharded scoring path must reproduce the serial per-row dot
        // exactly (same kernel over the same rows).
        let (c, d) = (1_500, 24);
        let table = random_table(c, d, 10);
        let exact = ExactIndex::new(table.clone(), c, d);
        let q = random_query(d, 11);
        let mut out = vec![0.0f32; c];
        exact.scores_into(&q, &mut out);
        for (i, &s) in out.iter().enumerate() {
            assert_eq!(
                s,
                etude_tensor::kernels::dot(&table[i * d..(i + 1) * d], &q)
            );
        }
    }

    #[test]
    fn shard_search_reports_global_ids() {
        let (c, d, k) = (1_000, 8, 21);
        let table = random_table(c, d, 12);
        let exact = ExactIndex::new(table.clone(), c, d);
        let q = random_query(d, 13);
        let (gids, gscores) = exact.search(&q, k);
        // Partition into three uneven slices and merge the partials.
        let cuts = [0usize, 300, 650, c];
        let mut partials = Vec::new();
        for w in cuts.windows(2) {
            let shard = CatalogShard::from_table(&table, d, w[0]..w[1]);
            assert_eq!(shard.base() as usize, w[0]);
            assert_eq!(shard.rows(), w[1] - w[0]);
            assert_eq!(shard.memory_bytes(), 4 * ((w[1] - w[0]) * d) as u64);
            let (ids, scores) = shard.search(&q, k);
            assert!(ids
                .iter()
                .all(|&i| (i as usize) >= w[0] && (i as usize) < w[1]));
            partials.push((ids, scores));
        }
        let merged = etude_tensor::topk::merge_shard_topk(&partials, k);
        assert_eq!(merged, (gids, gscores));
    }

    #[test]
    fn full_range_shard_matches_exact_index() {
        let (c, d, k) = (500, 12, 10);
        let table = random_table(c, d, 14);
        let exact = ExactIndex::new(table.clone(), c, d);
        let shard = CatalogShard::from_table(&table, d, 0..c);
        let q = random_query(d, 15);
        assert_eq!(shard.search(&q, k), exact.search(&q, k));
    }

    #[test]
    fn session_query_is_deterministic_and_seed_sensitive() {
        let items = [3u32, 9, 4, 9];
        let a = encode_session_query(&items, 18, 7);
        let b = encode_session_query(&items, 18, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 18);
        assert!(a.iter().any(|&x| x != 0.0));
        let c = encode_session_query(&items, 18, 8);
        assert_ne!(a, c);
        // Order matters (recency weighting).
        let d = encode_session_query(&[9, 4, 9, 3], 18, 7);
        assert_ne!(a, d);
    }

    #[test]
    fn with_nprobe_shares_the_build() {
        let (c, d) = (2_000, 8);
        let table = random_table(c, d, 16);
        let base = IvfIndex::build(table, c, d, 32, 4);
        let wide = base.with_nprobe(16);
        assert_eq!(wide.nprobe(), 16);
        assert_eq!(base.nprobe(), 4);
        assert!(wide.scan_fraction() > base.scan_fraction());
        // Clamped to nlist.
        assert_eq!(base.with_nprobe(10_000).nprobe(), 32);
    }

    #[test]
    fn recall_helper_handles_edge_cases() {
        assert_eq!(recall_at_k(&[], &[]), 1.0);
        assert_eq!(recall_at_k(&[1, 2], &[2, 3]), 0.5);
        assert_eq!(recall_at_k(&[1, 2], &[1, 2]), 1.0);
    }
}
