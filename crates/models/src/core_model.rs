//! CORE (Hou et al., SIGIR 2022): consistent representation space.
//!
//! CORE never projects the session out of the item-embedding space: a
//! transformer computes *weights* over the session positions, and the
//! session representation is the weighted sum of the original item
//! embeddings (the "representation-consistent encoder", CORE-trm), scored
//! against the catalog with a temperature.

use crate::common::{
    self, catalog_scores, linear, masked_softmax, positional_table, weight, weighted_sum,
    TransformerBlock,
};
use crate::config::ModelConfig;
use crate::traits::SbrModel;
use etude_tensor::kernels::BinOp;
use etude_tensor::rng::Initializer;
use etude_tensor::{Exec, Param, SessionInput, TRef, TensorError};

/// The CORE model (transformer weighting variant).
pub struct Core {
    cfg: ModelConfig,
    embedding: Param,
    positions: Param,
    blocks: Vec<TransformerBlock>,
    /// Weight head `[d, 1]` producing per-position logits.
    alpha_head: Param,
    /// Softmax temperature of the decode (CORE uses 0.07).
    temperature: f32,
}

impl Core {
    /// Builds the model with randomly initialised weights.
    pub fn new(cfg: ModelConfig) -> Core {
        let mut init = Initializer::new(cfg.seed).child("core");
        let blocks = (0..cfg.num_layers)
            .map(|_| TransformerBlock::new(&mut init, &cfg))
            .collect();
        Core {
            embedding: common::embedding_table(&mut init, &cfg),
            positions: positional_table(&mut init, &cfg),
            blocks,
            alpha_head: weight(&mut init, &cfg, &[cfg.embedding_dim, 1]),
            temperature: 0.07,
            cfg,
        }
    }
}

impl SbrModel for Core {
    fn name(&self) -> &'static str {
        "core"
    }

    fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    fn forward(&self, exec: &mut Exec, input: SessionInput) -> Result<TRef, TensorError> {
        let l = self.cfg.max_session_len;
        let table = exec.param(&self.embedding)?;
        let emb = exec.embedding(table, input.items)?; // [l, d] — kept pristine
        let pos = exec.param(&self.positions)?;
        let mut x = exec.add(emb, pos)?;
        for block in &self.blocks {
            x = block.forward(exec, x, self.cfg.num_heads, None, Some(input.mask))?;
        }
        // Per-position weights from the transformer output.
        let logits = linear(exec, x, &self.alpha_head, None)?; // [l, 1]
        let logits = exec.reshape(logits, &[l])?;
        let alpha = masked_softmax(exec, logits, input.mask)?;
        // Representation-consistent: weights applied to the *original*
        // embeddings, never leaving the item space.
        let s = weighted_sum(exec, alpha, emb)?; // [d]
        let scores = catalog_scores(exec, &self.embedding, s, &self.cfg)?;
        let scores = exec.scalar(BinOp::Div, scores, self.temperature)?;
        exec.topk(scores, self.cfg.top_k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::recommend_eager;
    use etude_tensor::Device;

    fn model() -> Core {
        Core::new(
            ModelConfig::new(64)
                .with_max_session_len(5)
                .with_embedding_dim(8)
                .with_seed(8),
        )
    }

    #[test]
    fn recommends_k_items() {
        let m = model();
        let r = recommend_eager(&m, &Device::cpu(), &[1, 2, 3]).unwrap();
        assert_eq!(r.items.len(), m.cfg.top_k);
    }

    #[test]
    fn consistent_space_favours_session_items() {
        // With the representation being a convex combination of session
        // item embeddings, at least one session item should rank highly.
        let m = model();
        let session = [10u32, 20, 30];
        let r = recommend_eager(&m, &Device::cpu(), &session).unwrap();
        let top: Vec<u32> = r.items.iter().take(10).copied().collect();
        assert!(
            session.iter().any(|s| top.contains(s)),
            "none of {session:?} in top-10 {top:?}"
        );
    }

    #[test]
    fn temperature_rescales_scores() {
        let m = model();
        let r = recommend_eager(&m, &Device::cpu(), &[4]).unwrap();
        // Scores are divided by 0.07, so magnitudes are large relative to
        // raw inner products of unit-ish embeddings.
        assert!(r.scores[0].abs() > 0.05);
    }
}
