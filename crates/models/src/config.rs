//! Model configuration and the paper's hyperparameter heuristics.

/// Configuration shared by all ten SBR models.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Catalog size `C` — the dominant factor of inference latency.
    pub catalog_size: usize,
    /// Sessions are padded/truncated to this length (RecBole behaviour).
    pub max_session_len: usize,
    /// Number of recommendations to return (`k`).
    pub top_k: usize,
    /// Embedding dimension `d`. Defaults to the paper's heuristic
    /// `ceil(C^(1/4))` (see [`embedding_dim_for`]).
    pub embedding_dim: usize,
    /// Hidden size of recurrent/GNN blocks (defaults to `embedding_dim`).
    pub hidden_size: usize,
    /// Number of stacked layers (transformer blocks, GRU layers, GGNN steps).
    pub num_layers: usize,
    /// Attention heads for the transformer models.
    pub num_heads: usize,
    /// Emulate the buggy RecBole implementations the paper measured.
    pub recbole_quirks: bool,
    /// Materialise weights. When `false`, weights are phantom tensors —
    /// only usable for cost-only execution, but free of the multi-gigabyte
    /// embedding tables that 10–20M-item catalogs would require.
    pub materialize_weights: bool,
    /// Seed for deterministic random initialisation.
    pub seed: u64,
}

/// The paper's embedding-size heuristic: "rounding up the fourth root of
/// the catalog size C" (Section III, citing the TensorFlow feature-columns
/// guidance).
pub fn embedding_dim_for(catalog_size: usize) -> usize {
    (catalog_size as f64).powf(0.25).ceil() as usize
}

impl ModelConfig {
    /// A configuration for catalog size `c` with all paper defaults.
    pub fn new(catalog_size: usize) -> ModelConfig {
        let d = embedding_dim_for(catalog_size);
        ModelConfig {
            catalog_size,
            max_session_len: 50,
            top_k: 21,
            embedding_dim: d,
            hidden_size: d,
            num_layers: 1,
            num_heads: 1,
            recbole_quirks: true,
            materialize_weights: true,
            seed: 42,
        }
    }

    /// Overrides the padded session length.
    pub fn with_max_session_len(mut self, l: usize) -> Self {
        self.max_session_len = l;
        self
    }

    /// Overrides the number of returned recommendations.
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.top_k = k;
        self
    }

    /// Overrides the embedding dimension (and hidden size, when they were
    /// equal before).
    pub fn with_embedding_dim(mut self, d: usize) -> Self {
        if self.hidden_size == self.embedding_dim {
            self.hidden_size = d;
        }
        self.embedding_dim = d;
        self
    }

    /// Enables or disables the RecBole quirk emulation.
    pub fn with_quirks(mut self, quirks: bool) -> Self {
        self.recbole_quirks = quirks;
        self
    }

    /// Overrides the initialisation seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the number of stacked layers.
    pub fn with_num_layers(mut self, n: usize) -> Self {
        self.num_layers = n.max(1);
        self
    }

    /// Overrides the number of attention heads. Must divide the embedding
    /// dimension to take effect; callers should pick compatible values.
    pub fn with_num_heads(mut self, n: usize) -> Self {
        self.num_heads = n.max(1);
        self
    }

    /// Switches to phantom (cost-only) weights.
    pub fn without_weights(mut self) -> Self {
        self.materialize_weights = false;
        self
    }

    /// Size in bytes of the item embedding table (`4 * C * d`).
    pub fn embedding_table_bytes(&self) -> u64 {
        4 * self.catalog_size as u64 * self.embedding_dim as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristic_matches_paper_catalog_sizes() {
        // Fourth roots: 1e4 -> 10, 1e5 -> 18, 1e6 -> 32, 1e7 -> 57,
        // 2e7 -> 67.
        assert_eq!(embedding_dim_for(10_000), 10);
        assert_eq!(embedding_dim_for(100_000), 18);
        assert_eq!(embedding_dim_for(1_000_000), 32);
        assert_eq!(embedding_dim_for(10_000_000), 57);
        assert_eq!(embedding_dim_for(20_000_000), 67);
    }

    #[test]
    fn defaults_follow_the_heuristic() {
        let cfg = ModelConfig::new(1_000_000);
        assert_eq!(cfg.embedding_dim, 32);
        assert_eq!(cfg.hidden_size, 32);
        assert!(cfg.recbole_quirks);
        assert_eq!(cfg.top_k, 21);
    }

    #[test]
    fn with_embedding_dim_keeps_hidden_in_sync() {
        let cfg = ModelConfig::new(10_000).with_embedding_dim(16);
        assert_eq!(cfg.hidden_size, 16);
    }

    #[test]
    fn embedding_table_bytes_scale() {
        let cfg = ModelConfig::new(10_000_000);
        // 10M * 57 * 4 ≈ 2.28 GB
        assert_eq!(cfg.embedding_table_bytes(), 4 * 10_000_000 * 57);
    }

    #[test]
    fn without_weights_flips_materialisation() {
        assert!(!ModelConfig::new(10).without_weights().materialize_weights);
    }
}
