//! GRU4Rec (Tan et al., 2016): stacked GRU layers over item embeddings.
//!
//! Inference path (after RecBole's `GRU4Rec.full_sort_predict`):
//! embed the padded session, run the GRU stack, project the hidden state
//! at the last valid position through a dense layer, then score the full
//! catalog.

use crate::common::{
    self, decode, embedding_table, gather_last, gru_sequence, linear_vec, weight, GruWeights,
};
use crate::config::ModelConfig;
use crate::traits::SbrModel;
use etude_tensor::rng::Initializer;
use etude_tensor::{Exec, Param, SessionInput, TRef, TensorError};

/// The GRU4Rec model.
pub struct Gru4Rec {
    cfg: ModelConfig,
    embedding: Param,
    layers: Vec<GruWeights>,
    dense: Param,
    dense_bias: Param,
}

impl Gru4Rec {
    /// Builds the model with randomly initialised weights.
    pub fn new(cfg: ModelConfig) -> Gru4Rec {
        let mut init = Initializer::new(cfg.seed).child("gru4rec");
        let embedding = embedding_table(&mut init, &cfg);
        let mut layers = Vec::with_capacity(cfg.num_layers);
        for i in 0..cfg.num_layers {
            let input = if i == 0 {
                cfg.embedding_dim
            } else {
                cfg.hidden_size
            };
            layers.push(GruWeights::new(&mut init, &cfg, input, cfg.hidden_size));
        }
        let dense = weight(&mut init, &cfg, &[cfg.hidden_size, cfg.embedding_dim]);
        let dense_bias = common::bias(&cfg, cfg.embedding_dim);
        Gru4Rec {
            cfg,
            embedding,
            layers,
            dense,
            dense_bias,
        }
    }
}

impl SbrModel for Gru4Rec {
    fn name(&self) -> &'static str {
        "gru4rec"
    }

    fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    fn forward(&self, exec: &mut Exec, input: SessionInput) -> Result<TRef, TensorError> {
        let table = exec.param(&self.embedding)?;
        let mut x = exec.embedding(table, input.items)?; // [l, d]
        for layer in &self.layers {
            x = gru_sequence(exec, x, layer, self.cfg.hidden_size)?; // [l, h]
        }
        let h_last = gather_last(exec, x, input.last)?; // [h]
        let s = linear_vec(exec, h_last, &self.dense, Some(&self.dense_bias))?; // [d]
        decode(exec, &self.embedding, s, &self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::recommend_eager;
    use etude_tensor::Device;

    fn model() -> Gru4Rec {
        Gru4Rec::new(ModelConfig::new(50).with_max_session_len(5).with_seed(1))
    }

    #[test]
    fn produces_k_recommendations() {
        let m = model();
        let r = recommend_eager(&m, &Device::cpu(), &[1, 2, 3]).unwrap();
        assert_eq!(r.items.len(), m.cfg.top_k);
    }

    #[test]
    fn last_item_position_matters() {
        // Sessions differing only in their last item should encode
        // differently because the hidden state is gathered at `last`.
        let m = model();
        let a = recommend_eager(&m, &Device::cpu(), &[1, 2, 3]).unwrap();
        let b = recommend_eager(&m, &Device::cpu(), &[1, 2, 48]).unwrap();
        assert_ne!(a.scores, b.scores);
    }

    #[test]
    fn stacked_layers_increase_cost() {
        let base = model();
        let deep = Gru4Rec::new(
            ModelConfig::new(50)
                .with_max_session_len(5)
                .with_num_layers(2)
                .with_seed(1),
        );
        let c1 =
            crate::traits::forward_cost(&base, &Device::cpu(), etude_tensor::ExecMode::Real, 3)
                .unwrap();
        let c2 =
            crate::traits::forward_cost(&deep, &Device::cpu(), etude_tensor::ExecMode::Real, 3)
                .unwrap();
        assert!(c2.flops > c1.flops);
    }
}
