//! # etude-models
//!
//! The ten session-based recommendation models evaluated by the ETUDE
//! paper (ICDE 2024), implemented from scratch on [`etude_tensor`]:
//!
//! * recursive: **GRU4Rec**, **RepeatNet**
//! * graph neural networks: **SR-GNN**, **GC-SAN**
//! * attention: **NARM**, **SINE**, **STAMP**
//! * transformers: **LightSANs**, **CORE**, **SASRec**
//!
//! Each model implements [`SbrModel::forward`] once; the same code runs
//! eagerly, in cost-only mode, and under tracing for JIT compilation.
//! All models share the inference skeleton the paper analyses: a session
//! encoder producing a `d`-dimensional representation, followed by a
//! maximum-inner-product search over the `C`-item catalog — hence the
//! common `O(C (d + log k))` asymptotic inference complexity.
//!
//! ## RecBole implementation quirks
//!
//! The paper root-causes severe performance bugs in four RecBole model
//! implementations. With [`ModelConfig::recbole_quirks`] enabled (the
//! default, matching what the paper measured), the reproductions exhibit
//! the same pathologies:
//!
//! * **RepeatNet** materialises sparse session/catalog interactions as
//!   dense catalog-wide matrices,
//! * **SR-GNN** / **GC-SAN** build their session graphs in host-side
//!   (NumPy) code inside the inference path, forcing host/device
//!   round-trips per request,
//! * **LightSANs** branches on runtime data, defeating JIT tracing.
//!
//! Setting `recbole_quirks = false` selects repaired implementations,
//! enabling the ablation study of the bug reports the authors filed.

pub mod common;
pub mod config;
pub mod core_model;
pub mod gcsan;
pub mod gru4rec;
pub mod lightsans;
pub mod narm;
pub mod repeatnet;
pub mod retrieval;
pub mod sasrec;
pub mod serdes;
pub mod sine;
pub mod srgnn;
pub mod stamp;
pub mod traits;

pub use config::ModelConfig;
pub use traits::{ModelKind, Recommendation, SbrModel, StageTimings};
