//! RepeatNet (Ren et al., AAAI 2019): repeat-aware recommendation with an
//! encoder-decoder architecture and a repeat/explore mode switch.
//!
//! A GRU encodes the session; a small gate predicts whether the user will
//! *repeat* (click an item already in the session) or *explore* (a new
//! item). The repeat decoder scores session positions; the explore decoder
//! scores the full catalog; the final distribution mixes both.
//!
//! **Quirk (paper, Section III-C):** the RecBole implementation "contains
//! expensive tensor multiplications of very sparse matrices which are
//! implemented with dense operations and representations". With
//! [`ModelConfig::recbole_quirks`] enabled, the repeat distribution is
//! mapped onto the catalog through a *dense one-hot `[l, C]` matrix
//! product* plus full-catalog mixing passes — `O(l·C)` traffic per
//! request. The repaired variant scatter-adds the `l` repeat scores
//! directly (`O(C)` once) before top-k.

use crate::common::{
    self, catalog_scores, gather_last, gru_sequence, linear, linear_vec, masked_softmax, weight,
    weighted_sum, GruWeights,
};
use crate::config::ModelConfig;
use crate::traits::SbrModel;
use etude_tensor::kernels::BinOp;
use etude_tensor::rng::Initializer;
use etude_tensor::{Exec, Param, SessionInput, TRef, TensorError};

/// The RepeatNet model.
pub struct RepeatNet {
    cfg: ModelConfig,
    embedding: Param,
    gru: GruWeights,
    /// Repeat-attention projections.
    rep_w1: Param,
    rep_w2: Param,
    rep_v: Param,
    /// Explore-attention projections.
    exp_w1: Param,
    exp_w2: Param,
    exp_v: Param,
    /// Mode gate `[2d, 2]` over [repeat, explore].
    mode: Param,
}

impl RepeatNet {
    /// Builds the model with randomly initialised weights.
    pub fn new(cfg: ModelConfig) -> RepeatNet {
        let mut init = Initializer::new(cfg.seed).child("repeatnet");
        let d = cfg.embedding_dim;
        let h = cfg.hidden_size;
        RepeatNet {
            embedding: common::embedding_table(&mut init, &cfg),
            gru: GruWeights::new(&mut init, &cfg, d, h),
            rep_w1: weight(&mut init, &cfg, &[h, h]),
            rep_w2: weight(&mut init, &cfg, &[h, h]),
            rep_v: weight(&mut init, &cfg, &[h, 1]),
            exp_w1: weight(&mut init, &cfg, &[h, h]),
            exp_w2: weight(&mut init, &cfg, &[h, h]),
            exp_v: weight(&mut init, &cfg, &[h, 1]),
            mode: weight(&mut init, &cfg, &[2 * h, 2]),
            cfg,
        }
    }

    /// Additive attention producing `[l]` weights over hidden states.
    #[allow(clippy::too_many_arguments)]
    fn attention(
        &self,
        exec: &mut Exec,
        hs: TRef,
        h_last: TRef,
        mask: TRef,
        w1: &Param,
        w2: &Param,
        v: &Param,
    ) -> Result<TRef, TensorError> {
        let l = self.cfg.max_session_len;
        let q = linear_vec(exec, h_last, w1, None)?;
        let keys = linear(exec, hs, w2, None)?;
        let shifted = exec.binary_row(BinOp::Add, keys, q)?;
        let act = exec.tanh(shifted)?;
        let v_ref = exec.param(v)?;
        let e = exec.matmul(act, v_ref)?;
        let e = exec.reshape(e, &[l])?;
        masked_softmax(exec, e, mask)
    }
}

impl SbrModel for RepeatNet {
    fn name(&self) -> &'static str {
        "repeatnet"
    }

    fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    fn forward(&self, exec: &mut Exec, input: SessionInput) -> Result<TRef, TensorError> {
        let c = self.cfg.catalog_size;
        let table = exec.param(&self.embedding)?;
        let x = exec.embedding(table, input.items)?;
        let hs = gru_sequence(exec, x, &self.gru, self.cfg.hidden_size)?;
        let h_last = gather_last(exec, hs, input.last)?;

        // Repeat decoder: a distribution over session positions.
        let rep_alpha = self.attention(
            exec,
            hs,
            h_last,
            input.mask,
            &self.rep_w1,
            &self.rep_w2,
            &self.rep_v,
        )?; // [l]

        // Explore decoder: context vector -> full catalog scores.
        let exp_alpha = self.attention(
            exec,
            hs,
            h_last,
            input.mask,
            &self.exp_w1,
            &self.exp_w2,
            &self.exp_v,
        )?;
        let c_ex = weighted_sum(exec, exp_alpha, hs)?; // [h]
        let explore_scores = catalog_scores(exec, &self.embedding, c_ex, &self.cfg)?; // [C]
        let explore_probs = exec.softmax(explore_scores)?; // [C]

        // Mode gate P(repeat), P(explore) from [c_ex ; h_last].
        let gate_in = exec.concat(c_ex, h_last)?; // [2h]
        let gate_logits = linear_vec(exec, gate_in, &self.mode, None)?; // [2]
        let gate = exec.softmax(gate_logits)?; // [2]
        let gate_row = exec.reshape(gate, &[1, 2])?;
        let p_repeat = exec.slice_cols(gate_row, 0, 1)?; // [1, 1]
        let p_repeat = exec.reshape(p_repeat, &[1])?;
        let p_explore = exec.slice_cols(gate_row, 1, 2)?;
        let p_explore = exec.reshape(p_explore, &[1])?;

        let final_scores = if self.cfg.recbole_quirks {
            // RecBole path: materialise the sparse position->item map as a
            // dense [l, C] one-hot matrix and mix with full-catalog dense
            // arithmetic. O(l*C) memory traffic per request.
            let l = self.cfg.max_session_len;
            let onehot = exec.one_hot_rows(input.items, c)?; // [l, C] dense
            let alpha_row = exec.reshape(rep_alpha, &[1, l])?;
            let repeat_dense = exec.matmul(alpha_row, onehot)?; // [1, C]
            let repeat_dense = exec.reshape(repeat_dense, &[c])?;
            let rep_scaled = common::scale_by_scalar_tensor(exec, repeat_dense, p_repeat)?;
            let exp_scaled = common::scale_by_scalar_tensor(exec, explore_probs, p_explore)?;
            exec.add(rep_scaled, exp_scaled)?
        } else {
            // Repaired path: scatter the l repeat scores straight into the
            // catalog vector (one O(C) write) and fold the explore gate
            // into the scores before a single mixing add.
            let rep_scaled_l = common::scale_by_scalar_tensor(exec, rep_alpha, p_repeat)?;
            let repeat_sparse = exec.scatter_add_dense(input.items, rep_scaled_l, c)?; // [C]
            let exp_scaled = common::scale_by_scalar_tensor(exec, explore_probs, p_explore)?;
            exec.add(repeat_sparse, exp_scaled)?
        };
        exec.topk(final_scores, self.cfg.top_k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{forward_cost, recommend_eager};
    use etude_tensor::{Device, ExecMode};

    fn cfg() -> ModelConfig {
        ModelConfig::new(120).with_max_session_len(6).with_seed(17)
    }

    #[test]
    fn recommends_k_items() {
        let m = RepeatNet::new(cfg());
        let r = recommend_eager(&m, &Device::cpu(), &[4, 9, 4]).unwrap();
        assert_eq!(r.items.len(), m.cfg.top_k);
    }

    #[test]
    fn repeat_mechanism_boosts_session_items() {
        // The mixed distribution includes mass scattered onto session
        // items; with softmaxed explore probs (≈1/C each) a session item
        // receiving repeat mass should appear in the top-k.
        let m = RepeatNet::new(cfg());
        let session = [42u32, 17, 99];
        let r = recommend_eager(&m, &Device::cpu(), &session).unwrap();
        assert!(
            session.iter().any(|s| r.items.contains(s)),
            "no session item in {:?}",
            r.items
        );
    }

    #[test]
    fn quirky_path_moves_catalog_scale_more_bytes() {
        // At realistic catalog scale the dense [l, C] one-hot product
        // dominates traffic; measured in cost-only mode so no multi-GB
        // buffers are allocated.
        let big = ModelConfig::new(1_000_000).without_weights().with_seed(17);
        let quirky = RepeatNet::new(big.clone());
        let fixed = RepeatNet::new(big.with_quirks(false));
        let cq = forward_cost(&quirky, &Device::cpu(), ExecMode::CostOnly, 4).unwrap();
        let cf = forward_cost(&fixed, &Device::cpu(), ExecMode::CostOnly, 4).unwrap();
        assert!(
            cq.bytes > 2.0 * cf.bytes,
            "quirk {} vs fixed {}",
            cq.bytes,
            cf.bytes
        );
    }

    #[test]
    fn quirky_and_fixed_agree_on_rankings() {
        // The repair must not change semantics, only cost.
        let quirky = RepeatNet::new(cfg());
        let fixed = RepeatNet::new(cfg().with_quirks(false));
        let rq = recommend_eager(&quirky, &Device::cpu(), &[3, 7, 11]).unwrap();
        let rf = recommend_eager(&fixed, &Device::cpu(), &[3, 7, 11]).unwrap();
        assert_eq!(rq.items, rf.items);
    }
}
