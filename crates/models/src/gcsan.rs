//! GC-SAN (Xu et al., IJCAI 2019): graph-contextualised self-attention.
//!
//! A GGNN (as in SR-GNN) computes local, graph-contextual item states;
//! a self-attention stack then captures global dependencies; the final
//! representation interpolates between the attention output and the GGNN
//! state of the last click: `s = ω · h_sa + (1 - ω) · h_gnn`.
//!
//! Shares SR-GNN's RecBole quirk: adjacency construction happens in
//! host-side NumPy during inference, costing device round-trips.

use crate::common::{self, causal_mask, decode, gather_last, TransformerBlock};
use crate::config::ModelConfig;
use crate::srgnn::{session_adjacency, GgnnWeights};
use crate::traits::SbrModel;
use etude_tensor::kernels::BinOp;
use etude_tensor::rng::Initializer;
use etude_tensor::{Exec, Param, SessionInput, TRef, TensorError};

/// Interpolation weight ω between attention and GGNN representations.
const OMEGA: f32 = 0.6;

/// The GC-SAN model.
pub struct GcSan {
    cfg: ModelConfig,
    embedding: Param,
    ggnn: GgnnWeights,
    blocks: Vec<TransformerBlock>,
    causal: Param,
}

impl GcSan {
    /// Builds the model with randomly initialised weights.
    pub fn new(cfg: ModelConfig) -> GcSan {
        let mut init = Initializer::new(cfg.seed).child("gcsan");
        let blocks = (0..cfg.num_layers)
            .map(|_| TransformerBlock::new(&mut init, &cfg))
            .collect();
        GcSan {
            embedding: common::embedding_table(&mut init, &cfg),
            ggnn: GgnnWeights::new(&mut init, &cfg),
            blocks,
            causal: causal_mask(&cfg),
            cfg,
        }
    }
}

impl SbrModel for GcSan {
    fn name(&self) -> &'static str {
        "gcsan"
    }

    fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    fn forward(&self, exec: &mut Exec, input: SessionInput) -> Result<TRef, TensorError> {
        let table = exec.param(&self.embedding)?;
        let mut h = exec.embedding(table, input.items)?; // [l, d]
        let (a_in, a_out) = session_adjacency(exec, input, self.cfg.recbole_quirks)?;
        h = self.ggnn.step(exec, h, a_in, a_out)?;
        let h_gnn_last = gather_last(exec, h, input.last)?; // [d]

        let mut x = h;
        for block in &self.blocks {
            x = block.forward(
                exec,
                x,
                self.cfg.num_heads,
                Some(&self.causal),
                Some(input.mask),
            )?;
        }
        let h_sa_last = gather_last(exec, x, input.last)?; // [d]

        // s = ω · h_sa + (1 - ω) · h_gnn
        let a = exec.scalar(BinOp::Mul, h_sa_last, OMEGA)?;
        let b = exec.scalar(BinOp::Mul, h_gnn_last, 1.0 - OMEGA)?;
        let s = exec.add(a, b)?;
        decode(exec, &self.embedding, s, &self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{forward_cost, recommend_eager};
    use etude_tensor::{Device, ExecMode};

    fn cfg() -> ModelConfig {
        ModelConfig::new(64)
            .with_max_session_len(6)
            .with_embedding_dim(8)
            .with_seed(31)
    }

    #[test]
    fn recommends_k_items() {
        let m = GcSan::new(cfg());
        let r = recommend_eager(&m, &Device::cpu(), &[1, 2, 3]).unwrap();
        assert_eq!(r.items.len(), m.cfg.top_k);
    }

    #[test]
    fn inherits_the_srgnn_host_quirk() {
        let quirky = GcSan::new(cfg());
        let cq = forward_cost(&quirky, &Device::a100(), ExecMode::Real, 3).unwrap();
        assert!(cq.transfers > 0);
        let fixed = GcSan::new(cfg().with_quirks(false));
        let cf = forward_cost(&fixed, &Device::a100(), ExecMode::Real, 3).unwrap();
        assert_eq!(cf.transfers, 0);
    }

    #[test]
    fn combines_graph_and_attention_branches() {
        // Both branches must influence the result: zeroing ω-weight side
        // is not possible from outside, but different orders change the
        // graph branch while attention sees the same last item.
        let m = GcSan::new(cfg());
        let a = recommend_eager(&m, &Device::cpu(), &[1, 2, 5]).unwrap();
        let b = recommend_eager(&m, &Device::cpu(), &[2, 1, 5]).unwrap();
        assert_ne!(a.scores, b.scores);
    }
}
