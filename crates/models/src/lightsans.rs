//! LightSANs (Fan et al., SIGIR 2021): low-rank decomposed self-attention.
//!
//! Instead of the `[l, l]` attention of a vanilla transformer, LightSANs
//! pools keys and values onto `k_interests` latent interests
//! (`[l, k]`-shaped attention), plus a decoupled position encoding.
//!
//! **Quirk (paper, Section III-B):** the RecBole implementation "cannot be
//! JIT-optimised by PyTorch due to dynamic code paths". With
//! [`ModelConfig::recbole_quirks`] enabled, this reproduction inspects a
//! runtime scalar (the pooled interest intensity) to pick between two
//! execution branches, which poisons tracing exactly the same way. The
//! repaired variant (`recbole_quirks = false`) always takes the static
//! branch and traces cleanly.

use crate::common::{
    self, decode, gather_last, linear, positional_table, weight, FfnWeights, LayerNormWeights,
};
use crate::config::ModelConfig;
use crate::traits::SbrModel;
use etude_tensor::kernels::BinOp;
use etude_tensor::rng::Initializer;
use etude_tensor::{Exec, Param, SessionInput, TRef, TensorError};

/// Number of latent interests the keys/values are pooled onto.
const K_INTERESTS: usize = 4;

/// The LightSANs model.
pub struct LightSans {
    cfg: ModelConfig,
    embedding: Param,
    positions: Param,
    layers: Vec<LightSansLayer>,
    final_ln: LayerNormWeights,
}

struct LightSansLayer {
    wq: Param,
    wk: Param,
    wv: Param,
    /// Low-rank interest pooling `[d, K_INTERESTS]`.
    pool: Param,
    wo: Param,
    ffn: FfnWeights,
    ln1: LayerNormWeights,
    ln2: LayerNormWeights,
}

impl LightSansLayer {
    fn new(init: &mut Initializer, cfg: &ModelConfig) -> LightSansLayer {
        let d = cfg.embedding_dim;
        LightSansLayer {
            wq: weight(init, cfg, &[d, d]),
            wk: weight(init, cfg, &[d, d]),
            wv: weight(init, cfg, &[d, d]),
            pool: weight(init, cfg, &[d, K_INTERESTS]),
            wo: weight(init, cfg, &[d, d]),
            ffn: FfnWeights::new(init, cfg),
            ln1: LayerNormWeights::new(cfg, d),
            ln2: LayerNormWeights::new(cfg, d),
        }
    }

    /// Low-rank attention: queries attend over `K_INTERESTS` pooled
    /// interests instead of all `l` positions — `O(l·k·d)` not `O(l²·d)`.
    fn forward(&self, exec: &mut Exec, x: TRef, cfg: &ModelConfig) -> Result<TRef, TensorError> {
        let d = cfg.embedding_dim;
        let n = common::layer_norm(exec, x, &self.ln1)?;
        let q = linear(exec, n, &self.wq, None)?; // [l, d]
        let k = linear(exec, n, &self.wk, None)?; // [l, d]
        let v = linear(exec, n, &self.wv, None)?; // [l, d]

        // Interest pooling: P = softmax_rows((K · pool)^T) ∈ [k, l].
        let affinity = linear(exec, k, &self.pool, None)?; // [l, k]
        let affinity_t = exec.transpose(affinity)?; // [k, l]
        let pool_w = exec.softmax(affinity_t)?; // [k, l] row-softmax over l
        let k_pooled = exec.matmul(pool_w, k)?; // [k, d]
        let v_pooled = exec.matmul(pool_w, v)?; // [k, d]

        // Attention of queries over the pooled interests.
        let k_t = exec.transpose(k_pooled)?; // [d, k]
        let logits = exec.matmul(q, k_t)?; // [l, k]
        let logits = exec.scalar(BinOp::Mul, logits, 1.0 / (d as f32).sqrt())?;
        let attn = exec.softmax(logits)?;
        let ctx = exec.matmul(attn, v_pooled)?; // [l, d]
        let ctx = linear(exec, ctx, &self.wo, None)?;
        let x = exec.add(x, ctx)?;
        let n = common::layer_norm(exec, x, &self.ln2)?;
        let f = common::feed_forward(exec, n, &self.ffn)?;
        exec.add(x, f)
    }
}

impl LightSans {
    /// Builds the model with randomly initialised weights.
    pub fn new(cfg: ModelConfig) -> LightSans {
        let mut init = Initializer::new(cfg.seed).child("lightsans");
        let layers = (0..cfg.num_layers)
            .map(|_| LightSansLayer::new(&mut init, &cfg))
            .collect();
        LightSans {
            embedding: common::embedding_table(&mut init, &cfg),
            positions: positional_table(&mut init, &cfg),
            layers,
            final_ln: LayerNormWeights::new(&cfg, cfg.embedding_dim),
            cfg,
        }
    }
}

impl SbrModel for LightSans {
    fn name(&self) -> &'static str {
        "lightsans"
    }

    fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    fn forward(&self, exec: &mut Exec, input: SessionInput) -> Result<TRef, TensorError> {
        let table = exec.param(&self.embedding)?;
        let x = exec.embedding(table, input.items)?;
        let pos = exec.param(&self.positions)?;
        let mut x = exec.add(x, pos)?;
        for layer in &self.layers {
            if self.cfg.recbole_quirks {
                // The RecBole implementation branches on runtime data
                // inside the forward pass. Reading a tensor element is
                // data-dependent control flow: it works eagerly but
                // fails tracing with `DynamicControlFlow`, matching the
                // paper's JIT failure for LightSANs.
                let probe = exec.sum_rows(x)?;
                let intensity = exec.item(probe, 0)?;
                x = if intensity.abs() < f32::MAX {
                    layer.forward(exec, x, &self.cfg)?
                } else {
                    // Unreachable fallback branch kept for fidelity: the
                    // dynamic check is the point, not the alternative.
                    common::layer_norm(exec, x, &self.final_ln)?
                };
            } else {
                x = layer.forward(exec, x, &self.cfg)?;
            }
        }
        let x = common::layer_norm(exec, x, &self.final_ln)?;
        let s = gather_last(exec, x, input.last)?;
        decode(exec, &self.embedding, s, &self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{compile, recommend_eager};
    use etude_tensor::{Device, JitError};

    fn cfg() -> ModelConfig {
        ModelConfig::new(64)
            .with_max_session_len(6)
            .with_embedding_dim(8)
            .with_seed(12)
    }

    #[test]
    fn recommends_k_items_eagerly_despite_quirk() {
        let m = LightSans::new(cfg());
        let r = recommend_eager(&m, &Device::cpu(), &[1, 2, 3]).unwrap();
        assert_eq!(r.items.len(), m.cfg.top_k);
    }

    #[test]
    fn quirky_variant_refuses_jit() {
        let m = LightSans::new(cfg());
        match compile(&m, Default::default()) {
            Err(JitError::DynamicControlFlow(_)) => {}
            other => panic!("expected DynamicControlFlow, got {other:?}"),
        }
    }

    #[test]
    fn fixed_variant_compiles_and_matches_eager() {
        let m = LightSans::new(cfg().with_quirks(false));
        let compiled = compile(&m, Default::default()).unwrap();
        let eager = recommend_eager(&m, &Device::cpu(), &[4, 5]).unwrap();
        let jit = crate::traits::recommend_compiled(&m, &compiled, &[4, 5]).unwrap();
        assert_eq!(eager.items, jit.items);
    }

    #[test]
    fn low_rank_attention_is_cheaper_than_full_attention() {
        // LightSANs' selling point: [l,k] attention instead of [l,l].
        let ls = LightSans::new(cfg().with_quirks(false).with_max_session_len(50));
        let sas = crate::sasrec::SasRec::new(
            ModelConfig::new(64)
                .with_max_session_len(50)
                .with_embedding_dim(8)
                .with_seed(12),
        );
        let cl = crate::traits::forward_cost(&ls, &Device::cpu(), etude_tensor::ExecMode::Real, 20)
            .unwrap();
        let cs =
            crate::traits::forward_cost(&sas, &Device::cpu(), etude_tensor::ExecMode::Real, 20)
                .unwrap();
        // Compare encoder flops by subtracting the (identical) decode.
        assert!(cl.flops < cs.flops);
    }
}
