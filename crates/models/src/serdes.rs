//! Model weight serialisation.
//!
//! The paper's inference server "can deploy serialised PyTorch models
//! from Google storage buckets". This module provides the equivalent for
//! this runtime: a compact binary container for a model's configuration
//! and weight tensors, written and parsed without external dependencies.
//!
//! ## Format (`ETUD` v1, little-endian)
//!
//! ```text
//! magic  "ETUD"            4 bytes
//! version u32              currently 1
//! model name               u32 length + utf-8 bytes
//! config                   7 x u64 (catalog, max_len, top_k, d, hidden,
//!                          layers, heads) + u8 quirks + u64 seed
//! tensor count u32
//! per tensor: name (u32 + bytes), rank u32, dims (u64 each),
//!             data (f32 little-endian)
//! ```
//!
//! Weights are keyed by name, so loading checks completeness and shapes.

use crate::config::ModelConfig;
use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"ETUD";
const VERSION: u32 = 1;

/// Errors from reading a serialised model.
#[derive(Debug)]
pub enum SerdesError {
    /// Transport failure.
    Io(io::Error),
    /// Not an `ETUD` container or an unsupported version.
    BadFormat(&'static str),
}

impl fmt::Display for SerdesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SerdesError::Io(e) => write!(f, "io error: {e}"),
            SerdesError::BadFormat(why) => write!(f, "bad model file: {why}"),
        }
    }
}

impl std::error::Error for SerdesError {}

impl From<io::Error> for SerdesError {
    fn from(e: io::Error) -> Self {
        SerdesError::Io(e)
    }
}

/// A serialised model: configuration plus named weight tensors.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelBundle {
    /// Model kind name (e.g. `"gru4rec"`).
    pub model: String,
    /// The configuration the weights were created for.
    pub config: ModelConfig,
    /// Named weights: `(shape, row-major data)`.
    pub tensors: BTreeMap<String, (Vec<usize>, Vec<f32>)>,
}

impl ModelBundle {
    /// Creates an empty bundle for a model/config pair.
    pub fn new(model: &str, config: ModelConfig) -> ModelBundle {
        ModelBundle {
            model: model.to_string(),
            config,
            tensors: BTreeMap::new(),
        }
    }

    /// Adds a named tensor.
    pub fn add(&mut self, name: &str, shape: &[usize], data: Vec<f32>) {
        self.tensors
            .insert(name.to_string(), (shape.to_vec(), data));
    }

    /// Total serialised payload size in bytes (approximate container
    /// size; what a pod downloads from the bucket).
    pub fn payload_bytes(&self) -> u64 {
        self.tensors
            .values()
            .map(|(_, d)| 4 * d.len() as u64)
            .sum::<u64>()
    }

    /// Writes the container to any sink.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        write_string(w, &self.model)?;
        let c = &self.config;
        for v in [
            c.catalog_size as u64,
            c.max_session_len as u64,
            c.top_k as u64,
            c.embedding_dim as u64,
            c.hidden_size as u64,
            c.num_layers as u64,
            c.num_heads as u64,
        ] {
            w.write_all(&v.to_le_bytes())?;
        }
        w.write_all(&[u8::from(c.recbole_quirks)])?;
        w.write_all(&c.seed.to_le_bytes())?;
        w.write_all(&(self.tensors.len() as u32).to_le_bytes())?;
        for (name, (shape, data)) in &self.tensors {
            write_string(w, name)?;
            w.write_all(&(shape.len() as u32).to_le_bytes())?;
            for &d in shape {
                w.write_all(&(d as u64).to_le_bytes())?;
            }
            for &x in data {
                w.write_all(&x.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Reads a container from any source.
    pub fn read_from<R: Read>(r: &mut R) -> Result<ModelBundle, SerdesError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(SerdesError::BadFormat("magic mismatch"));
        }
        if read_u32(r)? != VERSION {
            return Err(SerdesError::BadFormat("unsupported version"));
        }
        let model = read_string(r)?;
        let catalog_size = read_u64(r)? as usize;
        let max_session_len = read_u64(r)? as usize;
        let top_k = read_u64(r)? as usize;
        let embedding_dim = read_u64(r)? as usize;
        let hidden_size = read_u64(r)? as usize;
        let num_layers = read_u64(r)? as usize;
        let num_heads = read_u64(r)? as usize;
        let mut flag = [0u8; 1];
        r.read_exact(&mut flag)?;
        let mut seed_bytes = [0u8; 8];
        r.read_exact(&mut seed_bytes)?;
        let config = ModelConfig {
            catalog_size,
            max_session_len,
            top_k,
            embedding_dim,
            hidden_size,
            num_layers,
            num_heads,
            recbole_quirks: flag[0] != 0,
            materialize_weights: true,
            seed: u64::from_le_bytes(seed_bytes),
        };
        let count = read_u32(r)? as usize;
        if count > 100_000 {
            return Err(SerdesError::BadFormat("implausible tensor count"));
        }
        let mut tensors = BTreeMap::new();
        for _ in 0..count {
            let name = read_string(r)?;
            let rank = read_u32(r)? as usize;
            if rank > 8 {
                return Err(SerdesError::BadFormat("implausible tensor rank"));
            }
            let mut shape = Vec::with_capacity(rank);
            for _ in 0..rank {
                shape.push(read_u64(r)? as usize);
            }
            let n: usize = shape.iter().product();
            if n > 2_000_000_000 {
                return Err(SerdesError::BadFormat("implausible tensor size"));
            }
            let mut raw = vec![0u8; 4 * n];
            r.read_exact(&mut raw)?;
            let data = raw
                .chunks_exact(4)
                .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                .collect();
            tensors.insert(name, (shape, data));
        }
        Ok(ModelBundle {
            model,
            config,
            tensors,
        })
    }

    /// Writes the container to a file.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut file = io::BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut file)
    }

    /// Reads a container from a file.
    pub fn load(path: &Path) -> Result<ModelBundle, SerdesError> {
        let mut file = io::BufReader::new(std::fs::File::open(path)?);
        Self::read_from(&mut file)
    }
}

/// Exports a model as a deployable bundle.
///
/// Weight initialisation is deterministic in `(kind, config)`, so the
/// bundle carries the configuration plus the item-embedding table (the
/// artifact whose size dominates what a pod downloads); loading
/// reconstructs the model and verifies the stored table bit-for-bit.
pub fn export_model(kind: crate::ModelKind, cfg: &ModelConfig) -> ModelBundle {
    use etude_tensor::rng::Initializer;
    let mut bundle = ModelBundle::new(kind.name(), cfg.clone());
    if cfg.materialize_weights {
        let mut init = Initializer::new(cfg.seed).child(kind.name());
        let table = crate::common::embedding_table(&mut init, cfg);
        let data = table.value().as_slice().expect("dense table").to_vec();
        bundle.add("item_embedding", table.shape(), data);
    }
    bundle
}

/// Reconstructs a model from a bundle, verifying identity: the model kind
/// must be known and the stored embedding table must match the weights
/// the configuration regenerates.
pub fn load_model(bundle: &ModelBundle) -> Result<Box<dyn crate::SbrModel>, SerdesError> {
    use etude_tensor::rng::Initializer;
    let kind = crate::ModelKind::parse(&bundle.model)
        .ok_or(SerdesError::BadFormat("unknown model kind"))?;
    let model = kind.build(&bundle.config);
    if bundle.config.materialize_weights {
        let (shape, data) = bundle
            .tensors
            .get("item_embedding")
            .ok_or(SerdesError::BadFormat("missing item_embedding tensor"))?;
        let mut init = Initializer::new(bundle.config.seed).child(kind.name());
        let expected = crate::common::embedding_table(&mut init, &bundle.config);
        if shape != expected.shape()
            || expected.value().as_slice().map_err(|_| {
                SerdesError::BadFormat("config demands weights but table is phantom")
            })? != data.as_slice()
        {
            return Err(SerdesError::BadFormat("embedding table mismatch"));
        }
    }
    Ok(model)
}

fn write_string<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    w.write_all(&(s.len() as u32).to_le_bytes())?;
    w.write_all(s.as_bytes())
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, SerdesError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, SerdesError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_string<R: Read>(r: &mut R) -> Result<String, SerdesError> {
    let len = read_u32(r)? as usize;
    if len > 4096 {
        return Err(SerdesError::BadFormat("implausible string length"));
    }
    let mut bytes = vec![0u8; len];
    r.read_exact(&mut bytes)?;
    String::from_utf8(bytes).map_err(|_| SerdesError::BadFormat("non-utf8 string"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bundle() -> ModelBundle {
        let cfg = ModelConfig::new(1_000)
            .with_max_session_len(12)
            .with_seed(9);
        let mut b = ModelBundle::new("gru4rec", cfg);
        b.add("embedding", &[4, 3], vec![0.5; 12]);
        b.add("w_ih", &[6], vec![1.0, -1.0, 2.0, -2.0, 0.0, 3.5]);
        b
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let bundle = sample_bundle();
        let mut buf = Vec::new();
        bundle.write_to(&mut buf).unwrap();
        let loaded = ModelBundle::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(loaded, bundle);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("etude_serdes_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.etud");
        let bundle = sample_bundle();
        bundle.save(&path).unwrap();
        let loaded = ModelBundle::load(&path).unwrap();
        assert_eq!(loaded, bundle);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let mut buf = Vec::new();
        sample_bundle().write_to(&mut buf).unwrap();
        buf[0] = b'X';
        assert!(matches!(
            ModelBundle::read_from(&mut buf.as_slice()),
            Err(SerdesError::BadFormat(_))
        ));
    }

    #[test]
    fn truncated_files_error_cleanly() {
        let mut buf = Vec::new();
        sample_bundle().write_to(&mut buf).unwrap();
        for cut in [3usize, 10, buf.len() / 2, buf.len() - 1] {
            assert!(ModelBundle::read_from(&mut buf[..cut].as_ref()).is_err());
        }
    }

    #[test]
    fn payload_bytes_counts_weights() {
        let bundle = sample_bundle();
        assert_eq!(bundle.payload_bytes(), 4 * (12 + 6));
    }

    #[test]
    fn export_load_roundtrip_preserves_recommendations() {
        use crate::traits::recommend_eager;
        use etude_tensor::Device;
        let cfg = ModelConfig::new(300).with_max_session_len(8).with_seed(31);
        let original = crate::ModelKind::Narm.build(&cfg);
        let bundle = export_model(crate::ModelKind::Narm, &cfg);
        // Through bytes, like a storage-bucket download.
        let mut buf = Vec::new();
        bundle.write_to(&mut buf).unwrap();
        let loaded_bundle = ModelBundle::read_from(&mut buf.as_slice()).unwrap();
        let loaded = load_model(&loaded_bundle).unwrap();
        let a = recommend_eager(original.as_ref(), &Device::cpu(), &[5, 9, 2]).unwrap();
        let b = recommend_eager(loaded.as_ref(), &Device::cpu(), &[5, 9, 2]).unwrap();
        assert_eq!(a.items, b.items);
        assert_eq!(a.scores, b.scores);
    }

    #[test]
    fn tampered_bundles_are_rejected_on_load() {
        let cfg = ModelConfig::new(100).with_max_session_len(6).with_seed(2);
        let mut bundle = export_model(crate::ModelKind::Stamp, &cfg);
        if let Some((_, data)) = bundle.tensors.get_mut("item_embedding") {
            data[0] += 1.0; // corrupt one weight
        }
        assert!(matches!(
            load_model(&bundle),
            Err(SerdesError::BadFormat("embedding table mismatch"))
        ));
    }

    #[test]
    fn unknown_model_kinds_are_rejected() {
        let cfg = ModelConfig::new(50).without_weights();
        let bundle = ModelBundle::new("bert4rec", cfg);
        assert!(matches!(
            load_model(&bundle),
            Err(SerdesError::BadFormat("unknown model kind"))
        ));
    }

    #[test]
    fn export_payload_matches_table_size() {
        let cfg = ModelConfig::new(1_000).with_seed(3);
        let bundle = export_model(crate::ModelKind::Core, &cfg);
        assert_eq!(bundle.payload_bytes(), cfg.embedding_table_bytes());
    }
}
