//! SLO burn-rate acceptance: a seeded fault window must make the
//! monitor fire *inside* the window, attribute the violation to the
//! injected stage, and replay to a bit-identical report.

use etude_cluster::InstanceType;
use etude_core::runner::run_experiment;
use etude_core::spec::ExperimentSpec;
use etude_faults::{FaultKind, FaultPlan};
use etude_models::ModelKind;
use etude_obs::SloCause;
use std::time::Duration;

fn spec() -> ExperimentSpec {
    ExperimentSpec::new(ModelKind::Core, 10_000, InstanceType::CpuE2)
        .with_target_rps(100)
        .with_ramp(Duration::from_secs(15))
}

/// Ticks of the load-test series that recorded at least one error.
fn error_ticks(series: &etude_metrics::TimeSeries) -> Vec<u64> {
    series
        .ticks()
        .iter()
        .enumerate()
        .filter(|(_, t)| t.errors > 0)
        .map(|(i, _)| i as u64)
        .collect()
}

#[test]
fn drop_window_fires_the_slo_and_attributes_to_faults() {
    let faulty = || {
        let plan = FaultPlan::seeded(5).with_window(
            Duration::from_secs(20),
            Duration::from_secs(24),
            FaultKind::Drop { prob: 0.5 },
        );
        run_experiment(&spec().with_faults(plan))
    };
    let a = faulty();
    let report = a.load.slo.expect("runner attaches an SLO report");
    let v = report
        .violation
        .expect("half the window dropping must page");
    assert_eq!(v.cause, SloCause::Faults, "{}", v.describe());

    // The alert fires inside the error window, not at end of run: the
    // violating tick must itself have seen (or sit right on top of)
    // injected errors.
    let bad_ticks = error_ticks(&a.load.series);
    let first = *bad_ticks.first().expect("drops surface as errors");
    let last = *bad_ticks.last().unwrap();
    assert!(
        v.tick >= first && v.tick <= last,
        "violation at t={} outside error window {first}..={last}",
        v.tick
    );

    // Seeded replay: the whole report — burn rates included — is
    // bit-identical, which is what makes the monitor debuggable.
    let b = faulty();
    assert_eq!(a.load.slo, b.load.slo);
    assert_eq!(a.load.attribution, b.load.attribution);
}

#[test]
fn latency_spike_attributes_to_the_network() {
    // A 60 ms one-way spike pushes every round trip far over the 50 ms
    // target without erroring: the budget burns on slow completions and
    // the dominant component over the window is wire time.
    let plan = FaultPlan::seeded(9).with_window(
        Duration::from_secs(20),
        Duration::from_secs(24),
        FaultKind::LatencySpike { extra_us: 60_000 },
    );
    let result = run_experiment(&spec().with_faults(plan));
    let report = result.load.slo.expect("runner attaches an SLO report");
    let v = report.violation.expect("sustained slow window must page");
    assert_eq!(v.cause, SloCause::Network, "{}", v.describe());
    assert!(v.bad > 0);
}

#[test]
fn calm_runs_report_a_quiet_slo() {
    let result = run_experiment(&spec());
    let report = result.load.slo.expect("report attaches even when quiet");
    assert!(
        report.violation.is_none(),
        "calm run paged: {:?}",
        report.violation
    );
    assert_eq!(report.bad, 0, "no request should breach 50 ms unloaded");
    assert!(report.total > 0);
}
