//! The five e-Commerce use-case scenarios of the paper (Table I):
//! grocery shopping (small and large), fashion, e-Commerce and platform.

use crate::spec::ExperimentSpec;
use etude_cluster::InstanceType;
use etude_models::ModelKind;

/// One of the paper's evaluation scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scenario {
    /// Scenario name as printed in Table I.
    pub name: &'static str,
    /// Catalog size `C`.
    pub catalog_size: usize,
    /// Target throughput (requests/second).
    pub target_rps: u64,
}

impl Scenario {
    /// Groceries (small): C = 10,000 at 100 req/s.
    pub const GROCERIES_SMALL: Scenario = Scenario {
        name: "Groceries (small)",
        catalog_size: 10_000,
        target_rps: 100,
    };

    /// Groceries (large): C = 100,000 at 250 req/s.
    pub const GROCERIES_LARGE: Scenario = Scenario {
        name: "Groceries (large)",
        catalog_size: 100_000,
        target_rps: 250,
    };

    /// Fashion: C = 1,000,000 at 500 req/s.
    pub const FASHION: Scenario = Scenario {
        name: "Fashion",
        catalog_size: 1_000_000,
        target_rps: 500,
    };

    /// e-Commerce: C = 10,000,000 at 1,000 req/s.
    pub const ECOMMERCE: Scenario = Scenario {
        name: "e-Commerce",
        catalog_size: 10_000_000,
        target_rps: 1_000,
    };

    /// Platform: C = 20,000,000 at 1,000 req/s.
    pub const PLATFORM: Scenario = Scenario {
        name: "Platform",
        catalog_size: 20_000_000,
        target_rps: 1_000,
    };

    /// All five scenarios in Table I order.
    pub const ALL: [Scenario; 5] = [
        Scenario::GROCERIES_SMALL,
        Scenario::GROCERIES_LARGE,
        Scenario::FASHION,
        Scenario::ECOMMERCE,
        Scenario::PLATFORM,
    ];

    /// The deployment options Table I evaluates for this scenario
    /// (`(instance, replica counts considered)`).
    pub fn deployment_options(&self) -> Vec<(InstanceType, Vec<usize>)> {
        vec![
            (InstanceType::CpuE2, vec![1, 2, 3, 4, 5, 6]),
            (InstanceType::GpuT4, vec![1, 2, 3, 4, 5, 6]),
            (InstanceType::GpuA100, vec![1, 2, 3, 4]),
        ]
    }

    /// A spec for running `model` in this scenario on `instance`.
    pub fn spec(&self, model: ModelKind, instance: InstanceType) -> ExperimentSpec {
        ExperimentSpec::new(model, self.catalog_size, instance).with_target_rps(self.target_rps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_scenario_parameters() {
        assert_eq!(Scenario::GROCERIES_SMALL.catalog_size, 10_000);
        assert_eq!(Scenario::GROCERIES_SMALL.target_rps, 100);
        assert_eq!(Scenario::FASHION.catalog_size, 1_000_000);
        assert_eq!(Scenario::FASHION.target_rps, 500);
        assert_eq!(Scenario::PLATFORM.catalog_size, 20_000_000);
        assert_eq!(Scenario::PLATFORM.target_rps, 1_000);
        assert_eq!(Scenario::ALL.len(), 5);
    }

    #[test]
    fn specs_inherit_scenario_parameters() {
        let spec = Scenario::ECOMMERCE.spec(ModelKind::Gru4Rec, InstanceType::GpuT4);
        assert_eq!(spec.catalog_size, 10_000_000);
        assert_eq!(spec.target_rps, 1_000);
    }
}
