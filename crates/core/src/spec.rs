//! Declarative experiment specification.
//!
//! Mirrors the paper's workflow: "ETUDE users declaratively specify the
//! model(s) to deploy and the type of hardware to use. Furthermore, they
//! specify the catalog size C, the statistics for click generation and
//! the target throughput to which the load generator should ramp up."

use etude_cluster::InstanceType;
use etude_control::AutoscalerConfig;
use etude_faults::FaultPlan;
use etude_models::{ModelConfig, ModelKind};
use etude_workload::WorkloadConfig;
use std::time::Duration;

/// How the deployed model executes (the paper benchmarks both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Eager per-op execution.
    Eager,
    /// JIT-compiled (`torch.jit.optimize_for_inference` analogue).
    Jit,
}

/// Which serving tier a live deployment runs (both are kept: the
/// blocking thread-pool server with the fixed-window batcher is the
/// measured baseline, the epoll reactor with the continuous batcher is
/// the scalable path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServingMode {
    /// Thread-pool accept/read/write loop + fixed-window batching.
    BlockingFixed,
    /// Event-loop (epoll/poll) server + continuous deadline-aware
    /// batching.
    ReactorContinuous,
}

/// A complete declarative experiment description.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Model under test.
    pub model: ModelKind,
    /// Catalog size `C` — the dominant latency factor.
    pub catalog_size: usize,
    /// Session-length power-law exponent (`alpha_l`).
    pub alpha_length: f64,
    /// Click-count power-law exponent (`alpha_c`).
    pub alpha_clicks: f64,
    /// Instance type to deploy on.
    pub instance: InstanceType,
    /// Replicas behind the ClusterIP service.
    pub replicas: usize,
    /// Target throughput to ramp to (requests/second).
    pub target_rps: u64,
    /// Ramp-up / experiment duration (paper: ten minutes).
    pub ramp: Duration,
    /// Latency constraint the deployment must meet (paper: 50 ms p90).
    pub latency_slo: Duration,
    /// Execution mode.
    pub execution: ExecutionMode,
    /// Emulate RecBole implementation quirks (paper measurements) or use
    /// the repaired models.
    pub recbole_quirks: bool,
    /// Master seed: workload, jitter and weight initialisation derive
    /// from it.
    pub seed: u64,
    /// Fault schedule injected into the run (network drops/spikes, pod
    /// crashes). Calm by default: no faults, bit-identical to specs that
    /// predate fault injection.
    pub faults: FaultPlan,
    /// When set, the runner reconciles the replica set once per virtual
    /// second with the control plane's SLO-driven autoscaler, starting
    /// from [`Self::replicas`]. `None` (the default) keeps the replica
    /// count fixed for the whole run, as every pre-control-plane spec
    /// did.
    pub autoscaler: Option<AutoscalerConfig>,
    /// Serving tier for live (socket-backed) deployments. Defaults to
    /// [`ServingMode::BlockingFixed`], the architecture every
    /// pre-reactor spec measured; simulated runs ignore it.
    pub serving: ServingMode,
}

impl ExperimentSpec {
    /// A spec with the paper's defaults for the given model/catalog/
    /// hardware triple.
    pub fn new(model: ModelKind, catalog_size: usize, instance: InstanceType) -> ExperimentSpec {
        ExperimentSpec {
            model,
            catalog_size,
            alpha_length: 2.0,
            alpha_clicks: 1.8,
            instance,
            replicas: 1,
            target_rps: 1_000,
            ramp: Duration::from_secs(600),
            latency_slo: Duration::from_millis(50),
            execution: ExecutionMode::Jit,
            recbole_quirks: true,
            seed: 42,
            faults: FaultPlan::calm(),
            autoscaler: None,
            serving: ServingMode::BlockingFixed,
        }
    }

    /// Overrides the target throughput.
    pub fn with_target_rps(mut self, rps: u64) -> Self {
        self.target_rps = rps;
        self
    }

    /// Overrides the replica count.
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas.max(1);
        self
    }

    /// Overrides the ramp duration (scaled-down experiments).
    pub fn with_ramp(mut self, ramp: Duration) -> Self {
        self.ramp = ramp;
        self
    }

    /// Overrides the execution mode.
    pub fn with_execution(mut self, execution: ExecutionMode) -> Self {
        self.execution = execution;
        self
    }

    /// Overrides quirk emulation.
    pub fn with_quirks(mut self, quirks: bool) -> Self {
        self.recbole_quirks = quirks;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Injects a fault schedule into the run.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Enables SLO-driven autoscaling for the run.
    pub fn with_autoscaler(mut self, config: AutoscalerConfig) -> Self {
        self.autoscaler = Some(config);
        self
    }

    /// Overrides the serving tier for live deployments.
    pub fn with_serving_mode(mut self, serving: ServingMode) -> Self {
        self.serving = serving;
        self
    }

    /// The model configuration implied by this spec. Weights are phantom:
    /// simulated benchmarks only need operation costs, so even the
    /// 20M-item Platform catalog needs no multi-gigabyte table.
    pub fn model_config(&self) -> ModelConfig {
        ModelConfig::new(self.catalog_size)
            .with_quirks(self.recbole_quirks)
            .with_seed(self.seed)
            .without_weights()
    }

    /// The workload generator configuration implied by this spec.
    pub fn workload_config(&self) -> WorkloadConfig {
        WorkloadConfig {
            catalog_size: self.catalog_size,
            alpha_length: self.alpha_length,
            alpha_clicks: self.alpha_clicks,
            max_session_len: 200,
            seed: self.seed ^ 0x5eed,
        }
    }

    /// Size of the serialised model in bytes (embedding table dominates).
    pub fn model_bytes(&self) -> u64 {
        self.model_config().embedding_table_bytes()
    }

    /// A short identifier for reports: `model@catalog/instance xN`.
    pub fn label(&self) -> String {
        format!(
            "{}@{}/{} x{}",
            self.model.name(),
            self.catalog_size,
            self.instance.name(),
            self.replicas
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let spec = ExperimentSpec::new(ModelKind::Core, 1_000_000, InstanceType::GpuT4);
        assert_eq!(spec.latency_slo, Duration::from_millis(50));
        assert_eq!(spec.ramp, Duration::from_secs(600));
        assert_eq!(spec.target_rps, 1_000);
        assert!(spec.recbole_quirks);
        assert_eq!(spec.execution, ExecutionMode::Jit);
        assert!(spec.faults.is_calm(), "no faults unless asked for");
    }

    #[test]
    fn fault_plans_attach_to_specs() {
        use etude_faults::FaultKind;

        let plan = FaultPlan::seeded(9).with_window(
            Duration::from_secs(1),
            Duration::from_secs(2),
            FaultKind::Partition,
        );
        let spec =
            ExperimentSpec::new(ModelKind::Core, 10_000, InstanceType::CpuE2).with_faults(plan);
        assert!(!spec.faults.is_calm());
        assert_eq!(spec.faults.windows.len(), 1);
    }

    #[test]
    fn model_config_uses_phantom_weights_and_heuristic_dims() {
        let spec = ExperimentSpec::new(ModelKind::SasRec, 10_000_000, InstanceType::GpuA100);
        let cfg = spec.model_config();
        assert!(!cfg.materialize_weights);
        assert_eq!(cfg.embedding_dim, 57);
    }

    #[test]
    fn model_bytes_track_catalog_size() {
        let spec = ExperimentSpec::new(ModelKind::Narm, 20_000_000, InstanceType::GpuA100);
        assert_eq!(spec.model_bytes(), 4 * 20_000_000 * 67);
    }

    #[test]
    fn label_is_informative() {
        let spec =
            ExperimentSpec::new(ModelKind::Stamp, 10_000, InstanceType::CpuE2).with_replicas(3);
        assert_eq!(spec.label(), "stamp@10000/CPU x3");
    }
}
