//! # etude-core
//!
//! The ETUDE benchmarking framework itself: "an end-to-end benchmarking
//! framework, which enables data scientists to automatically evaluate the
//! inference performance of SBR models under different deployment
//! options" (ICDE 2024).
//!
//! A user declares *what* to evaluate — models, catalog statistics,
//! hardware, latency/throughput constraints — through an
//! [`spec::ExperimentSpec`]; the [`runner`] then:
//!
//! 1. builds the model and its [`etude_serve::ServiceProfile`] for the
//!    chosen device and execution mode (eager / JIT),
//! 2. deploys it as replicated pods behind a ClusterIP service in the
//!    simulated cluster ([`etude_cluster`]), waiting for readiness
//!    probes,
//! 3. generates a synthetic click workload from the declared marginal
//!    statistics (Algorithm 1, [`etude_workload`]),
//! 4. drives the deployment with the backpressure-aware load generator
//!    (Algorithm 2, [`etude_loadgen`]) ramping to the target throughput,
//! 5. reports latency quantiles, errors and achieved throughput
//!    ([`results::ExperimentResult`]).
//!
//! [`analysis`] layers the paper's decision procedure on top: feasibility
//! at the 50 ms p90 SLO and the cheapest deployment per scenario
//! (Table I). [`scenario`] ships the five e-Commerce use cases of the
//! paper's evaluation.

pub mod analysis;
pub mod planner;
pub mod results;
pub mod runner;
pub mod scenario;
pub mod spec;

pub use analysis::{cheapest_deployment, estimate_capacity, FeasibilityVerdict};
pub use planner::{plan_deployment, DeploymentPlan};
pub use results::ExperimentResult;
pub use runner::{run_experiment, run_serial_microbenchmark, SerialBreakdown, SerialResult};
pub use scenario::Scenario;
pub use spec::{ExecutionMode, ExperimentSpec, ServingMode};
