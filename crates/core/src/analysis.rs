//! Feasibility and cost-efficiency analysis — how Table I is derived
//! from ETUDE's measurements.

use crate::results::ExperimentResult;
use crate::runner::run_experiment;
use crate::scenario::Scenario;
use crate::spec::ExperimentSpec;
use etude_cluster::InstanceType;
use etude_models::ModelKind;
use etude_serve::ServiceProfile;
use std::time::Duration;

/// The verdict for one (instance, replicas) deployment option.
#[derive(Debug, Clone)]
pub struct FeasibilityVerdict {
    /// Instance type evaluated.
    pub instance: InstanceType,
    /// Replica count evaluated.
    pub replicas: usize,
    /// Monthly cost of the option.
    pub monthly_cost: f64,
    /// Whether the option met the SLO at the target throughput.
    pub feasible: bool,
    /// Steady-state p90 (zero when the option was skipped analytically).
    pub p90: Duration,
    /// Steady-state achieved throughput.
    pub throughput: f64,
}

/// Analytic throughput ceiling of a deployment (requests/second), used to
/// skip hopeless configurations before burning simulation time.
///
/// * CPU: a pool of `vcpus` workers, each serving one request per
///   single-request service time.
/// * GPU: the batcher keeps the device busy with batches of up to 1,024;
///   the ceiling is the best batch throughput.
pub fn estimate_capacity(profile: &ServiceProfile, instance: InstanceType, replicas: usize) -> f64 {
    let per_replica = if instance.has_gpu() {
        let batch = 1024usize;
        let busy = profile.batch_latency(batch) + profile.handler_overhead * batch as u32;
        batch as f64 / busy.as_secs_f64().max(1e-9)
    } else {
        let one = profile.batch_latency(1) + profile.handler_overhead;
        instance.vcpus() as f64 / one.as_secs_f64().max(1e-9)
    };
    per_replica * replicas as f64
}

/// Evaluates the deployment options of a scenario for one model and
/// returns the verdicts (ascending replica count per instance; the
/// search stops at the first feasible count per instance type, as larger
/// counts are then strictly more expensive).
pub fn scan_deployments(
    scenario: &Scenario,
    model: ModelKind,
    ramp: Duration,
    quirks: bool,
) -> Vec<FeasibilityVerdict> {
    let mut verdicts = Vec::new();
    for (instance, replica_options) in scenario.deployment_options() {
        for replicas in replica_options {
            let spec = scenario
                .spec(model, instance)
                .with_replicas(replicas)
                .with_ramp(ramp)
                .with_quirks(quirks);
            let verdict = evaluate_option(&spec);
            let feasible = verdict.feasible;
            verdicts.push(verdict);
            if feasible {
                break; // cheaper counts failed; larger ones cost more
            }
        }
    }
    verdicts
}

/// Evaluates one concrete deployment option, using the analytic capacity
/// bound to skip configurations that cannot possibly reach the target.
pub fn evaluate_option(spec: &ExperimentSpec) -> FeasibilityVerdict {
    let cost = spec.instance.monthly_cost() * spec.replicas as f64;
    if !spec.instance.fits_model(spec.model_bytes()) {
        return FeasibilityVerdict {
            instance: spec.instance,
            replicas: spec.replicas,
            monthly_cost: cost,
            feasible: false,
            p90: Duration::ZERO,
            throughput: 0.0,
        };
    }
    let profile = crate::runner::service_profile(spec);
    let capacity = estimate_capacity(&profile, spec.instance, spec.replicas);
    if capacity < 0.8 * spec.target_rps as f64 {
        return FeasibilityVerdict {
            instance: spec.instance,
            replicas: spec.replicas,
            monthly_cost: cost,
            feasible: false,
            p90: Duration::ZERO,
            throughput: capacity,
        };
    }
    let result: ExperimentResult = run_experiment(spec);
    FeasibilityVerdict {
        instance: spec.instance,
        replicas: spec.replicas,
        monthly_cost: cost,
        feasible: result.feasible,
        p90: result.p90(),
        throughput: result.throughput(),
    }
}

/// The cheapest feasible deployment among verdicts, if any.
pub fn cheapest_deployment(verdicts: &[FeasibilityVerdict]) -> Option<&FeasibilityVerdict> {
    verdicts
        .iter()
        .filter(|v| v.feasible)
        .min_by(|a, b| a.monthly_cost.partial_cmp(&b.monthly_cost).unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use etude_models::ModelConfig;
    use etude_serve::service::ExecutionKind;
    use etude_tensor::Device;

    #[test]
    fn capacity_estimates_scale_with_replicas() {
        let profile = ServiceProfile::build(
            ModelKind::Core,
            &ModelConfig::new(100_000).without_weights(),
            &Device::cpu(),
            ExecutionKind::Jit,
        )
        .unwrap();
        let one = estimate_capacity(&profile, InstanceType::CpuE2, 1);
        let three = estimate_capacity(&profile, InstanceType::CpuE2, 3);
        assert!((three / one - 3.0).abs() < 1e-9);
    }

    #[test]
    fn gpu_capacity_exceeds_cpu_at_large_catalogs() {
        let mk = |device: &Device| {
            ServiceProfile::build(
                ModelKind::Core,
                &ModelConfig::new(10_000_000).without_weights(),
                device,
                ExecutionKind::Jit,
            )
            .unwrap()
        };
        let cpu = estimate_capacity(&mk(&Device::cpu()), InstanceType::CpuE2, 1);
        let t4 = estimate_capacity(&mk(&Device::t4()), InstanceType::GpuT4, 1);
        assert!(t4 > 20.0 * cpu, "cpu {cpu:.1} vs t4 {t4:.1}");
    }

    #[test]
    fn groceries_small_scan_finds_the_cpu_option() {
        // Table I row 1: CPU x1 at $108 is the cheapest feasible option.
        let verdicts = scan_deployments(
            &Scenario::GROCERIES_SMALL,
            ModelKind::Core,
            Duration::from_secs(12),
            true,
        );
        let best = cheapest_deployment(&verdicts).expect("some option works");
        assert_eq!(best.instance, InstanceType::CpuE2);
        assert_eq!(best.replicas, 1);
        assert!((best.monthly_cost - 108.09).abs() < 1e-9);
    }

    #[test]
    fn platform_scenario_requires_a100s() {
        // Table I row 5: only GPU-A100 deployments handle 20M items at
        // 1,000 req/s; the CPU and T4 options all fail.
        let verdicts = scan_deployments(
            &Scenario::PLATFORM,
            ModelKind::Gru4Rec,
            Duration::from_secs(12),
            true,
        );
        let best = cheapest_deployment(&verdicts).expect("A100s handle it");
        assert_eq!(best.instance, InstanceType::GpuA100);
        for v in &verdicts {
            if v.instance != InstanceType::GpuA100 {
                assert!(!v.feasible, "{:?} x{} should fail", v.instance, v.replicas);
            }
        }
    }

    #[test]
    fn infeasible_options_are_cheap_to_evaluate() {
        // The analytic filter must skip the CPU option for the e-Commerce
        // scenario without running a simulation (throughput reported as
        // the capacity bound, p90 zeroed).
        let spec = Scenario::ECOMMERCE
            .spec(ModelKind::Core, InstanceType::CpuE2)
            .with_ramp(Duration::from_secs(12));
        let v = evaluate_option(&spec);
        assert!(!v.feasible);
        assert_eq!(v.p90, Duration::ZERO);
    }
}
