//! Experiment result records.

use crate::spec::ExperimentSpec;
use etude_control::DecisionJournal;
use etude_loadgen::LoadTestResult;
use etude_metrics::LatencySummary;
use std::time::Duration;

/// The outcome of one deployed-benchmark run.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// The spec that produced this result.
    pub spec_label: String,
    /// Monthly cost of the deployment that was measured.
    pub monthly_cost: f64,
    /// Raw load-test measurements.
    pub load: LoadTestResult,
    /// Steady-state window summary (last ticks at full target rate).
    pub steady: LatencySummary,
    /// Whether the deployment met the latency SLO at the target rate.
    pub feasible: bool,
    /// Every control-plane decision the run took (scale events, drains,
    /// ejections), in decision order. Empty for unmanaged runs. The
    /// journal's [`DecisionJournal::render_json`] is byte-stable, so two
    /// seeded runs of the same spec can be compared byte-for-byte.
    pub journal: DecisionJournal,
}

impl ExperimentResult {
    /// Builds the result record, judging feasibility over the
    /// steady-state tail: the p90 SLO must hold, errors must be rare and
    /// the achieved throughput must reach (most of) the target.
    pub fn evaluate(
        spec: &ExperimentSpec,
        monthly_cost: f64,
        load: LoadTestResult,
        steady_window: usize,
    ) -> ExperimentResult {
        let steady = load.tail_summary(steady_window);
        let throughput_ok = steady.throughput >= 0.95 * spec.target_rps as f64;
        let feasible = steady.meets_slo(spec.latency_slo) && throughput_ok;
        ExperimentResult {
            spec_label: spec.label(),
            monthly_cost,
            load,
            steady,
            feasible,
            journal: DecisionJournal::new(),
        }
    }

    /// p90 of the steady-state window.
    pub fn p90(&self) -> Duration {
        self.steady.p90
    }

    /// Achieved steady-state throughput.
    pub fn throughput(&self) -> f64 {
        self.steady.throughput
    }

    /// One CSV row: label, cost, p90(us), throughput, errors, feasible.
    pub fn csv_row(&self) -> Vec<String> {
        vec![
            self.spec_label.clone(),
            format!("{:.2}", self.monthly_cost),
            self.steady.p90.as_micros().to_string(),
            format!("{:.1}", self.steady.throughput),
            self.load.errors.to_string(),
            self.feasible.to_string(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etude_cluster::InstanceType;
    use etude_metrics::TimeSeries;
    use etude_models::ModelKind;

    fn fake_load(p90_ms: u64, rps: u64, ticks: u64) -> LoadTestResult {
        let mut series = TimeSeries::new();
        for t in 0..ticks {
            for _ in 0..rps {
                series.record_sent(t);
                series.record_ok(t, Duration::from_millis(p90_ms));
            }
        }
        LoadTestResult {
            series,
            sent: rps * ticks,
            ok: rps * ticks,
            errors: 0,
            suppressed: 0,
            retries: 0,
            degraded: 0,
            server_stages: None,
            corrected: etude_metrics::hdr::Histogram::new(),
            attribution: Vec::new(),
            slo: None,
        }
    }

    fn spec() -> ExperimentSpec {
        ExperimentSpec::new(ModelKind::Core, 10_000, InstanceType::CpuE2).with_target_rps(100)
    }

    #[test]
    fn fast_enough_deployments_are_feasible() {
        let result = ExperimentResult::evaluate(&spec(), 108.09, fake_load(10, 100, 10), 5);
        assert!(result.feasible);
        assert!(result.p90() <= Duration::from_millis(11));
    }

    #[test]
    fn slow_deployments_are_infeasible() {
        let result = ExperimentResult::evaluate(&spec(), 108.09, fake_load(80, 100, 10), 5);
        assert!(!result.feasible, "80 ms p90 breaches the 50 ms SLO");
    }

    #[test]
    fn under_throughput_deployments_are_infeasible() {
        // Meets latency but only delivers half the target rate.
        let result = ExperimentResult::evaluate(&spec(), 108.09, fake_load(5, 50, 10), 5);
        assert!(!result.feasible);
    }

    #[test]
    fn csv_row_has_six_fields() {
        let result = ExperimentResult::evaluate(&spec(), 108.09, fake_load(10, 100, 10), 5);
        assert_eq!(result.csv_row().len(), 6);
    }
}
