//! Automatic deployment planning — the paper's future-work item "the
//! automatic choice of appropriate instance types for declaratively
//! specified workloads" (Section IV).
//!
//! Given a workload declaration (model, catalog, target throughput, SLO),
//! [`plan_deployment`] searches the instance catalog, prunes analytically
//! (device memory, capacity bounds), verifies the surviving candidates in
//! the simulated cluster, and returns a ranked plan: the cheapest feasible
//! deployment first, with the runner-up options and the reasons the
//! rejected ones failed.

use crate::analysis::{estimate_capacity, evaluate_option};
use crate::spec::ExperimentSpec;
use etude_cluster::InstanceType;
use std::time::Duration;

/// Why a candidate deployment was rejected without simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum Rejection {
    /// The model's embedding table does not fit the device memory.
    ModelDoesNotFit,
    /// The analytic capacity bound is below the target throughput.
    InsufficientCapacity {
        /// Estimated ceiling in requests/second.
        estimated_rps: f64,
    },
    /// The simulated run breached the latency SLO or dropped requests.
    MissedSlo {
        /// Measured steady-state p90.
        p90: Duration,
    },
}

/// One evaluated deployment candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Instance type.
    pub instance: InstanceType,
    /// Replica count.
    pub replicas: usize,
    /// Monthly cost in USD.
    pub monthly_cost: f64,
    /// `None` when the candidate is viable; the rejection reason otherwise.
    pub rejection: Option<Rejection>,
}

/// A complete deployment plan.
#[derive(Debug, Clone)]
pub struct DeploymentPlan {
    /// Viable candidates, cheapest first.
    pub viable: Vec<Candidate>,
    /// Rejected candidates with reasons (for the report).
    pub rejected: Vec<Candidate>,
}

impl DeploymentPlan {
    /// The recommended (cheapest viable) deployment.
    pub fn recommendation(&self) -> Option<&Candidate> {
        self.viable.first()
    }
}

/// Searches instance types and replica counts (up to `max_replicas`) for
/// deployments of `spec`'s model/catalog meeting its target and SLO.
pub fn plan_deployment(spec: &ExperimentSpec, max_replicas: usize) -> DeploymentPlan {
    let mut viable = Vec::new();
    let mut rejected = Vec::new();
    for instance in InstanceType::ALL {
        for replicas in 1..=max_replicas.max(1) {
            let candidate_spec = ExperimentSpec {
                instance,
                replicas,
                ..spec.clone()
            };
            let cost = instance.monthly_cost() * replicas as f64;
            // Memory feasibility never improves with replicas.
            if !instance.fits_model(candidate_spec.model_bytes()) {
                rejected.push(Candidate {
                    instance,
                    replicas,
                    monthly_cost: cost,
                    rejection: Some(Rejection::ModelDoesNotFit),
                });
                break;
            }
            let profile = crate::runner::service_profile(&candidate_spec);
            let capacity = estimate_capacity(&profile, instance, replicas);
            if capacity < 0.8 * spec.target_rps as f64 {
                rejected.push(Candidate {
                    instance,
                    replicas,
                    monthly_cost: cost,
                    rejection: Some(Rejection::InsufficientCapacity {
                        estimated_rps: capacity,
                    }),
                });
                continue;
            }
            let verdict = evaluate_option(&candidate_spec);
            if verdict.feasible {
                viable.push(Candidate {
                    instance,
                    replicas,
                    monthly_cost: cost,
                    rejection: None,
                });
                break; // larger counts on this instance only cost more
            } else {
                rejected.push(Candidate {
                    instance,
                    replicas,
                    monthly_cost: cost,
                    rejection: Some(Rejection::MissedSlo { p90: verdict.p90 }),
                });
            }
        }
    }
    viable.sort_by(|a, b| a.monthly_cost.partial_cmp(&b.monthly_cost).unwrap());
    DeploymentPlan { viable, rejected }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etude_models::ModelKind;

    fn spec(catalog: usize, rps: u64) -> ExperimentSpec {
        ExperimentSpec::new(ModelKind::Core, catalog, InstanceType::CpuE2)
            .with_target_rps(rps)
            .with_ramp(Duration::from_secs(12))
    }

    #[test]
    fn small_workloads_get_the_cpu_recommendation() {
        let plan = plan_deployment(&spec(10_000, 100), 4);
        let rec = plan.recommendation().expect("viable plan");
        assert_eq!(rec.instance, InstanceType::CpuE2);
        assert_eq!(rec.replicas, 1);
        // All three instance classes are viable; CPU wins on cost.
        assert_eq!(plan.viable.len(), 3);
        assert!(plan
            .viable
            .windows(2)
            .all(|w| w[0].monthly_cost <= w[1].monthly_cost));
    }

    #[test]
    fn large_catalogs_reject_cpus_with_capacity_reasons() {
        let plan = plan_deployment(&spec(10_000_000, 1_000), 3);
        let cpu_rejections: Vec<_> = plan
            .rejected
            .iter()
            .filter(|c| c.instance == InstanceType::CpuE2)
            .collect();
        assert!(!cpu_rejections.is_empty());
        assert!(cpu_rejections
            .iter()
            .all(|c| matches!(c.rejection, Some(Rejection::InsufficientCapacity { .. }))));
        let rec = plan.recommendation().expect("a GPU plan exists");
        assert!(rec.instance.has_gpu());
    }

    #[test]
    fn oversized_models_are_rejected_for_memory() {
        // A catalog whose table exceeds the T4's 16 GB.
        let plan = plan_deployment(&spec(60_000_000, 100), 2);
        let t4 = plan
            .rejected
            .iter()
            .find(|c| c.instance == InstanceType::GpuT4)
            .expect("T4 rejected");
        assert_eq!(t4.rejection, Some(Rejection::ModelDoesNotFit));
    }

    #[test]
    fn replica_scaling_unlocks_higher_targets() {
        // At C = 1e5 a CPU instance sustains ~1,250 req/s, so 500 req/s
        // needs one replica and 2,500 req/s needs several.
        let small = plan_deployment(&spec(100_000, 500), 6);
        let large = plan_deployment(&spec(100_000, 2_500), 6);
        let cpu_small = small
            .viable
            .iter()
            .find(|c| c.instance == InstanceType::CpuE2)
            .expect("one CPU handles 500 r/s");
        assert_eq!(cpu_small.replicas, 1);
        let cpu_large = large
            .viable
            .iter()
            .find(|c| c.instance == InstanceType::CpuE2)
            .expect("CPU scale-out handles 2,500 r/s");
        assert!(cpu_large.replicas > cpu_small.replicas);
    }

    #[test]
    fn slo_bound_by_serial_latency_is_detected() {
        // At C = 1e6 a CPU's *single-request* latency already exceeds the
        // 50 ms SLO (Figure 3), so no amount of replicas helps; the plan
        // must reject every CPU option with an SLO (or capacity) reason.
        let plan = plan_deployment(&spec(1_000_000, 300), 6);
        assert!(plan
            .viable
            .iter()
            .all(|c| c.instance != InstanceType::CpuE2));
        assert!(plan
            .rejected
            .iter()
            .filter(|c| c.instance == InstanceType::CpuE2)
            .any(|c| matches!(c.rejection, Some(Rejection::MissedSlo { .. }))));
    }
}
