//! Experiment execution: deploy → wait for readiness → generate load →
//! measure (the automated pipeline behind the paper's
//! `make run_deployed_benchmark`).

use crate::results::ExperimentResult;
use crate::spec::{ExecutionMode, ExperimentSpec};
use etude_cluster::{Deployment, DeploymentSpec};
use etude_control::{Autoscaler, ControlAction, FleetObs};
use etude_faults::FaultInjector;
use etude_loadgen::{LoadConfig, LoadTestResult, SimLoadGen};
use etude_metrics::hdr::Histogram;
use etude_metrics::percentile::percentile_duration;
use etude_metrics::TimeSeries;
use etude_obs::{SloMonitor, SloPolicy};
use etude_serve::service::ExecutionKind;
use etude_serve::ServiceProfile;
use etude_simnet::link::{FaultyLink, Link};
use etude_simnet::{shared, Shared, Sim, SimTime};
use etude_tensor::Device;
use etude_workload::SyntheticWorkload;
use std::rc::Rc;
use std::time::Duration;

/// How long the serial micro-benchmark waits on a lost request before
/// writing it off (same horizon as the load drivers' client timeout).
const SERIAL_CLIENT_TIMEOUT: Duration = Duration::from_secs(2);

/// Cadence of the autoscaler's reconcile loop (one HPA-style sync per
/// virtual second).
const AUTOSCALE_TICK: Duration = Duration::from_secs(1);

fn execution_kind(mode: ExecutionMode) -> ExecutionKind {
    match mode {
        ExecutionMode::Eager => ExecutionKind::Eager,
        ExecutionMode::Jit => ExecutionKind::Jit,
    }
}

/// Builds the service profile a spec implies.
pub fn service_profile(spec: &ExperimentSpec) -> ServiceProfile {
    let cfg = spec.model_config();
    ServiceProfile::build(
        spec.model,
        &cfg,
        &spec.instance.device(),
        execution_kind(spec.execution),
    )
    .expect("cost probing cannot fail on phantom weights")
}

/// Runs one deployed benchmark end-to-end in the simulated cluster.
///
/// Deployments whose model does not fit the instance's device are
/// reported infeasible without running (exactly what the empty cells of
/// Table I mean for the Platform scenario on small devices).
pub fn run_experiment(spec: &ExperimentSpec) -> ExperimentResult {
    let deployment_spec = DeploymentSpec {
        instance: spec.instance,
        replicas: spec.replicas,
        model_bytes: spec.model_bytes(),
        node_budget: None,
    };
    let monthly_cost = deployment_spec.monthly_cost();
    if !deployment_spec.feasible() {
        let empty = LoadTestResult {
            series: TimeSeries::new(),
            sent: 0,
            ok: 0,
            errors: 0,
            suppressed: 0,
            retries: 0,
            degraded: 0,
            server_stages: None,
            corrected: Histogram::new(),
            attribution: Vec::new(),
            slo: None,
        };
        return ExperimentResult::evaluate(spec, monthly_cost, empty, 1);
    }

    let profile = service_profile(spec);
    // After the ramp completes, hold the full target rate for a steady
    // measurement window — feasibility is judged there.
    let ramp_secs = spec.ramp.as_secs();
    let hold_secs = (ramp_secs / 5).clamp(5, 60);
    // Enough whole sessions to cover the ramp (area under the ramp is
    // roughly target * ramp / 2) plus the hold phase.
    let expected_requests = spec.target_rps * ramp_secs / 2 + spec.target_rps * (hold_secs + 2);
    let workload = SyntheticWorkload::new(spec.workload_config());
    let log = workload.generate(expected_requests + 1_000);

    let mut sim = Sim::new();
    let deployment = Rc::new(
        Deployment::create(&mut sim, deployment_spec, &profile)
            .expect("spec passed the feasibility gate above"),
    );
    // The spec's fault schedule covers both layers: crash windows take
    // pods down (relative to virtual time zero), everything else rides
    // on the client-server network path.
    let injector = FaultInjector::new(spec.faults.clone());
    for pod in deployment.pods() {
        pod.schedule_crashes(&mut sim, &injector);
    }
    // The runner starts the load generator only once every readiness
    // probe passes (Section II, "Benchmark execution").
    sim.run_until(deployment.ready_at());
    let start = sim.now();
    let load_config = LoadConfig {
        target_rps: spec.target_rps,
        ramp: spec.ramp,
        duration: spec.ramp + Duration::from_secs(hold_secs),
        backpressure: true,
        seed: spec.seed,
    };
    let horizon = start.after(load_config.duration);
    let handle = SimLoadGen::schedule_with_faults(
        &mut sim,
        deployment.service(),
        &log,
        load_config,
        start,
        injector,
    );
    if let Some(config) = spec.autoscaler {
        let scaler = shared(Autoscaler::new(config));
        schedule_autoscaler(&mut sim, Rc::clone(&deployment), scaler, 0, horizon);
    }
    sim.run_to_completion();
    let mut load = handle.collect();
    // Multi-window burn-rate evaluation over the whole run: the report
    // says *when* the SLO first caught fire and *which* stage (compute,
    // queue, network, faults) dominated that window.
    let monitor = SloMonitor::new(SloPolicy::from_target(spec.latency_slo));
    load.slo = Some(monitor.evaluate(&load.series, &load.attribution));

    let mut result = ExperimentResult::evaluate(spec, monthly_cost, load, hold_secs as usize);
    result.journal = deployment.journal().borrow().clone();
    result
}

/// One reconcile tick per virtual second: boil the deployment down to a
/// [`FleetObs`], let the autoscaler decide, and actuate + journal any
/// decision. The loop stops at `horizon` (end of load) so it cannot keep
/// the event queue alive after the experiment.
fn schedule_autoscaler(
    sim: &mut Sim,
    deployment: Rc<Deployment>,
    scaler: Shared<Autoscaler>,
    tick: u64,
    horizon: SimTime,
) {
    sim.schedule_in(AUTOSCALE_TICK, move |s| {
        let service = deployment.service();
        // The latency signal is the worst replica's cumulative service
        // p99 — the simulated stand-in for scraping every pod's /stats.
        // Burn-rate attribution needs the whole series and stays a
        // post-hoc concern (the SloMonitor pass below), so the live
        // reconciler sees queue and latency pressure only.
        let p99_us = service
            .pod_summaries()
            .iter()
            .map(|p| p.latency.p99())
            .max()
            .unwrap_or(0);
        let obs = FleetObs {
            tick,
            ready_replicas: service.ready_backends(),
            total_replicas: deployment.replicas(),
            queue_depth: service.queue_depth() as u64,
            p99_us,
            burn: 0.0,
        };
        if let Some(d) = scaler.borrow_mut().decide(&obs) {
            let action = if d.to > d.from {
                ControlAction::ScaleUp
            } else {
                ControlAction::ScaleDown
            };
            deployment.journal().borrow_mut().push(
                s.now().as_duration(),
                action,
                d.from as i64,
                d.to as i64,
            );
            deployment.scale_to(s, d.to);
        }
        if s.now() < horizon {
            schedule_autoscaler(s, deployment, scaler, tick + 1, horizon);
        }
    });
}

/// Analytic decomposition of the serial path's mean latency — the
/// simulated counterpart of a live server's `/stats` stage breakdown
/// (the analytic model has no queueing by construction, so there is no
/// queue component).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SerialBreakdown {
    /// Model compute at batch size one.
    pub inference: Duration,
    /// Fixed handler overhead (parse, top-k envelope, serialization).
    pub overhead: Duration,
    /// Mean two-hop network time.
    pub network: Duration,
}

impl SerialBreakdown {
    /// Sum of all components; equals the mean end-to-end latency.
    pub fn total(&self) -> Duration {
        self.inference + self.overhead + self.network
    }
}

/// Result of the serial micro-benchmark (Figure 3): one request at a
/// time, no queueing, p90 of the end-to-end prediction latency.
#[derive(Debug, Clone)]
pub struct SerialResult {
    /// Model name.
    pub model: String,
    /// Device name.
    pub device: &'static str,
    /// Execution mode.
    pub execution: ExecutionMode,
    /// p90 prediction latency.
    pub p90: Duration,
    /// Mean prediction latency.
    pub mean: Duration,
    /// Samples taken.
    pub samples: usize,
    /// Intra-op CPU threads the host kernel pool runs at. The analytic
    /// device model is calibrated at one thread, so reports carry the
    /// pool width to keep runs comparable.
    pub cpu_threads: usize,
    /// SIMD backend the host kernels dispatched to ("scalar", "avx2+fma").
    pub simd_isa: &'static str,
    /// f32 lanes per block of that backend (1 for scalar).
    pub simd_lanes: usize,
    /// Poller backend the reactor serving tier would run on this host
    /// ("epoll", or "poll" under `ETUDE_POLLER=poll`). The serial bench
    /// itself is virtual-time, but reports carry the serving substrate
    /// so results files are comparable across hosts.
    pub poller_backend: &'static str,
    /// Event loops the default reactor config would spread over.
    pub event_loops: usize,
    /// Where the mean latency goes (compute vs overhead vs network).
    pub breakdown: SerialBreakdown,
    /// Requests lost to fault windows (drops/partitions); each held the
    /// serial loop for the client timeout and produced no sample. Zero
    /// under a calm plan.
    pub lost: usize,
}

/// Runs the Figure 3 micro-benchmark for one (model, device, execution)
/// cell: requests are sent "in a serial manner (one request after
/// another, waiting for model responses)".
pub fn run_serial_microbenchmark(spec: &ExperimentSpec, requests: usize) -> SerialResult {
    let profile = service_profile(spec);
    let device: Device = spec.instance.device();
    let mut link = FaultyLink::new(
        Link::cluster(spec.seed),
        FaultInjector::new(spec.faults.clone()),
    );
    let mut samples = Vec::with_capacity(requests);
    let per_request = profile.batch_latency(1) + profile.handler_overhead;
    let mut rtt_total = Duration::ZERO;
    // The serial loop's own virtual clock: requests run back to back, so
    // fault windows are evaluated against the accumulated latency.
    let mut elapsed = Duration::ZERO;
    let mut lost = 0usize;
    for i in 0..requests.max(1) as u64 {
        // Serial requests see the raw service time plus two network hops;
        // there is no queueing by construction. Either hop can lose the
        // request to a fault window — the loop then idles out the client
        // timeout and moves on.
        let now = SimTime::ZERO.after(elapsed);
        let out = link.sample(now, 2 * i);
        let back = match out {
            Some(_) => link.sample(now, 2 * i + 1),
            None => None,
        };
        let (Some(out), Some(back)) = (out, back) else {
            lost += 1;
            elapsed += SERIAL_CLIENT_TIMEOUT;
            continue;
        };
        let rtt = out + back;
        rtt_total += rtt;
        samples.push(per_request + rtt);
        elapsed += per_request + rtt;
    }
    let p90 = percentile_duration(&samples, 0.9).unwrap_or_default();
    let mean = samples.iter().sum::<Duration>() / samples.len().max(1) as u32;
    let breakdown = SerialBreakdown {
        inference: profile.batch_latency(1),
        overhead: profile.handler_overhead,
        network: rtt_total / samples.len().max(1) as u32,
    };
    SerialResult {
        model: spec.model.name().to_string(),
        device: device.name(),
        execution: spec.execution,
        p90,
        mean,
        samples: samples.len(),
        cpu_threads: etude_tensor::pool::current_threads(),
        simd_isa: etude_tensor::simd::isa_name(),
        simd_lanes: etude_tensor::simd::lane_width(),
        poller_backend: etude_serve::reactor::poller_backend_name(),
        event_loops: etude_serve::ReactorConfig::default().event_loops,
        breakdown,
        lost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etude_cluster::InstanceType;
    use etude_models::ModelKind;

    fn fast_spec() -> ExperimentSpec {
        ExperimentSpec::new(ModelKind::Core, 10_000, InstanceType::CpuE2)
            .with_target_rps(100)
            .with_ramp(Duration::from_secs(15))
    }

    #[test]
    fn groceries_on_cpu_is_feasible() {
        // Table I row 1: the small groceries scenario runs on one CPU
        // machine.
        let result = run_experiment(&fast_spec());
        assert!(
            result.feasible,
            "p90 {:?}, tp {:.1}",
            result.p90(),
            result.throughput()
        );
        assert!((result.monthly_cost - 108.09).abs() < 1e-9);
    }

    #[test]
    fn million_catalog_on_cpu_misses_the_slo() {
        // Section III-C: at one million items CPU latency "drops to
        // around 200 milliseconds" under load — far over the SLO.
        let spec = ExperimentSpec::new(ModelKind::Core, 1_000_000, InstanceType::CpuE2)
            .with_target_rps(500)
            .with_ramp(Duration::from_secs(15));
        let result = run_experiment(&spec);
        assert!(!result.feasible);
    }

    #[test]
    fn million_catalog_on_t4_is_feasible() {
        let spec = ExperimentSpec::new(ModelKind::Core, 1_000_000, InstanceType::GpuT4)
            .with_target_rps(500)
            .with_ramp(Duration::from_secs(15));
        let result = run_experiment(&spec);
        assert!(
            result.feasible,
            "p90 {:?}, tp {:.1}",
            result.p90(),
            result.throughput()
        );
    }

    #[test]
    fn oversized_models_report_infeasible_without_running() {
        // A hypothetical catalog needing more memory than a T4 offers.
        let spec = ExperimentSpec::new(ModelKind::Core, 80_000_000, InstanceType::GpuT4);
        let result = run_experiment(&spec);
        assert!(!result.feasible);
        assert_eq!(result.load.sent, 0);
    }

    #[test]
    fn serial_microbenchmark_orders_devices_correctly() {
        // Figure 3 at C = 1e6: GPU an order of magnitude under CPU.
        let cpu = run_serial_microbenchmark(
            &ExperimentSpec::new(ModelKind::Gru4Rec, 1_000_000, InstanceType::CpuE2),
            50,
        );
        let gpu = run_serial_microbenchmark(
            &ExperimentSpec::new(ModelKind::Gru4Rec, 1_000_000, InstanceType::GpuT4),
            50,
        );
        assert!(cpu.p90 > Duration::from_millis(45), "{:?}", cpu.p90);
        assert!(
            cpu.p90.as_secs_f64() > 10.0 * gpu.p90.as_secs_f64(),
            "cpu {:?} vs gpu {:?}",
            cpu.p90,
            gpu.p90
        );
    }

    #[test]
    fn serial_breakdown_components_tile_the_mean() {
        let result = run_serial_microbenchmark(
            &ExperimentSpec::new(ModelKind::Core, 50_000, InstanceType::CpuE2),
            40,
        );
        let sum = result.breakdown.total();
        let gap = sum.abs_diff(result.mean);
        // Duration division rounds to nanoseconds twice (mean and mean
        // rtt), so allow a hair of slack.
        assert!(
            gap <= Duration::from_nanos(2),
            "sum {sum:?} mean {:?}",
            result.mean
        );
        assert!(result.breakdown.inference > Duration::ZERO);
        assert!(result.breakdown.network > Duration::ZERO);
    }

    #[test]
    fn serial_microbenchmark_loses_requests_to_partitions() {
        use etude_faults::{FaultKind, FaultPlan};

        // A partition over the first two (virtual) seconds swallows the
        // first request; the 2 s timeout then carries the clock past the
        // window and the rest go through.
        let plan = FaultPlan::seeded(3).with_window(
            Duration::ZERO,
            Duration::from_secs(2),
            FaultKind::Partition,
        );
        let spec =
            ExperimentSpec::new(ModelKind::Core, 10_000, InstanceType::CpuE2).with_faults(plan);
        let result = run_serial_microbenchmark(&spec, 30);
        assert!(result.lost >= 1, "partition lost nothing");
        assert_eq!(result.lost + result.samples, 30);

        let calm = run_serial_microbenchmark(
            &ExperimentSpec::new(ModelKind::Core, 10_000, InstanceType::CpuE2),
            30,
        );
        assert_eq!(calm.lost, 0);
        assert_eq!(calm.samples, 30);
    }

    #[test]
    fn experiments_surface_fault_windows_as_errors() {
        use etude_faults::{FaultKind, FaultPlan};

        // Drops mid-ramp turn into client-side errors; the same seeded
        // spec reproduces the same counts.
        let faulty = || {
            let plan = FaultPlan::seeded(5).with_window(
                Duration::from_secs(20),
                Duration::from_secs(24),
                FaultKind::Drop { prob: 0.3 },
            );
            run_experiment(&fast_spec().with_faults(plan))
        };
        let a = faulty();
        assert!(a.load.errors > 0, "drops should surface as errors");
        let b = faulty();
        assert_eq!(a.load.errors, b.load.errors, "seeded faults replay");
        assert_eq!(a.load.ok, b.load.ok);

        let calm = run_experiment(&fast_spec());
        assert_eq!(calm.load.errors, 0);
    }

    #[test]
    fn autoscaler_relieves_an_underprovisioned_deployment() {
        use etude_control::AutoscalerConfig;

        // One CPU replica cannot serve a million-item catalog at 300
        // req/s (Section III-C); with the autoscaler on, queue pressure
        // should grow the fleet instead of letting it drown.
        let run = || {
            let config = AutoscalerConfig {
                min_replicas: 1,
                max_replicas: 6,
                ..AutoscalerConfig::default()
            };
            let spec = ExperimentSpec::new(ModelKind::Core, 1_000_000, InstanceType::CpuE2)
                .with_target_rps(300)
                .with_ramp(Duration::from_secs(15))
                .with_autoscaler(config);
            run_experiment(&spec)
        };
        let a = run();
        use etude_control::ControlAction;
        let ups = a.journal.of(ControlAction::ScaleUp).len();
        assert!(
            ups >= 1,
            "pressure never scaled up: {}",
            a.journal.render_json()
        );
        let creates = a.journal.of(ControlAction::SurgeCreate).len();
        assert!(creates >= 1, "scale-up should create pods");

        // The decision journal is the determinism contract: a second run
        // of the same spec reproduces it byte-for-byte.
        let b = run();
        assert_eq!(a.journal.render_json(), b.journal.render_json());

        // Unmanaged runs keep an empty journal (and a fixed fleet).
        assert!(run_experiment(&fast_spec()).journal.is_empty());
    }

    #[test]
    fn jit_is_never_slower_serially() {
        for instance in [InstanceType::CpuE2, InstanceType::GpuT4] {
            let base = ExperimentSpec::new(ModelKind::Narm, 100_000, instance);
            let eager =
                run_serial_microbenchmark(&base.clone().with_execution(ExecutionMode::Eager), 30);
            let jit = run_serial_microbenchmark(&base.with_execution(ExecutionMode::Jit), 30);
            assert!(
                jit.p90 <= eager.p90 + Duration::from_micros(50),
                "{instance:?}: jit {:?} > eager {:?}",
                jit.p90,
                eager.p90
            );
        }
    }
}
