//! Property tests for the control-plane state machines.
//!
//! Two invariants the ISSUE calls out by name:
//!
//! * outlier ejection + probation re-admission never drops the healthy
//!   set below the configured floor, for any outcome sequence;
//! * circuit-breaker transitions are well-formed — the observed state
//!   sequence only ever walks legal edges (in particular, never
//!   closed → half-open without passing through open).

use etude_control::{BreakerConfig, BreakerState, CircuitBreaker, EjectionConfig, OutlierDetector};
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    /// Drive a random outcome stream at a random pool and watch the
    /// available count: it must never dip below the floor, at any
    /// intermediate time.
    #[test]
    fn ejection_never_breaches_the_floor(
        n in 1usize..10,
        floor_fraction in 0.1f64..1.0,
        seed in 0u64..1_000,
        ops in proptest::collection::vec((0usize..10, any::<bool>()), 0..300),
    ) {
        let config = EjectionConfig {
            consecutive_failures: 2,
            failure_ratio: 0.3,
            min_samples: 5,
            floor_fraction,
            base_probation: Duration::from_secs(5),
            max_probation: Duration::from_secs(60),
            seed,
        };
        let mut detector = OutlierDetector::new(n, config);
        let floor = detector.floor();
        prop_assert!(floor >= 1, "floor is at least one backend");
        prop_assert!(floor <= n);
        for (step, (idx, ok)) in ops.into_iter().enumerate() {
            let now = Duration::from_millis(step as u64 * 100);
            detector.record(idx % n, ok, now);
            prop_assert!(
                detector.available_count(now) >= floor,
                "floor breached at step {step}: {} < {floor}",
                detector.available_count(now),
            );
        }
    }

    /// Probation always ends: however often a backend offends, it is
    /// re-admitted once its (capped) sentence elapses.
    #[test]
    fn probation_always_readmits(
        seed in 0u64..1_000,
        offences in 1usize..8,
    ) {
        let config = EjectionConfig {
            consecutive_failures: 1,
            max_probation: Duration::from_secs(30),
            seed,
            ..EjectionConfig::default()
        };
        let mut detector = OutlierDetector::new(4, config);
        let mut now = Duration::ZERO;
        for _ in 0..offences {
            detector.record(0, false, now);
            prop_assert!(detector.is_ejected(0, now));
            // The cap times max jitter bounds every sentence.
            let horizon = now + Duration::from_secs(38);
            prop_assert!(detector.admit(0, horizon), "sentence outlasted the cap");
            now = horizon;
        }
    }

    /// Replay a random op stream against the breaker and check every
    /// observed transition is a legal edge of the state machine:
    /// closed→open, open→half-open, half-open→{closed, open}.
    #[test]
    fn breaker_transitions_are_well_formed(
        threshold in 1u32..6,
        open_ms in 1u64..500,
        // op: 0 = allow(now), 1 = record_success, 2 = record_failure
        ops in proptest::collection::vec((0u8..3, 0u64..50), 0..400),
    ) {
        let mut breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: threshold,
            open_for: Duration::from_millis(open_ms),
            half_open_successes: 1,
        });
        let mut now = Duration::ZERO;
        let mut prev = breaker.state();
        prop_assert_eq!(prev, BreakerState::Closed, "breakers start closed");
        for (op, advance_ms) in ops {
            now += Duration::from_millis(advance_ms);
            match op {
                0 => { breaker.allow(now); }
                1 => breaker.record_success(),
                _ => breaker.record_failure(now, None),
            }
            let next = breaker.state();
            let legal = match (prev, next) {
                _ if prev == next => true,
                (BreakerState::Closed, BreakerState::Open) => true,
                (BreakerState::Open, BreakerState::HalfOpen) => true,
                (BreakerState::HalfOpen, BreakerState::Closed) => true,
                (BreakerState::HalfOpen, BreakerState::Open) => true,
                _ => false,
            };
            prop_assert!(legal, "illegal transition {prev:?} -> {next:?}");
            prev = next;
        }
    }

    /// An open breaker admits nothing until its interval elapses, and
    /// the first admission after it is exactly one half-open probe.
    #[test]
    fn open_breakers_reject_until_the_interval(
        open_ms in 10u64..1_000,
    ) {
        let mut breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            open_for: Duration::from_millis(open_ms),
            half_open_successes: 1,
        });
        breaker.record_failure(Duration::ZERO, None);
        prop_assert_eq!(breaker.state(), BreakerState::Open);
        prop_assert!(!breaker.allow(Duration::from_millis(open_ms - 1)));
        prop_assert!(breaker.allow(Duration::from_millis(open_ms)));
        prop_assert_eq!(breaker.state(), BreakerState::HalfOpen);
        prop_assert!(!breaker.allow(Duration::from_millis(open_ms)), "one probe only");
    }
}
