//! # etude-control
//!
//! The self-healing control plane of the ETUDE reproduction. PR 3 gave
//! the system deterministic chaos (seeded fault windows) and PR 4 gave
//! it fleet-wide observability (windowed snapshots, SLO burn rates);
//! this crate closes the loop: the same signals now *drive reactions*
//! instead of merely being reported.
//!
//! Four mechanisms, all deterministic (every time-dependent decision is
//! a pure function of explicit `now` values and a seed, so chaos runs
//! replay bit-identically):
//!
//! * [`admission`] — an AIMD adaptive concurrency limiter with
//!   criticality-ordered refusal (`x-criticality`): the front door of
//!   the overload-control subsystem, learning each backend's
//!   sustainable window from measured latency versus a target,
//! * [`breaker`] — a per-backend closed/open/half-open circuit breaker
//!   keyed off consecutive failures and server-suggested `Retry-After`
//!   pauses; the resilient client consults it before dialling a backend,
//! * [`health`] — passive outlier detection plus active-probe feedback
//!   for the load-balancing service: persistent failers are ejected from
//!   rotation under a minimum-healthy floor and re-admitted after seeded
//!   exponential probation,
//! * [`hedge`] — a latency-quantile trigger for hedged requests: once
//!   enough attempts have been observed, a request still unanswered at
//!   the p95 launches one backup attempt on another backend,
//! * [`autoscaler`] — an HPA-style reconciler mapping windowed fleet
//!   observations (queue depth, p99, burn rate) to replica counts within
//!   min/max bounds, with cooldown and hysteresis so trajectories do not
//!   flap,
//! * [`journal`] — the byte-stable decision journal every mechanism
//!   writes into; replaying a seeded run must reproduce the journal
//!   byte-for-byte, which is exactly what the chaos acceptance test
//!   asserts.

pub mod admission;
pub mod autoscaler;
pub mod breaker;
pub mod health;
pub mod hedge;
pub mod journal;

pub use admission::{AdmissionConfig, AdmissionController, Criticality};
pub use autoscaler::{Autoscaler, AutoscalerConfig, FleetObs, ScaleDecision};
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use health::{EjectionConfig, HealthEvent, OutlierDetector};
pub use hedge::{HedgePolicy, HedgeTrigger};
pub use journal::{parse_journal, ControlAction, DecisionJournal, JournalEntry};
