//! Criticality-aware adaptive admission control.
//!
//! Overload begins at the front door: every backend owns an
//! [`AdmissionController`], an AIMD concurrency limiter in the spirit
//! of TCP congestion control and Netflix's concurrency-limits. The
//! controller learns the backend's sustainable in-flight window from
//! *measured latency versus a target* — no static capacity number is
//! configured anywhere — and refuses work beyond it before that work
//! can queue and burn everyone else's deadline budget.
//!
//! Two properties distinguish it from a plain semaphore:
//!
//! * **Adaptation.** Completed requests feed their measured latency
//!   back; every `window` samples the controller compares the epoch
//!   mean against [`AdmissionConfig::target`] and either raises the
//!   limit additively or cuts it multiplicatively. Queue-full sheds
//!   reported via [`AdmissionController::on_shed`] cut immediately
//!   (rate-limited to one cut per quarter-window so a burst of sheds
//!   does not collapse the limit to the floor).
//! * **Criticality ordering.** Requests carry an [`Criticality`] class
//!   (the `x-criticality` header). Each class may only occupy a
//!   configured fraction of the current limit, so as occupancy climbs
//!   the `shed-first` class is refused first, then `normal`, and
//!   `critical` traffic keeps the full window. Shedding is priority-
//!   ordered, never FIFO.
//!
//! Every limit change is appended to the byte-stable
//! [`DecisionJournal`] (actions
//! [`ControlAction::LimitRaise`] / [`ControlAction::LimitCut`], operands
//! = old/new limit in milli-units), and the additive step is jittered
//! by a *seeded* xorshift so fleets do not raise in lockstep while
//! replays stay bit-identical: the controller's entire behaviour is a
//! pure function of the configuration, the seed, and the observation
//! sequence.

use crate::journal::{ControlAction, DecisionJournal};
use std::sync::Mutex;
use std::time::Duration;

/// Request priority class carried end-to-end in the `x-criticality`
/// header. Ordering matters: `ShedFirst < Normal < Critical` is the
/// order in which overload sacrifices traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Criticality {
    /// Speculative / prefetch / retryable traffic: first refused.
    ShedFirst,
    /// Default class for unannotated requests.
    Normal,
    /// Revenue-critical traffic: keeps the full admission window and is
    /// browned out rather than refused for as long as the process lives.
    Critical,
}

impl Criticality {
    /// Header name used on the wire.
    pub const HEADER: &'static str = "x-criticality";

    /// All classes, in shed order.
    pub const ALL: [Criticality; 3] = [
        Criticality::ShedFirst,
        Criticality::Normal,
        Criticality::Critical,
    ];

    /// Stable wire label.
    pub fn name(&self) -> &'static str {
        match self {
            Criticality::ShedFirst => "shed-first",
            Criticality::Normal => "normal",
            Criticality::Critical => "critical",
        }
    }

    /// Parses a wire label; unknown or absent values map to `Normal`
    /// via [`Criticality::from_header`].
    pub fn parse(s: &str) -> Option<Criticality> {
        match s.trim() {
            "shed-first" | "shed_first" | "shedfirst" => Some(Criticality::ShedFirst),
            "normal" => Some(Criticality::Normal),
            "critical" => Some(Criticality::Critical),
            _ => None,
        }
    }

    /// Lenient form for header values: anything unrecognised is
    /// `Normal`, so a missing or garbled header never *raises* priority.
    pub fn from_header(value: Option<&str>) -> Criticality {
        value
            .and_then(Criticality::parse)
            .unwrap_or(Criticality::Normal)
    }

    /// Dense index for per-class counter arrays (shed order).
    pub fn index(&self) -> usize {
        match self {
            Criticality::ShedFirst => 0,
            Criticality::Normal => 1,
            Criticality::Critical => 2,
        }
    }
}

/// Tuning for an [`AdmissionController`].
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Floor for the learned limit; the controller never refuses its
    /// way below this many in-flight requests.
    pub min_limit: f64,
    /// Ceiling for the learned limit.
    pub max_limit: f64,
    /// Starting limit before any feedback has arrived.
    pub initial: f64,
    /// Latency target the epoch mean is compared against.
    pub target: Duration,
    /// Samples per adjustment epoch.
    pub window: u32,
    /// Additive raise applied after a good epoch (scaled by seeded
    /// jitter in `[0.75, 1.25)`).
    pub increase: f64,
    /// Multiplicative factor applied after a bad epoch or a shed
    /// (e.g. `0.7` cuts the window by 30%).
    pub decrease: f64,
    /// Per-class admission fraction of the current limit, indexed by
    /// [`Criticality::index`]: `shed-first` is refused once occupancy
    /// reaches `headroom[0] * limit`, and so on.
    pub headroom: [f64; 3],
    /// Seed for the additive-raise jitter.
    pub seed: u64,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            min_limit: 1.0,
            max_limit: 1024.0,
            initial: 8.0,
            target: Duration::from_millis(50),
            window: 32,
            increase: 1.0,
            decrease: 0.7,
            headroom: [0.6, 0.95, 1.0],
            seed: 0,
        }
    }
}

#[derive(Debug)]
struct AdmissionInner {
    limit: f64,
    in_flight: u32,
    /// Epoch accumulator: latency sum (µs) and sample count.
    epoch_sum_us: u64,
    epoch_n: u32,
    /// Samples observed since the last cut; rate-limits shed cuts.
    since_cut: u32,
    admitted: [u64; 3],
    refused: [u64; 3],
    rng: u64,
    journal: DecisionJournal,
}

/// AIMD adaptive concurrency limiter with criticality-ordered refusal.
/// See the module docs for the control law.
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    inner: Mutex<AdmissionInner>,
}

impl AdmissionController {
    /// Builds a controller at `config.initial` with empty counters.
    pub fn new(config: AdmissionConfig) -> AdmissionController {
        let initial = config.initial.clamp(config.min_limit, config.max_limit);
        AdmissionController {
            inner: Mutex::new(AdmissionInner {
                limit: initial,
                in_flight: 0,
                epoch_sum_us: 0,
                epoch_n: 0,
                // A fresh controller may cut on its very first shed.
                since_cut: config.window,
                admitted: [0; 3],
                refused: [0; 3],
                // splitmix64 finalizer: distinct seeds (even adjacent
                // ones) must land in distinct xorshift states.
                rng: splitmix(config.seed) | 1,
                journal: DecisionJournal::new(),
            }),
            config,
        }
    }

    /// Attempts to admit one request of class `crit`. On success the
    /// caller owns one in-flight token and must pair this with exactly
    /// one [`AdmissionController::release`] (served) or
    /// [`AdmissionController::abandon`] (never started).
    pub fn try_acquire(&self, crit: Criticality) -> bool {
        let mut g = self.inner.lock().unwrap();
        let class_limit = g.limit * self.config.headroom[crit.index()];
        if (g.in_flight as f64) < class_limit {
            g.in_flight += 1;
            g.admitted[crit.index()] += 1;
            true
        } else {
            g.refused[crit.index()] += 1;
            false
        }
    }

    /// Returns a token without feeding the control loop (the request
    /// was admitted but shed before any work happened).
    pub fn abandon(&self) {
        let mut g = self.inner.lock().unwrap();
        g.in_flight = g.in_flight.saturating_sub(1);
    }

    /// Returns a token and feeds the measured service latency back.
    /// `now` is elapsed (virtual or wall) time since the controller's
    /// epoch, used only to timestamp journal entries.
    pub fn release(&self, now: Duration, latency: Duration) {
        let mut g = self.inner.lock().unwrap();
        g.in_flight = g.in_flight.saturating_sub(1);
        g.epoch_sum_us = g
            .epoch_sum_us
            .saturating_add(latency.as_micros().min(u64::MAX as u128) as u64);
        g.epoch_n += 1;
        g.since_cut = g.since_cut.saturating_add(1);
        if g.epoch_n >= self.config.window {
            self.adjust(&mut g, now);
        }
    }

    /// Reports a queue-full shed downstream of admission: cut the limit
    /// multiplicatively, at most once per quarter-window of samples so
    /// a shed burst does not collapse the window to the floor.
    pub fn on_shed(&self, now: Duration) {
        let mut g = self.inner.lock().unwrap();
        if g.since_cut < (self.config.window / 4).max(1) {
            return;
        }
        self.cut(&mut g, now);
    }

    fn adjust(&self, g: &mut AdmissionInner, now: Duration) {
        let mean_us = g.epoch_sum_us / g.epoch_n.max(1) as u64;
        g.epoch_sum_us = 0;
        g.epoch_n = 0;
        if mean_us as u128 <= self.config.target.as_micros() {
            let old = g.limit;
            // Seeded xorshift64* jitter in [0.75, 1.25): decorrelates a
            // fleet's raises while keeping every replay bit-identical.
            g.rng ^= g.rng << 13;
            g.rng ^= g.rng >> 7;
            g.rng ^= g.rng << 17;
            let unit = (g.rng >> 11) as f64 / (1u64 << 53) as f64;
            let step = self.config.increase * (0.75 + 0.5 * unit);
            g.limit = (g.limit + step).min(self.config.max_limit);
            if (g.limit - old).abs() > f64::EPSILON {
                g.journal
                    .push(now, ControlAction::LimitRaise, milli(old), milli(g.limit));
            }
        } else {
            self.cut(g, now);
        }
    }

    fn cut(&self, g: &mut AdmissionInner, now: Duration) {
        let old = g.limit;
        g.limit = (g.limit * self.config.decrease).max(self.config.min_limit);
        g.since_cut = 0;
        g.epoch_sum_us = 0;
        g.epoch_n = 0;
        if (g.limit - old).abs() > f64::EPSILON {
            g.journal
                .push(now, ControlAction::LimitCut, milli(old), milli(g.limit));
        }
    }

    /// Current learned limit.
    pub fn limit(&self) -> f64 {
        self.inner.lock().unwrap().limit
    }

    /// Current limit in integer milli-units (for gauges and journals).
    pub fn limit_milli(&self) -> u64 {
        milli(self.inner.lock().unwrap().limit).max(0) as u64
    }

    /// Requests currently holding a token.
    pub fn in_flight(&self) -> u32 {
        self.inner.lock().unwrap().in_flight
    }

    /// Admitted count for one class.
    pub fn admitted(&self, crit: Criticality) -> u64 {
        self.inner.lock().unwrap().admitted[crit.index()]
    }

    /// Refused count for one class.
    pub fn refused(&self, crit: Criticality) -> u64 {
        self.inner.lock().unwrap().refused[crit.index()]
    }

    /// Total refusals across classes.
    pub fn refused_total(&self) -> u64 {
        self.inner.lock().unwrap().refused.iter().sum()
    }

    /// Byte-stable rendering of every limit change so far; two runs of
    /// the same seeded observation sequence compare equal.
    pub fn render_journal(&self) -> String {
        self.inner.lock().unwrap().journal.render_json()
    }

    /// Number of journaled limit changes.
    pub fn journal_len(&self) -> usize {
        self.inner.lock().unwrap().journal.len()
    }
}

/// Rounds a limit to integer milli-units for the journal's
/// integers-only format.
fn milli(x: f64) -> i64 {
    (x * 1000.0).round() as i64
}

/// splitmix64's finalizer, used to spread admission seeds.
fn splitmix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(seed: u64) -> AdmissionController {
        AdmissionController::new(AdmissionConfig {
            initial: 4.0,
            window: 8,
            seed,
            ..AdmissionConfig::default()
        })
    }

    #[test]
    fn fast_epochs_raise_the_limit_and_slow_epochs_cut_it() {
        let c = controller(7);
        let start = c.limit();
        for i in 0..32 {
            assert!(c.try_acquire(Criticality::Normal));
            c.release(Duration::from_millis(i), Duration::from_millis(1));
        }
        assert!(c.limit() > start, "fast traffic must widen the window");
        let high = c.limit();
        for i in 0..32 {
            assert!(c.try_acquire(Criticality::Critical));
            c.release(Duration::from_millis(100 + i), Duration::from_millis(500));
        }
        assert!(c.limit() < high, "slow traffic must narrow the window");
        assert!(c.limit() >= 1.0);
    }

    #[test]
    fn criticality_orders_refusal_under_occupancy() {
        let c = AdmissionController::new(AdmissionConfig {
            initial: 20.0,
            ..AdmissionConfig::default()
        });
        // Fill to 60% of the limit: shed-first is now refused while
        // normal and critical still get in.
        for _ in 0..12 {
            assert!(c.try_acquire(Criticality::Critical));
        }
        assert!(!c.try_acquire(Criticality::ShedFirst));
        assert!(c.try_acquire(Criticality::Normal)); // 13 in flight
        while c.in_flight() < 19 {
            assert!(c.try_acquire(Criticality::Critical));
        }
        // At 95% occupancy normal is refused, critical still admitted.
        assert!(!c.try_acquire(Criticality::Normal));
        assert!(c.try_acquire(Criticality::Critical)); // 20 = limit
                                                       // At the full limit even critical is refused.
        assert!(!c.try_acquire(Criticality::Critical));
        assert_eq!(c.refused(Criticality::ShedFirst), 1);
        assert_eq!(c.refused(Criticality::Normal), 1);
        assert_eq!(c.refused(Criticality::Critical), 1);
    }

    #[test]
    fn shed_cuts_are_rate_limited() {
        let c = controller(3);
        let before = c.limit();
        // The very first shed is allowed to cut…
        for _ in 0..10 {
            c.on_shed(Duration::from_millis(1));
        }
        // …but repeated sheds with no intervening samples cut only once.
        assert!((c.limit() - before * 0.7).abs() < 1e-9);
        assert_eq!(c.journal_len(), 1);
    }

    #[test]
    fn same_seed_replays_the_same_journal() {
        let run = |seed: u64| {
            let c = controller(seed);
            for i in 0..200u64 {
                let crit = Criticality::ALL[(i % 3) as usize];
                if c.try_acquire(crit) {
                    let lat = if (i / 40) % 2 == 0 { 1 } else { 400 };
                    c.release(Duration::from_millis(i), Duration::from_millis(lat));
                }
                if i % 37 == 0 {
                    c.on_shed(Duration::from_millis(i));
                }
            }
            c.render_journal()
        };
        assert_eq!(run(42), run(42), "fixed seed must replay bit-identically");
        assert_ne!(run(42), run(43), "seed must actually steer the jitter");
        assert!(run(42).contains("limit-cut"));
    }

    #[test]
    fn header_parsing_defaults_to_normal() {
        assert_eq!(
            Criticality::from_header(Some("shed-first")),
            Criticality::ShedFirst
        );
        assert_eq!(
            Criticality::from_header(Some("critical")),
            Criticality::Critical
        );
        assert_eq!(Criticality::from_header(Some("bogus")), Criticality::Normal);
        assert_eq!(Criticality::from_header(None), Criticality::Normal);
        for c in Criticality::ALL {
            assert_eq!(Criticality::parse(c.name()), Some(c));
        }
        assert!(Criticality::ShedFirst < Criticality::Normal);
        assert!(Criticality::Normal < Criticality::Critical);
    }
}
