//! The byte-stable control-plane decision journal.
//!
//! Every reaction the control plane takes — a scale decision, an
//! ejection, a rolling-update step — appends one [`JournalEntry`].
//! The journal is the determinism contract made visible: the chaos
//! acceptance test runs the same seeded experiment twice and compares
//! the rendered journals *byte for byte*. To make that comparison
//! meaningful the format is integers-only (virtual milliseconds and
//! the two action operands) with a fixed field order — no floats, no
//! hash-ordered maps, no timestamps from a wall clock.

use std::time::Duration;

/// What the control plane did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlAction {
    /// Autoscaler added replicas (`a` = from, `b` = to).
    ScaleUp,
    /// Autoscaler released a replica (`a` = from, `b` = to).
    ScaleDown,
    /// Outlier detector ejected a backend (`a` = backend,
    /// `b` = probation end in virtual ms).
    Eject,
    /// An ejected backend rejoined rotation (`a` = backend).
    Readmit,
    /// Rolling update created a surge pod (`a` = pod id).
    SurgeCreate,
    /// Rolling update began draining an old pod (`a` = pod id).
    DrainBegin,
    /// Rolling update terminated a drained pod (`a` = pod id).
    Terminate,
    /// Rolling update finished (`a` = pods replaced).
    RolloutDone,
    /// Admission controller widened its concurrency window
    /// (`a` = old limit, `b` = new limit, milli-units).
    LimitRaise,
    /// Admission controller cut its concurrency window
    /// (`a` = old limit, `b` = new limit, milli-units).
    LimitCut,
}

impl ControlAction {
    /// Stable lowercase label used in the rendered journal.
    pub fn name(&self) -> &'static str {
        match self {
            ControlAction::ScaleUp => "scale-up",
            ControlAction::ScaleDown => "scale-down",
            ControlAction::Eject => "eject",
            ControlAction::Readmit => "readmit",
            ControlAction::SurgeCreate => "surge-create",
            ControlAction::DrainBegin => "drain-begin",
            ControlAction::Terminate => "terminate",
            ControlAction::RolloutDone => "rollout-done",
            ControlAction::LimitRaise => "limit-raise",
            ControlAction::LimitCut => "limit-cut",
        }
    }

    fn from_name(name: &str) -> Option<ControlAction> {
        Some(match name {
            "scale-up" => ControlAction::ScaleUp,
            "scale-down" => ControlAction::ScaleDown,
            "eject" => ControlAction::Eject,
            "readmit" => ControlAction::Readmit,
            "surge-create" => ControlAction::SurgeCreate,
            "drain-begin" => ControlAction::DrainBegin,
            "terminate" => ControlAction::Terminate,
            "rollout-done" => ControlAction::RolloutDone,
            "limit-raise" => ControlAction::LimitRaise,
            "limit-cut" => ControlAction::LimitCut,
            _ => return None,
        })
    }
}

/// One journaled decision. `a` and `b` are action-specific operands
/// (see [`ControlAction`]); unused operands are zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalEntry {
    /// Virtual milliseconds since simulation time zero.
    pub at_ms: u64,
    /// What happened.
    pub action: ControlAction,
    /// First operand.
    pub a: i64,
    /// Second operand.
    pub b: i64,
}

/// An append-only list of control decisions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DecisionJournal {
    /// Entries in decision order.
    pub entries: Vec<JournalEntry>,
}

impl DecisionJournal {
    /// An empty journal.
    pub fn new() -> DecisionJournal {
        DecisionJournal::default()
    }

    /// Appends one decision at virtual time `at`.
    pub fn push(&mut self, at: Duration, action: ControlAction, a: i64, b: i64) {
        self.entries.push(JournalEntry {
            at_ms: at.as_millis() as u64,
            action,
            a,
            b,
        });
    }

    /// Number of journaled decisions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been journaled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries of one action kind.
    pub fn of(&self, action: ControlAction) -> Vec<&JournalEntry> {
        self.entries.iter().filter(|e| e.action == action).collect()
    }

    /// Renders the journal as a JSON array with a fixed field order and
    /// integer-only values; equal journals render to equal bytes.
    pub fn render_json(&self) -> String {
        let mut out = String::from("[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"at_ms\": {}, \"action\": \"{}\", \"a\": {}, \"b\": {}}}",
                e.at_ms,
                e.action.name(),
                e.a,
                e.b
            ));
        }
        out.push(']');
        out
    }
}

/// Parses a journal rendered by [`DecisionJournal::render_json`].
/// Hand-rolled like the rest of the workspace's JSON plumbing — the
/// format is rigid enough that field order can be relied on.
pub fn parse_journal(json: &str) -> Option<DecisionJournal> {
    let body = json.trim().strip_prefix('[')?.strip_suffix(']')?;
    let mut journal = DecisionJournal::new();
    if body.trim().is_empty() {
        return Some(journal);
    }
    for obj in body.split('}') {
        let obj = obj.trim().trim_start_matches(',').trim();
        if obj.is_empty() {
            continue;
        }
        let obj = obj.strip_prefix('{')?;
        let at_ms: u64 = field(obj, "at_ms")?.parse().ok()?;
        let action = ControlAction::from_name(field(obj, "action")?.trim_matches('"'))?;
        let a: i64 = field(obj, "a")?.parse().ok()?;
        let b: i64 = field(obj, "b")?.parse().ok()?;
        journal.entries.push(JournalEntry {
            at_ms,
            action,
            a,
            b,
        });
    }
    Some(journal)
}

/// Extracts the raw value after `"key": ` up to the next comma.
fn field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let rest = &obj[obj.find(&tag)? + tag.len()..];
    let end = rest.find(',').unwrap_or(rest.len());
    Some(rest[..end].trim())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn sample() -> DecisionJournal {
        let mut j = DecisionJournal::new();
        j.push(ms(1_000), ControlAction::ScaleUp, 2, 4);
        j.push(ms(2_500), ControlAction::Eject, 1, 12_500);
        j.push(ms(12_500), ControlAction::Readmit, 1, 0);
        j.push(ms(20_000), ControlAction::DrainBegin, 0, 0);
        j.push(ms(21_000), ControlAction::Terminate, 0, 0);
        j.push(ms(30_000), ControlAction::ScaleDown, 4, 3);
        j
    }

    #[test]
    fn render_roundtrips() {
        let j = sample();
        let json = j.render_json();
        let parsed = parse_journal(&json).expect("parse");
        assert_eq!(parsed, j);
        assert_eq!(parsed.render_json(), json, "byte-stable");
    }

    #[test]
    fn empty_journal_roundtrips() {
        let j = DecisionJournal::new();
        assert_eq!(j.render_json(), "[]");
        assert_eq!(parse_journal("[]"), Some(j));
    }

    #[test]
    fn equal_journals_render_to_equal_bytes() {
        assert_eq!(sample().render_json(), sample().render_json());
    }

    #[test]
    fn of_filters_by_action() {
        let j = sample();
        assert_eq!(j.of(ControlAction::ScaleUp).len(), 1);
        assert_eq!(j.of(ControlAction::Eject)[0].b, 12_500);
        assert_eq!(j.of(ControlAction::RolloutDone).len(), 0);
    }

    #[test]
    fn garbage_does_not_parse() {
        assert_eq!(parse_journal("not json"), None);
        assert_eq!(
            parse_journal("[{\"at_ms\": 1, \"action\": \"warp\", \"a\": 0, \"b\": 0}]"),
            None
        );
    }
}
