//! A per-backend circuit breaker (closed → open → half-open → closed).
//!
//! The breaker sits between the resilient client and one backend. While
//! *closed* it merely counts consecutive failures; at the threshold it
//! *opens* and rejects attempts outright — the backend gets breathing
//! room instead of a retry storm, and the client fails over instantly
//! rather than burning its deadline budget on a dead host. After the
//! open interval (the server's own `Retry-After` suggestion, when it
//! named one) a single probe is let through *half-open*; success closes
//! the breaker, failure reopens it.
//!
//! Time is an explicit [`Duration`] since an epoch the caller chooses
//! (wall-clock elapsed or virtual time), so the machine is a pure
//! function of its inputs — the same call sequence always walks the
//! same states, which the property suite verifies.

use std::time::Duration;

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long an open breaker rejects attempts before probing
    /// (extended by a larger server-named `Retry-After`).
    pub open_for: Duration,
    /// Probe successes required to close from half-open.
    pub half_open_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            open_for: Duration::from_millis(500),
            half_open_successes: 1,
        }
    }
}

/// The three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows; consecutive failures are counted.
    Closed,
    /// Attempts are rejected until the open interval elapses.
    Open,
    /// One probe at a time is allowed through.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// The breaker state machine. All transitions happen inside [`allow`],
/// [`record_success`] and [`record_failure`]; there is no way to reach
/// half-open except through open, which the property tests assert.
///
/// [`allow`]: CircuitBreaker::allow
/// [`record_success`]: CircuitBreaker::record_success
/// [`record_failure`]: CircuitBreaker::record_failure
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    open_until: Duration,
    probes_in_flight: u32,
    probe_successes: u32,
    opened: u64,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            open_until: Duration::ZERO,
            probes_in_flight: 0,
            probe_successes: 0,
            opened: 0,
        }
    }

    /// Current state (open flips to half-open only via [`Self::allow`],
    /// so observers see the state as of the last decision).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker has tripped open over its lifetime.
    pub fn times_opened(&self) -> u64 {
        self.opened
    }

    /// Whether an attempt may be made at `now`. Open breakers reject
    /// until their interval elapses, then admit a single half-open
    /// probe; half-open admits one probe at a time.
    pub fn allow(&mut self, now: Duration) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now >= self.open_until {
                    self.state = BreakerState::HalfOpen;
                    self.probes_in_flight = 1;
                    self.probe_successes = 0;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if self.probes_in_flight == 0 {
                    self.probes_in_flight = 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Reports a successful attempt.
    pub fn record_success(&mut self) {
        match self.state {
            BreakerState::Closed => self.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                self.probes_in_flight = self.probes_in_flight.saturating_sub(1);
                self.probe_successes += 1;
                if self.probe_successes >= self.config.half_open_successes {
                    self.state = BreakerState::Closed;
                    self.consecutive_failures = 0;
                }
            }
            // A straggler from before the breaker opened: the backend
            // answered an old request, which says nothing about now.
            BreakerState::Open => {}
        }
    }

    /// Reports a failed attempt. `retry_after` is the server's own
    /// suggested pause (a 503's `Retry-After`): an opening breaker
    /// honors the larger of it and the configured interval.
    pub fn record_failure(&mut self, now: Duration, retry_after: Option<Duration>) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.trip(now, retry_after);
                }
            }
            BreakerState::HalfOpen => {
                // The probe failed: straight back to open.
                self.probes_in_flight = self.probes_in_flight.saturating_sub(1);
                self.trip(now, retry_after);
            }
            // Failures reported while open come from attempts admitted
            // earlier; the interval already covers them.
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, now: Duration, retry_after: Option<Duration>) {
        let pause = self
            .config
            .open_for
            .max(retry_after.unwrap_or(Duration::ZERO));
        self.state = BreakerState::Open;
        self.open_until = now + pause;
        self.consecutive_failures = 0;
        self.probe_successes = 0;
        self.opened += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            open_for: ms(100),
            half_open_successes: 1,
        })
    }

    #[test]
    fn opens_after_consecutive_failures() {
        let mut b = breaker();
        for _ in 0..2 {
            assert!(b.allow(ms(0)));
            b.record_failure(ms(0), None);
            assert_eq!(b.state(), BreakerState::Closed);
        }
        b.record_failure(ms(0), None);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(ms(50)), "open breakers reject");
        assert_eq!(b.times_opened(), 1);
    }

    #[test]
    fn successes_reset_the_failure_count() {
        let mut b = breaker();
        b.record_failure(ms(0), None);
        b.record_failure(ms(0), None);
        b.record_success();
        b.record_failure(ms(0), None);
        b.record_failure(ms(0), None);
        assert_eq!(b.state(), BreakerState::Closed, "streak was broken");
    }

    #[test]
    fn half_open_probe_closes_or_reopens() {
        let mut b = breaker();
        for _ in 0..3 {
            b.record_failure(ms(0), None);
        }
        // Interval elapses: exactly one probe is admitted.
        assert!(b.allow(ms(100)));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(ms(100)), "one probe at a time");
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);

        // Same dance, but the probe fails: straight back to open.
        for _ in 0..3 {
            b.record_failure(ms(200), None);
        }
        assert!(b.allow(ms(300)));
        b.record_failure(ms(300), None);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(ms(350)));
        assert!(b.allow(ms(400)), "reopened interval elapses again");
    }

    #[test]
    fn retry_after_extends_the_open_interval() {
        let mut b = breaker();
        for _ in 0..3 {
            b.record_failure(ms(0), Some(ms(400)));
        }
        assert!(!b.allow(ms(100)), "configured interval would have elapsed");
        assert!(!b.allow(ms(399)));
        assert!(b.allow(ms(400)), "server-named pause honored");
    }

    #[test]
    fn multi_probe_configs_need_every_success() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            open_for: ms(10),
            half_open_successes: 2,
        });
        b.record_failure(ms(0), None);
        assert!(b.allow(ms(10)));
        b.record_success();
        assert_eq!(b.state(), BreakerState::HalfOpen, "one of two successes");
        assert!(b.allow(ms(11)));
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn late_reports_while_open_are_ignored() {
        let mut b = breaker();
        for _ in 0..3 {
            b.record_failure(ms(0), None);
        }
        b.record_success();
        b.record_failure(ms(10), Some(ms(10_000)));
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.allow(ms(100)), "interval unchanged by late failure");
    }
}
