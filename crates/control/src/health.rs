//! Passive outlier detection with ejection, a minimum-healthy floor and
//! seeded exponential probation.
//!
//! The load-balancing service feeds every request outcome (and every
//! active `/ping` probe result) into an [`OutlierDetector`]. A backend
//! that fails persistently — a streak of consecutive failures, or a
//! failure ratio over the window once enough samples have accrued — is
//! *ejected* from rotation. Two rules keep ejection from making things
//! worse:
//!
//! * **floor** — ejection is refused whenever it would drop the
//!   available set below `ceil(floor_fraction * n)` backends (at least
//!   one). A fleet-wide outage then degrades to "route to sick backends"
//!   rather than "route to nobody".
//! * **probation** — an ejected backend is re-admitted automatically
//!   after `base_probation * 2^(ejections-1)` (capped), jittered by a
//!   seeded hash so repeated offenders back off without synchronising.
//!   Re-admission starts a clean slate; failing again immediately earns
//!   a longer sentence.
//!
//! Everything is a pure function of (`seed`, call sequence, explicit
//! `now`), so chaos runs replay bit-identically.

use etude_faults::injector::unit_draw;
use std::time::Duration;

/// Ejection tuning.
#[derive(Debug, Clone, Copy)]
pub struct EjectionConfig {
    /// Consecutive failures that eject on their own.
    pub consecutive_failures: u32,
    /// Window failure ratio that ejects once `min_samples` accrued.
    pub failure_ratio: f64,
    /// Samples needed before the ratio rule applies.
    pub min_samples: u64,
    /// Fraction of the pool that must stay available (≥ 1 backend).
    pub floor_fraction: f64,
    /// First probation sentence; doubles per repeat ejection.
    pub base_probation: Duration,
    /// Probation cap.
    pub max_probation: Duration,
    /// Jitter seed.
    pub seed: u64,
}

impl Default for EjectionConfig {
    fn default() -> EjectionConfig {
        EjectionConfig {
            consecutive_failures: 5,
            failure_ratio: 0.5,
            min_samples: 20,
            floor_fraction: 0.5,
            base_probation: Duration::from_secs(10),
            max_probation: Duration::from_secs(300),
            seed: 42,
        }
    }
}

/// What [`OutlierDetector::record`] decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthEvent {
    /// Nothing changed.
    None,
    /// The backend was ejected until the contained time.
    Ejected(Duration),
    /// The backend would have been ejected but the floor refused it.
    FloorHeld,
    /// The backend's probation elapsed; it rejoined the pool.
    Readmitted,
}

#[derive(Debug, Clone, Default)]
struct BackendHealth {
    consecutive_failures: u32,
    successes: u64,
    failures: u64,
    ejected: bool,
    ejected_until: Duration,
    ejections: u32,
}

impl BackendHealth {
    fn reset_window(&mut self) {
        self.consecutive_failures = 0;
        self.successes = 0;
        self.failures = 0;
    }
}

/// Tracks per-backend health and decides ejection / re-admission.
#[derive(Debug, Clone)]
pub struct OutlierDetector {
    config: EjectionConfig,
    backends: Vec<BackendHealth>,
}

impl OutlierDetector {
    /// A detector over `n` initially-healthy backends.
    pub fn new(n: usize, config: EjectionConfig) -> OutlierDetector {
        OutlierDetector {
            config,
            backends: vec![BackendHealth::default(); n],
        }
    }

    /// Number of tracked backends.
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// True when no backends are tracked.
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    /// Grows the pool (new backends start healthy). Used when a
    /// deployment scales up.
    pub fn resize(&mut self, n: usize) {
        self.backends.resize(n, BackendHealth::default());
    }

    /// The minimum number of backends that must remain available.
    pub fn floor(&self) -> usize {
        let n = self.backends.len();
        if n == 0 {
            return 0;
        }
        (((n as f64) * self.config.floor_fraction).ceil() as usize).clamp(1, n)
    }

    /// Whether backend `idx` may receive traffic at `now`. Serving a
    /// request to a backend whose probation has elapsed re-admits it
    /// with a clean window.
    pub fn admit(&mut self, idx: usize, now: Duration) -> bool {
        self.admit_noting_readmission(idx, now).0
    }

    /// Like [`Self::admit`], but also reports whether *this call*
    /// re-admitted the backend (its probation just elapsed) — the
    /// moment the service journals as a readmission.
    pub fn admit_noting_readmission(&mut self, idx: usize, now: Duration) -> (bool, bool) {
        let b = &mut self.backends[idx];
        if b.ejected && now >= b.ejected_until {
            b.ejected = false;
            b.reset_window();
            return (true, true);
        }
        (!b.ejected, false)
    }

    /// True when backend `idx` sits ejected at `now` (read-only — does
    /// not re-admit).
    pub fn is_ejected(&self, idx: usize, now: Duration) -> bool {
        let b = &self.backends[idx];
        b.ejected && now < b.ejected_until
    }

    /// Backends currently available at `now`.
    pub fn available_count(&self, now: Duration) -> usize {
        (0..self.backends.len())
            .filter(|&i| !self.is_ejected(i, now))
            .count()
    }

    /// Feeds one outcome (request or active probe) for backend `idx`.
    pub fn record(&mut self, idx: usize, ok: bool, now: Duration) -> HealthEvent {
        // First let any elapsed probation clear, so the floor sees the
        // true available set.
        let (_, readmitted) = self.admit_noting_readmission(idx, now);
        let c = self.config;
        let b = &mut self.backends[idx];
        if b.ejected {
            return HealthEvent::None;
        }
        let idle_event = if readmitted {
            HealthEvent::Readmitted
        } else {
            HealthEvent::None
        };
        if ok {
            b.consecutive_failures = 0;
            b.successes += 1;
            return idle_event;
        }
        b.consecutive_failures += 1;
        b.failures += 1;
        let samples = b.successes + b.failures;
        let streak = b.consecutive_failures >= c.consecutive_failures;
        let ratio =
            samples >= c.min_samples && (b.failures as f64) / (samples as f64) >= c.failure_ratio;
        if !(streak || ratio) {
            return idle_event;
        }
        if self.available_count(now) <= self.floor() {
            // Over the floor the verdict stands but the sentence is
            // suspended; the window keeps accumulating so the backend
            // is ejected the moment room opens up.
            return HealthEvent::FloorHeld;
        }
        let b = &mut self.backends[idx];
        b.ejections += 1;
        let exp = b.ejections.saturating_sub(1).min(16);
        let base = c
            .base_probation
            .saturating_mul(1 << exp)
            .min(c.max_probation);
        // Jitter in [0.75, 1.25) of the sentence, seeded per (backend,
        // offence) so replays match and fleets do not re-admit in sync.
        let draw = unit_draw(c.seed, idx as u64, b.ejections as u64);
        let probation = base.mul_f64(0.75 + 0.5 * draw);
        b.ejected = true;
        b.ejected_until = now + probation;
        b.reset_window();
        HealthEvent::Ejected(b.ejected_until)
    }

    /// Times backend `idx` has been ejected over its lifetime.
    pub fn ejections(&self, idx: usize) -> u32 {
        self.backends[idx].ejections
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(v: u64) -> Duration {
        Duration::from_secs(v)
    }

    fn config() -> EjectionConfig {
        EjectionConfig {
            consecutive_failures: 3,
            failure_ratio: 0.5,
            min_samples: 10,
            floor_fraction: 0.5,
            base_probation: secs(10),
            max_probation: secs(100),
            seed: 7,
        }
    }

    #[test]
    fn streak_ejects_and_probation_readmits() {
        let mut d = OutlierDetector::new(4, config());
        assert_eq!(d.record(0, false, secs(0)), HealthEvent::None);
        assert_eq!(d.record(0, false, secs(0)), HealthEvent::None);
        let until = match d.record(0, false, secs(0)) {
            HealthEvent::Ejected(u) => u,
            other => panic!("expected ejection, got {other:?}"),
        };
        assert!(
            until >= secs(7) && until <= secs(13),
            "jittered ~10s: {until:?}"
        );
        assert!(d.is_ejected(0, secs(1)));
        assert!(!d.admit(0, secs(1)), "still serving probation");
        assert!(d.admit(0, until), "probation elapsed re-admits");
        assert!(!d.is_ejected(0, until));
    }

    #[test]
    fn success_breaks_the_streak() {
        let mut d = OutlierDetector::new(2, config());
        d.record(0, false, secs(0));
        d.record(0, false, secs(0));
        d.record(0, true, secs(0));
        assert_eq!(d.record(0, false, secs(0)), HealthEvent::None);
    }

    #[test]
    fn ratio_rule_needs_min_samples() {
        let mut d = OutlierDetector::new(4, config());
        // Alternate success/failure: never a 3-streak, ratio exactly
        // 0.5 — ejects only once 10 samples have accrued.
        let mut event = HealthEvent::None;
        for i in 0..10 {
            event = d.record(1, i % 2 == 0, secs(0));
            if i < 9 {
                assert_eq!(event, HealthEvent::None, "sample {i}");
            }
        }
        assert!(matches!(event, HealthEvent::Ejected(_)));
    }

    #[test]
    fn floor_refuses_the_last_ejections() {
        let mut d = OutlierDetector::new(4, config());
        // Floor = 2 of 4. Eject two backends, then the next two hold.
        for idx in 0..2 {
            for _ in 0..3 {
                d.record(idx, false, secs(0));
            }
            assert!(d.is_ejected(idx, secs(1)));
        }
        for idx in 2..4 {
            for _ in 0..3 {
                let event = d.record(idx, false, secs(0));
                assert!(!matches!(event, HealthEvent::Ejected(_)), "{event:?}");
            }
            assert!(!d.is_ejected(idx, secs(1)), "floor held backend {idx}");
        }
        assert_eq!(d.available_count(secs(1)), 2);
        assert_eq!(d.floor(), 2);
    }

    #[test]
    fn repeat_offenders_serve_longer_sentences() {
        let mut d = OutlierDetector::new(8, config());
        let mut now = secs(0);
        let mut last = Duration::ZERO;
        for offence in 1..=3u32 {
            let until = loop {
                if let HealthEvent::Ejected(u) = d.record(0, false, now) {
                    break u;
                }
            };
            let sentence = until - now;
            assert!(
                sentence > last.mul_f64(1.2),
                "offence {offence}: {sentence:?} vs {last:?}"
            );
            last = sentence;
            now = until;
            assert!(d.admit(0, now));
        }
    }

    #[test]
    fn sentences_are_capped() {
        let mut cfg = config();
        cfg.max_probation = secs(30);
        let mut d = OutlierDetector::new(4, cfg);
        let mut now = secs(0);
        for _ in 0..6 {
            let until = loop {
                if let HealthEvent::Ejected(u) = d.record(0, false, now) {
                    break u;
                }
            };
            assert!(until - now <= secs(38), "cap * 1.25 jitter");
            now = until;
            d.admit(0, now);
        }
    }

    #[test]
    fn replay_is_bit_identical() {
        let run = || {
            let mut d = OutlierDetector::new(4, config());
            let mut log = Vec::new();
            for step in 0..200u64 {
                let idx = (step % 4) as usize;
                let ok = step % 3 != 0;
                if let HealthEvent::Ejected(u) = d.record(idx, ok, Duration::from_millis(step * 50))
                {
                    log.push((step, idx, u.as_nanos()));
                }
            }
            log
        };
        assert_eq!(run(), run());
    }
}
