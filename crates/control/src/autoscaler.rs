//! SLO-driven autoscaler: an HPA-style reconciler with cooldown and
//! hysteresis.
//!
//! Each tick the runner hands the autoscaler one [`FleetObs`] — the
//! windowed fleet snapshot boiled down to the three pressure signals
//! ETUDE cares about: queue depth per replica, p99 latency against the
//! SLO target, and the SLO burn rate. [`Autoscaler::decide`] maps that
//! observation to an optional replica change. The mapping is a pure
//! function of (config, tick sequence, observations): no clocks, no
//! randomness beyond the seeded config, so a replayed chaos run emits a
//! byte-identical decision journal.
//!
//! Three guards keep the trajectory sane:
//!
//! * **bounds** — replicas never leave `[min_replicas, max_replicas]`,
//! * **cooldown** — after any scale event, further moves in the same
//!   direction wait out a per-direction tick cooldown (scaling up is
//!   allowed sooner than scaling down, the usual HPA asymmetry),
//! * **hysteresis** — scale-down requires the pressure score to sit
//!   below `down_hysteresis` for `down_cooldown_ticks` *consecutive*
//!   ticks, so a single quiet tick in a noisy window releases nothing.

use std::time::Duration;

/// Autoscaler tuning.
#[derive(Debug, Clone, Copy)]
pub struct AutoscalerConfig {
    /// Lower replica bound.
    pub min_replicas: usize,
    /// Upper replica bound.
    pub max_replicas: usize,
    /// Queue depth per replica considered "at capacity".
    pub target_queue_per_replica: f64,
    /// p99 considered "at capacity" (usually the latency SLO).
    pub target_p99: Duration,
    /// Ticks to wait after a scale-up before scaling up again.
    pub up_cooldown_ticks: u64,
    /// Consecutive calm ticks required before releasing a replica.
    pub down_cooldown_ticks: u64,
    /// Score below which a tick counts as calm (must be < 1).
    pub down_hysteresis: f64,
    /// Seed recorded into decisions for provenance.
    pub seed: u64,
}

impl Default for AutoscalerConfig {
    fn default() -> AutoscalerConfig {
        AutoscalerConfig {
            min_replicas: 1,
            max_replicas: 8,
            target_queue_per_replica: 8.0,
            target_p99: Duration::from_millis(50),
            up_cooldown_ticks: 3,
            down_cooldown_ticks: 10,
            down_hysteresis: 0.5,
            seed: 42,
        }
    }
}

/// One tick's observation of the fleet.
#[derive(Debug, Clone, Copy)]
pub struct FleetObs {
    /// Reconciler tick number.
    pub tick: u64,
    /// Replicas currently passing readiness.
    pub ready_replicas: usize,
    /// Replicas that exist (ready or starting).
    pub total_replicas: usize,
    /// Summed queue depth across ready replicas.
    pub queue_depth: u64,
    /// Fleet p99 over the last window, in microseconds.
    pub p99_us: u64,
    /// SLO burn rate over the short window (1.0 = burning exactly the
    /// error budget).
    pub burn: f64,
}

/// A scale decision: change `from` replicas into `to`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaleDecision {
    /// Tick the decision fired on.
    pub tick: u64,
    /// Replica count before.
    pub from: usize,
    /// Replica count after.
    pub to: usize,
    /// Pressure score in milli-units (integer, for byte-stable logs).
    pub score_milli: u64,
    /// Which signal dominated: `"queue"`, `"latency"`, `"burn"` or
    /// `"calm"` (scale-down).
    pub reason: &'static str,
}

/// The reconciler. Feed it one [`FleetObs`] per tick.
#[derive(Debug, Clone)]
pub struct Autoscaler {
    config: AutoscalerConfig,
    last_scale_up_tick: Option<u64>,
    calm_streak: u64,
    decisions: u64,
}

impl Autoscaler {
    /// A fresh reconciler.
    pub fn new(config: AutoscalerConfig) -> Autoscaler {
        Autoscaler {
            config,
            last_scale_up_tick: None,
            calm_streak: 0,
            decisions: 0,
        }
    }

    /// The autoscaler's view of fleet pressure: the max of the three
    /// normalised signals, in milli-units. 1000 = exactly at capacity.
    /// Integer arithmetic end-to-end so replays are byte-identical.
    fn score_milli(&self, obs: &FleetObs) -> (u64, &'static str) {
        let replicas = obs.ready_replicas.max(1) as f64;
        let queue = (obs.queue_depth as f64 / replicas) / self.config.target_queue_per_replica;
        let latency = obs.p99_us as f64 / (self.config.target_p99.as_micros().max(1) as f64);
        // Burn 6.0 (the PR 4 slow-burn page threshold) maps to "at
        // capacity": a paging fleet is by definition under-provisioned.
        let burn = obs.burn / 6.0;
        let mut best = ((queue * 1000.0) as u64, "queue");
        for (milli, name) in [
            ((latency * 1000.0) as u64, "latency"),
            ((burn * 1000.0) as u64, "burn"),
        ] {
            if milli > best.0 {
                best = (milli, name);
            }
        }
        best
    }

    /// Reconciles one tick: returns the scale decision, if any.
    pub fn decide(&mut self, obs: &FleetObs) -> Option<ScaleDecision> {
        let c = self.config;
        let (score, signal) = self.score_milli(obs);
        let current = obs.total_replicas;

        // Pressure over 110% of capacity: scale up, proportionally to
        // the overshoot (ceil(current * score)), inside the cooldown.
        if score > 1100 {
            self.calm_streak = 0;
            let in_cooldown = self
                .last_scale_up_tick
                .is_some_and(|t| obs.tick < t + c.up_cooldown_ticks);
            if in_cooldown || current >= c.max_replicas {
                return None;
            }
            let want = ((current as u64 * score).div_ceil(1000) as usize)
                .clamp(current + 1, c.max_replicas);
            self.last_scale_up_tick = Some(obs.tick);
            self.decisions += 1;
            return Some(ScaleDecision {
                tick: obs.tick,
                from: current,
                to: want,
                score_milli: score,
                reason: signal,
            });
        }

        // Calm tick: count the streak, release one replica at a time
        // once the streak covers the down cooldown.
        if (score as f64) < c.down_hysteresis * 1000.0 {
            self.calm_streak += 1;
            if self.calm_streak >= c.down_cooldown_ticks && current > c.min_replicas {
                self.calm_streak = 0;
                self.decisions += 1;
                return Some(ScaleDecision {
                    tick: obs.tick,
                    from: current,
                    to: current - 1,
                    score_milli: score,
                    reason: "calm",
                });
            }
            return None;
        }

        // In-between pressure: hold steady, break any calm streak.
        self.calm_streak = 0;
        None
    }

    /// Total decisions emitted.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// The config this reconciler runs under.
    pub fn config(&self) -> &AutoscalerConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(tick: u64, replicas: usize, queue: u64, p99_ms: u64, burn: f64) -> FleetObs {
        FleetObs {
            tick,
            ready_replicas: replicas,
            total_replicas: replicas,
            queue_depth: queue,
            p99_us: p99_ms * 1000,
            burn,
        }
    }

    fn scaler() -> Autoscaler {
        Autoscaler::new(AutoscalerConfig {
            min_replicas: 1,
            max_replicas: 8,
            target_queue_per_replica: 8.0,
            target_p99: Duration::from_millis(50),
            up_cooldown_ticks: 3,
            down_cooldown_ticks: 5,
            down_hysteresis: 0.5,
            seed: 42,
        })
    }

    #[test]
    fn queue_pressure_scales_up_proportionally() {
        let mut a = scaler();
        // 2 replicas, 40 queued = 20/replica vs target 8 → score 2.5 →
        // ceil(2 * 2.5) = 5 replicas.
        let d = a.decide(&obs(0, 2, 40, 10, 0.0)).expect("scale up");
        assert_eq!((d.from, d.to), (2, 5));
        assert_eq!(d.reason, "queue");
        assert_eq!(d.score_milli, 2500);
    }

    #[test]
    fn up_cooldown_blocks_consecutive_bumps() {
        let mut a = scaler();
        assert!(a.decide(&obs(0, 2, 40, 10, 0.0)).is_some());
        assert!(a.decide(&obs(1, 5, 100, 10, 0.0)).is_none(), "cooldown");
        assert!(a.decide(&obs(2, 5, 100, 10, 0.0)).is_none(), "cooldown");
        assert!(a.decide(&obs(3, 5, 100, 10, 0.0)).is_some(), "released");
    }

    #[test]
    fn latency_and_burn_also_trigger() {
        let mut a = scaler();
        let d = a.decide(&obs(0, 2, 0, 100, 0.0)).expect("latency");
        assert_eq!(d.reason, "latency");
        let mut a = scaler();
        let d = a.decide(&obs(0, 2, 0, 10, 14.4)).expect("burn");
        assert_eq!(d.reason, "burn");
    }

    #[test]
    fn bounds_are_respected() {
        let mut a = scaler();
        // Already at max: pressure is ignored.
        let at_max = FleetObs {
            total_replicas: 8,
            ..obs(0, 8, 1000, 10, 0.0)
        };
        assert!(a.decide(&at_max).is_none());
        // At min: calm ticks release nothing.
        let mut a = scaler();
        for tick in 0..20 {
            assert!(a.decide(&obs(tick, 1, 0, 1, 0.0)).is_none());
        }
    }

    #[test]
    fn scale_down_needs_a_consecutive_calm_streak() {
        let mut a = scaler();
        for tick in 0..4 {
            assert!(a.decide(&obs(tick, 4, 0, 1, 0.0)).is_none());
        }
        // A busy (but not scale-up-worthy) tick resets the streak.
        assert!(a.decide(&obs(4, 4, 26, 1, 0.0)).is_none());
        for tick in 5..9 {
            assert!(a.decide(&obs(tick, 4, 0, 1, 0.0)).is_none());
        }
        let d = a.decide(&obs(9, 4, 0, 1, 0.0)).expect("calm streak");
        assert_eq!((d.from, d.to), (4, 3));
        assert_eq!(d.reason, "calm");
        // The streak restarts after the release: one replica per streak.
        for tick in 10..14 {
            assert!(a.decide(&obs(tick, 3, 0, 1, 0.0)).is_none());
        }
        assert!(a.decide(&obs(14, 3, 0, 1, 0.0)).is_some());
    }

    #[test]
    fn decisions_replay_bit_identically() {
        let run = || {
            let mut a = scaler();
            let mut out = Vec::new();
            for tick in 0..100u64 {
                let queue = (tick * 7) % 60;
                let p99 = 5 + (tick % 11) * 9;
                if let Some(d) = a.decide(&obs(tick, 2 + (tick as usize % 3), queue, p99, 0.0)) {
                    out.push(format!(
                        "{}:{}->{}:{}:{}",
                        d.tick, d.from, d.to, d.score_milli, d.reason
                    ));
                }
            }
            out
        };
        assert_eq!(run(), run());
    }
}
