//! Latency-quantile hedging trigger.
//!
//! A hedged request launches one backup attempt on another backend when
//! the primary has been silent longer than the fleet's p95 — the classic
//! tail-at-scale move: the 5% slowest requests get a second chance while
//! the other 95% cost nothing extra. [`HedgeTrigger`] owns the latency
//! history (an HDR histogram of completed attempts) and answers one
//! question: *how long should the client wait before hedging right now?*
//!
//! Until [`HedgePolicy::min_observations`] attempts have completed the
//! answer is "don't" — hedging off a cold histogram would fire on noise.

use etude_metrics::Histogram;
use std::time::Duration;

/// Hedging tuning.
#[derive(Debug, Clone, Copy)]
pub struct HedgePolicy {
    /// Latency quantile after which the backup attempt launches.
    pub quantile: f64,
    /// Completed attempts required before hedging arms.
    pub min_observations: u64,
    /// Never hedge sooner than this (guards a degenerate histogram).
    pub min_delay: Duration,
    /// Never wait longer than this once armed.
    pub max_delay: Duration,
}

impl Default for HedgePolicy {
    fn default() -> HedgePolicy {
        HedgePolicy {
            quantile: 0.95,
            min_observations: 50,
            min_delay: Duration::from_millis(1),
            max_delay: Duration::from_secs(1),
        }
    }
}

impl HedgePolicy {
    /// A policy that always hedges after a fixed delay — for tests and
    /// experiments where the trigger itself is not under study.
    pub fn fixed(delay: Duration) -> HedgePolicy {
        HedgePolicy {
            quantile: 0.95,
            min_observations: 0,
            min_delay: delay,
            max_delay: delay,
        }
    }
}

/// Decides the hedge delay from observed attempt latencies.
#[derive(Debug, Clone)]
pub struct HedgeTrigger {
    policy: HedgePolicy,
    hist: Histogram,
    observations: u64,
    hedges: u64,
    hedge_wins: u64,
}

impl HedgeTrigger {
    /// A cold (disarmed) trigger.
    pub fn new(policy: HedgePolicy) -> HedgeTrigger {
        HedgeTrigger {
            policy,
            hist: Histogram::new(),
            observations: 0,
            hedges: 0,
            hedge_wins: 0,
        }
    }

    /// Records one completed attempt's latency.
    pub fn record(&mut self, latency: Duration) {
        self.hist.record(latency.as_micros() as u64);
        self.observations += 1;
    }

    /// The delay after which an unanswered request should hedge, or
    /// `None` while the trigger is still cold.
    pub fn delay(&self) -> Option<Duration> {
        if self.observations < self.policy.min_observations {
            return None;
        }
        let us = if self.policy.min_observations == 0 && self.observations == 0 {
            0
        } else {
            self.hist.value_at_quantile(self.policy.quantile)
        };
        Some(Duration::from_micros(us).clamp(self.policy.min_delay, self.policy.max_delay))
    }

    /// Bumps the launched-hedge counter; `won` marks the backup attempt
    /// answering first.
    pub fn note_hedge(&mut self, won: bool) {
        self.hedges += 1;
        if won {
            self.hedge_wins += 1;
        }
    }

    /// Completed attempts observed so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// (launched, won-by-backup) hedge counts.
    pub fn hedge_stats(&self) -> (u64, u64) {
        (self.hedges, self.hedge_wins)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_trigger_never_hedges() {
        let mut t = HedgeTrigger::new(HedgePolicy {
            min_observations: 10,
            ..HedgePolicy::default()
        });
        for _ in 0..9 {
            t.record(Duration::from_millis(5));
            assert_eq!(t.delay(), None);
        }
        t.record(Duration::from_millis(5));
        assert!(t.delay().is_some(), "armed at min_observations");
    }

    #[test]
    fn delay_tracks_the_tail_quantile() {
        let mut t = HedgeTrigger::new(HedgePolicy {
            quantile: 0.95,
            min_observations: 100,
            min_delay: Duration::from_micros(1),
            max_delay: Duration::from_secs(10),
        });
        // 95 fast attempts, 5 slow ones: p95 lands at the fast/slow
        // boundary, well below the 100ms stragglers.
        for _ in 0..95 {
            t.record(Duration::from_millis(2));
        }
        for _ in 0..5 {
            t.record(Duration::from_millis(100));
        }
        let d = t.delay().unwrap();
        assert!(d >= Duration::from_millis(2), "{d:?}");
        assert!(d < Duration::from_millis(100), "{d:?}");
    }

    #[test]
    fn delay_is_clamped() {
        let mut t = HedgeTrigger::new(HedgePolicy {
            quantile: 0.95,
            min_observations: 1,
            min_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(20),
        });
        t.record(Duration::from_micros(50));
        assert_eq!(t.delay(), Some(Duration::from_millis(10)), "floor");
        for _ in 0..100 {
            t.record(Duration::from_secs(2));
        }
        assert_eq!(t.delay(), Some(Duration::from_millis(20)), "ceiling");
    }

    #[test]
    fn fixed_policy_is_always_armed() {
        let t = HedgeTrigger::new(HedgePolicy::fixed(Duration::from_millis(7)));
        assert_eq!(t.delay(), Some(Duration::from_millis(7)));
    }

    #[test]
    fn hedge_stats_accumulate() {
        let mut t = HedgeTrigger::new(HedgePolicy::default());
        t.note_hedge(true);
        t.note_hedge(false);
        t.note_hedge(true);
        assert_eq!(t.hedge_stats(), (3, 2));
    }
}
