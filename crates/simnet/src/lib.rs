//! # etude-simnet
//!
//! A deterministic discrete-event simulation (DES) substrate. The paper's
//! end-to-end experiments run for ten minutes of wall-clock per
//! configuration on a Kubernetes cluster; this reproduction executes the
//! *same server and load-generator logic* under a virtual clock, so a
//! ten-minute ramp completes in a fraction of a second and roughly four
//! hundred experiment runs (Section III-C) remain tractable.
//!
//! Design: a single-threaded engine ([`Sim`]) with a monotone virtual
//! clock and a binary-heap event queue. Events are boxed closures;
//! simulation entities (servers, load generators) live in `Rc<RefCell>`
//! cells captured by those closures — the conventional process-interaction
//! style for Rust DES. Determinism: ties in firing time are broken by
//! schedule order (a strictly increasing sequence number), and every
//! entity derives its randomness from seeded [`rand::rngs::SmallRng`]
//! streams.

pub mod link;

use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::rc::Rc;
use std::time::Duration;

/// Virtual time in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Adds a duration.
    pub fn after(self, d: Duration) -> SimTime {
        SimTime(
            self.0
                .saturating_add(d.as_nanos().min(u128::from(u64::MAX)) as u64),
        )
    }

    /// Elapsed duration since an earlier instant.
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// This instant as a duration since the epoch.
    pub fn as_duration(self) -> Duration {
        Duration::from_nanos(self.0)
    }

    /// The one-second tick index containing this instant (Algorithm 2's
    /// tick counter).
    pub fn tick(self) -> u64 {
        self.0 / 1_000_000_000
    }
}

type EventFn = Box<dyn FnOnce(&mut Sim)>;

struct Scheduled {
    at: SimTime,
    seq: u64,
    event: EventFn,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first, with
        // schedule order (seq) as the deterministic tie-break.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The discrete-event simulation engine.
pub struct Sim {
    now: SimTime,
    queue: BinaryHeap<Scheduled>,
    seq: u64,
    events_fired: u64,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Creates an empty simulation at time zero.
    pub fn new() -> Sim {
        Sim {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            seq: 0,
            events_fired: 0,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events fired so far.
    pub fn events_fired(&self) -> u64 {
        self.events_fired
    }

    /// Schedules `event` at absolute time `at` (clamped to now for past
    /// times — DES time never goes backwards).
    pub fn schedule_at<F: FnOnce(&mut Sim) + 'static>(&mut self, at: SimTime, event: F) {
        let at = at.max(self.now);
        self.seq += 1;
        self.queue.push(Scheduled {
            at,
            seq: self.seq,
            event: Box::new(event),
        });
    }

    /// Schedules `event` after a delay.
    pub fn schedule_in<F: FnOnce(&mut Sim) + 'static>(&mut self, delay: Duration, event: F) {
        self.schedule_at(self.now.after(delay), event);
    }

    /// Runs until the queue drains or `deadline` is reached. Events at
    /// exactly the deadline still fire. Returns the number of events run.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut fired = 0;
        while let Some(next) = self.queue.peek() {
            if next.at > deadline {
                break;
            }
            let scheduled = self.queue.pop().expect("peeked");
            self.now = scheduled.at;
            (scheduled.event)(self);
            fired += 1;
            self.events_fired += 1;
        }
        // Advance the clock to the deadline even if the queue went quiet.
        if self.now < deadline {
            self.now = deadline;
        }
        fired
    }

    /// Runs until the event queue is empty.
    pub fn run_to_completion(&mut self) -> u64 {
        let mut fired = 0;
        while let Some(scheduled) = self.queue.pop() {
            self.now = scheduled.at;
            (scheduled.event)(self);
            fired += 1;
            self.events_fired += 1;
        }
        fired
    }
}

/// Convenience alias for shared simulation entities.
pub type Shared<T> = Rc<RefCell<T>>;

/// Wraps a value for shared ownership across event closures.
pub fn shared<T>(value: T) -> Shared<T> {
    Rc::new(RefCell::new(value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new();
        let log = shared(Vec::<u64>::new());
        for &delay in &[30u64, 10, 20] {
            let log = Rc::clone(&log);
            sim.schedule_in(Duration::from_millis(delay), move |s| {
                log.borrow_mut()
                    .push(s.now().as_duration().as_millis() as u64);
            });
        }
        sim.run_to_completion();
        assert_eq!(*log.borrow(), vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut sim = Sim::new();
        let log = shared(Vec::<u32>::new());
        for i in 0..5u32 {
            let log = Rc::clone(&log);
            sim.schedule_in(Duration::from_millis(1), move |_| log.borrow_mut().push(i));
        }
        sim.run_to_completion();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Sim::new();
        let counter = shared(0u64);
        fn tick(sim: &mut Sim, counter: Shared<u64>, remaining: u32) {
            *counter.borrow_mut() += 1;
            if remaining > 0 {
                sim.schedule_in(Duration::from_secs(1), move |s| {
                    tick(s, counter, remaining - 1)
                });
            }
        }
        let c = Rc::clone(&counter);
        sim.schedule_at(SimTime::ZERO, move |s| tick(s, c, 9));
        sim.run_to_completion();
        assert_eq!(*counter.borrow(), 10);
        assert_eq!(sim.now().as_duration(), Duration::from_secs(9));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Sim::new();
        let fired = shared(0u64);
        for i in 1..=10u64 {
            let fired = Rc::clone(&fired);
            sim.schedule_in(Duration::from_secs(i), move |_| *fired.borrow_mut() += 1);
        }
        let n = sim.run_until(SimTime::ZERO.after(Duration::from_secs(5)));
        assert_eq!(n, 5);
        assert_eq!(*fired.borrow(), 5);
        assert_eq!(sim.now().as_duration(), Duration::from_secs(5));
        sim.run_to_completion();
        assert_eq!(*fired.borrow(), 10);
    }

    #[test]
    fn past_events_are_clamped_to_now() {
        let mut sim = Sim::new();
        sim.schedule_in(Duration::from_secs(2), |s| {
            // Scheduling "in the past" fires immediately (at now).
            s.schedule_at(SimTime::ZERO, |s2| {
                assert_eq!(s2.now().as_duration(), Duration::from_secs(2));
            });
        });
        sim.run_to_completion();
    }

    #[test]
    fn tick_indexing_matches_seconds() {
        assert_eq!(SimTime::ZERO.tick(), 0);
        assert_eq!(SimTime::ZERO.after(Duration::from_millis(999)).tick(), 0);
        assert_eq!(SimTime::ZERO.after(Duration::from_millis(1000)).tick(), 1);
        assert_eq!(SimTime::ZERO.after(Duration::from_secs(61)).tick(), 61);
    }
}
