//! Simulated network links.
//!
//! In the paper's setup the load generator and the inference server run on
//! separate Kubernetes nodes connected through a ClusterIP service;
//! request and response each cross the pod network. A [`Link`] models that
//! hop as a base latency plus light log-normal-ish jitter.

use crate::{Sim, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// A one-way network link with jittered delivery latency.
#[derive(Debug)]
pub struct Link {
    base: Duration,
    jitter: Duration,
    rng: SmallRng,
}

impl Link {
    /// Creates a link with `base` latency and up to `jitter` extra delay.
    pub fn new(base: Duration, jitter: Duration, seed: u64) -> Link {
        Link {
            base,
            jitter,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// An intra-cluster pod-to-pod link (~150 µs ± 100 µs), the same
    /// order as GKE's east-west latency.
    pub fn cluster(seed: u64) -> Link {
        Link::new(Duration::from_micros(150), Duration::from_micros(100), seed)
    }

    /// Samples a delivery latency.
    pub fn sample(&mut self) -> Duration {
        if self.jitter.is_zero() {
            return self.base;
        }
        // Squaring a uniform sample skews the jitter towards small values
        // while keeping an occasional slow packet, loosely log-normal.
        let u: f64 = self.rng.gen::<f64>();
        self.base + Duration::from_secs_f64(self.jitter.as_secs_f64() * u * u)
    }

    /// Schedules `event` for delivery across the link.
    pub fn deliver<F: FnOnce(&mut Sim) + 'static>(&mut self, sim: &mut Sim, event: F) {
        let delay = self.sample();
        sim.schedule_in(delay, event);
    }

    /// Delivery time for an event sent now.
    pub fn delivery_time(&mut self, now: SimTime) -> SimTime {
        now.after(self.sample())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_bounded_by_base_and_jitter() {
        let mut link = Link::new(Duration::from_micros(100), Duration::from_micros(50), 1);
        for _ in 0..1000 {
            let d = link.sample();
            assert!(d >= Duration::from_micros(100));
            assert!(d <= Duration::from_micros(150));
        }
    }

    #[test]
    fn zero_jitter_is_deterministic() {
        let mut link = Link::new(Duration::from_micros(200), Duration::ZERO, 2);
        assert_eq!(link.sample(), Duration::from_micros(200));
    }

    #[test]
    fn deliver_schedules_after_latency() {
        let mut sim = Sim::new();
        let mut link = Link::new(Duration::from_millis(1), Duration::ZERO, 3);
        let arrived = crate::shared(None::<Duration>);
        let a = std::rc::Rc::clone(&arrived);
        link.deliver(&mut sim, move |s| {
            *a.borrow_mut() = Some(s.now().as_duration());
        });
        sim.run_to_completion();
        assert_eq!(*arrived.borrow(), Some(Duration::from_millis(1)));
    }

    #[test]
    fn jitter_varies_between_samples() {
        let mut link = Link::cluster(4);
        let samples: Vec<Duration> = (0..50).map(|_| link.sample()).collect();
        let distinct: std::collections::HashSet<Duration> = samples.iter().copied().collect();
        assert!(distinct.len() > 10);
    }
}
