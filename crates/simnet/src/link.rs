//! Simulated network links.
//!
//! In the paper's setup the load generator and the inference server run on
//! separate Kubernetes nodes connected through a ClusterIP service;
//! request and response each cross the pod network. A [`Link`] models that
//! hop as a base latency plus light log-normal-ish jitter.

use crate::{Sim, SimTime};
use etude_faults::FaultInjector;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// A one-way network link with jittered delivery latency.
///
/// The link keeps a cumulative tally of every sampled delay so the
/// driver can report how much of a run's latency the wire accounts for
/// (the `network` column of the SLO attribution) without re-sampling.
#[derive(Debug)]
pub struct Link {
    base: Duration,
    jitter: Duration,
    rng: SmallRng,
    samples: u64,
    total_delay: Duration,
}

impl Link {
    /// Creates a link with `base` latency and up to `jitter` extra delay.
    pub fn new(base: Duration, jitter: Duration, seed: u64) -> Link {
        Link {
            base,
            jitter,
            rng: SmallRng::seed_from_u64(seed),
            samples: 0,
            total_delay: Duration::ZERO,
        }
    }

    /// An intra-cluster pod-to-pod link (~150 µs ± 100 µs), the same
    /// order as GKE's east-west latency.
    pub fn cluster(seed: u64) -> Link {
        Link::new(Duration::from_micros(150), Duration::from_micros(100), seed)
    }

    /// Samples a delivery latency.
    pub fn sample(&mut self) -> Duration {
        let delay = if self.jitter.is_zero() {
            self.base
        } else {
            // Squaring a uniform sample skews the jitter towards small
            // values while keeping an occasional slow packet, loosely
            // log-normal.
            let u: f64 = self.rng.gen::<f64>();
            self.base + Duration::from_secs_f64(self.jitter.as_secs_f64() * u * u)
        };
        self.samples += 1;
        self.total_delay += delay;
        delay
    }

    /// Number of deliveries sampled so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Sum of every sampled delay (fault-injected extra excluded: the
    /// injector counts its own spikes).
    pub fn total_delay(&self) -> Duration {
        self.total_delay
    }

    /// Mean sampled delay, zero before the first sample.
    pub fn mean_delay(&self) -> Duration {
        if self.samples == 0 {
            Duration::ZERO
        } else {
            self.total_delay / self.samples as u32
        }
    }

    /// Schedules `event` for delivery across the link.
    pub fn deliver<F: FnOnce(&mut Sim) + 'static>(&mut self, sim: &mut Sim, event: F) {
        let delay = self.sample();
        sim.schedule_in(delay, event);
    }

    /// Delivery time for an event sent now.
    pub fn delivery_time(&mut self, now: SimTime) -> SimTime {
        now.after(self.sample())
    }
}

/// A [`Link`] under a [`FaultPlan`](etude_faults::FaultPlan): latency
/// spikes stretch deliveries, drop/partition windows lose messages.
///
/// Fault windows are evaluated against *virtual* time (the simulation
/// clock), and drop decisions are keyed by the message's correlation id,
/// so a seeded schedule replays bit-identically across runs.
#[derive(Debug)]
pub struct FaultyLink {
    link: Link,
    injector: FaultInjector,
}

impl FaultyLink {
    /// Wraps a link with a fault injector.
    pub fn new(link: Link, injector: FaultInjector) -> FaultyLink {
        FaultyLink { link, injector }
    }

    /// A faultless wrapper: behaves exactly like the inner link.
    pub fn calm(link: Link) -> FaultyLink {
        FaultyLink::new(link, FaultInjector::calm())
    }

    /// The injector (for counters and plan inspection).
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// The inner link (for the delivery tally).
    pub fn link(&self) -> &Link {
        &self.link
    }

    /// Samples the delivery latency of message `id` sent at virtual time
    /// `now`, or `None` when a drop/partition window loses it.
    pub fn sample(&mut self, now: SimTime, id: u64) -> Option<Duration> {
        let elapsed = now.as_duration();
        if self.injector.drops_message(elapsed, id) {
            return None;
        }
        Some(self.link.sample() + self.injector.latency_extra(elapsed))
    }

    /// Delivery time for message `id` sent at `now`; `None` = dropped.
    pub fn delivery_time(&mut self, now: SimTime, id: u64) -> Option<SimTime> {
        self.sample(now, id).map(|d| now.after(d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_bounded_by_base_and_jitter() {
        let mut link = Link::new(Duration::from_micros(100), Duration::from_micros(50), 1);
        for _ in 0..1000 {
            let d = link.sample();
            assert!(d >= Duration::from_micros(100));
            assert!(d <= Duration::from_micros(150));
        }
    }

    #[test]
    fn zero_jitter_is_deterministic() {
        let mut link = Link::new(Duration::from_micros(200), Duration::ZERO, 2);
        assert_eq!(link.sample(), Duration::from_micros(200));
    }

    #[test]
    fn deliver_schedules_after_latency() {
        let mut sim = Sim::new();
        let mut link = Link::new(Duration::from_millis(1), Duration::ZERO, 3);
        let arrived = crate::shared(None::<Duration>);
        let a = std::rc::Rc::clone(&arrived);
        link.deliver(&mut sim, move |s| {
            *a.borrow_mut() = Some(s.now().as_duration());
        });
        sim.run_to_completion();
        assert_eq!(*arrived.borrow(), Some(Duration::from_millis(1)));
    }

    #[test]
    fn links_tally_their_cumulative_delay() {
        let mut link = Link::new(Duration::from_micros(200), Duration::ZERO, 7);
        assert_eq!(link.samples(), 0);
        assert_eq!(link.mean_delay(), Duration::ZERO);
        for _ in 0..5 {
            link.sample();
        }
        assert_eq!(link.samples(), 5);
        assert_eq!(link.total_delay(), Duration::from_micros(1_000));
        assert_eq!(link.mean_delay(), Duration::from_micros(200));

        // With jitter the tally equals the sum of what sample() returned.
        let mut jittered = Link::cluster(11);
        let sum: Duration = (0..40).map(|_| jittered.sample()).sum();
        assert_eq!(jittered.total_delay(), sum);
        assert_eq!(jittered.samples(), 40);
        assert!(jittered.mean_delay() >= Duration::from_micros(150));

        // Dropped messages never sampled a delay, so they don't tally;
        // the faulty wrapper exposes the inner link's counters.
        let mut faulty = FaultyLink::calm(Link::new(Duration::from_micros(100), Duration::ZERO, 5));
        faulty.sample(SimTime::ZERO, 1);
        assert_eq!(faulty.link().samples(), 1);
        assert_eq!(faulty.link().total_delay(), Duration::from_micros(100));
    }

    #[test]
    fn jitter_varies_between_samples() {
        let mut link = Link::cluster(4);
        let samples: Vec<Duration> = (0..50).map(|_| link.sample()).collect();
        let distinct: std::collections::HashSet<Duration> = samples.iter().copied().collect();
        assert!(distinct.len() > 10);
    }

    #[test]
    fn calm_faulty_link_matches_the_bare_link() {
        let mut bare = Link::new(Duration::from_micros(100), Duration::ZERO, 5);
        let mut faulty = FaultyLink::calm(Link::new(Duration::from_micros(100), Duration::ZERO, 5));
        for id in 0..20 {
            assert_eq!(
                faulty.sample(SimTime::ZERO.after(Duration::from_millis(id)), id),
                Some(bare.sample())
            );
        }
    }

    #[test]
    fn spikes_and_partitions_follow_the_virtual_clock() {
        use etude_faults::{FaultKind, FaultPlan};

        let plan = FaultPlan::seeded(8)
            .with_window(
                Duration::from_secs(1),
                Duration::from_secs(2),
                FaultKind::LatencySpike { extra_us: 900 },
            )
            .with_window(
                Duration::from_secs(3),
                Duration::from_secs(4),
                FaultKind::Partition,
            );
        let mut link = FaultyLink::new(
            Link::new(Duration::from_micros(100), Duration::ZERO, 1),
            FaultInjector::new(plan),
        );
        let at = |s| SimTime::ZERO.after(Duration::from_secs(s));
        assert_eq!(link.sample(at(0), 1), Some(Duration::from_micros(100)));
        assert_eq!(
            link.sample(at(1), 2),
            Some(Duration::from_micros(1_000)),
            "spike window adds 900us"
        );
        assert_eq!(link.sample(at(3), 3), None, "partition loses the message");
        assert_eq!(link.delivery_time(at(3), 4), None);
        assert_eq!(
            link.sample(at(5), 5),
            Some(Duration::from_micros(100)),
            "back to normal after the windows"
        );
        assert_eq!(link.injector().counters().drops(), 2);
        assert_eq!(link.injector().counters().spikes(), 1);
    }

    #[test]
    fn seeded_drop_schedules_replay_bit_identically() {
        use etude_faults::{FaultKind, FaultPlan};

        let build = || {
            FaultyLink::new(
                Link::cluster(9),
                FaultInjector::new(FaultPlan::seeded(33).with_window(
                    Duration::ZERO,
                    Duration::from_secs(10),
                    FaultKind::Drop { prob: 0.4 },
                )),
            )
        };
        let mut a = build();
        let mut b = build();
        for id in 0..500u64 {
            let at = SimTime::ZERO.after(Duration::from_millis(id * 7));
            assert_eq!(a.sample(at, id).is_none(), b.sample(at, id).is_none());
        }
        assert_eq!(
            a.injector().counters().drops(),
            b.injector().counters().drops()
        );
        assert!(a.injector().counters().drops() > 100, "p=0.4 over 500");
    }
}
