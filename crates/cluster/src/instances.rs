//! The GCP instance catalog of the paper's experiments, with the monthly
//! prices (one-year commitment) quoted in Section III-C: "$108.09 in GCP,
//! an instance with an additional T4 GPU costs $268.09 per month and the
//! instance with the A100 GPU has a hefty price tag of $2,008.80."

use etude_tensor::{Device, DeviceProfile};

/// A deployable cloud machine type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstanceType {
    /// General-purpose e2 instance: 5.5 vCPUs, 32 GB RAM.
    CpuE2,
    /// e2 instance with an attached NVidia Tesla T4 (16 GB).
    GpuT4,
    /// A2 instance with an NVidia Tesla A100 (40 GB), 12 vCPUs, 85 GB RAM.
    GpuA100,
}

impl InstanceType {
    /// The three instance types used in the paper's evaluation.
    pub const ALL: [InstanceType; 3] = [
        InstanceType::CpuE2,
        InstanceType::GpuT4,
        InstanceType::GpuA100,
    ];

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            InstanceType::CpuE2 => "CPU",
            InstanceType::GpuT4 => "GPU-T4",
            InstanceType::GpuA100 => "GPU-A100",
        }
    }

    /// Parses an instance name.
    pub fn parse(name: &str) -> Option<InstanceType> {
        match name.to_ascii_uppercase().as_str() {
            "CPU" | "CPU-E2" | "E2" => Some(InstanceType::CpuE2),
            "GPU-T4" | "T4" => Some(InstanceType::GpuT4),
            "GPU-A100" | "A100" => Some(InstanceType::GpuA100),
            _ => None,
        }
    }

    /// Monthly cost in USD with a one-year commitment (paper's figures).
    pub fn monthly_cost(&self) -> f64 {
        match self {
            InstanceType::CpuE2 => 108.09,
            InstanceType::GpuT4 => 268.09,
            InstanceType::GpuA100 => 2_008.80,
        }
    }

    /// The inference device of this instance.
    pub fn device(&self) -> Device {
        match self {
            InstanceType::CpuE2 => Device::cpu(),
            InstanceType::GpuT4 => Device::t4(),
            InstanceType::GpuA100 => Device::a100(),
        }
    }

    /// The device profile (roofline constants).
    pub fn device_profile(&self) -> DeviceProfile {
        self.device().profile().clone()
    }

    /// vCPUs available to the serving process.
    pub fn vcpus(&self) -> usize {
        match self {
            InstanceType::CpuE2 => 5, // 5.5 vCPUs in the paper
            InstanceType::GpuT4 => 5,
            InstanceType::GpuA100 => 12,
        }
    }

    /// Whether this instance carries an accelerator.
    pub fn has_gpu(&self) -> bool {
        !matches!(self, InstanceType::CpuE2)
    }

    /// Whether a model whose embedding table needs `bytes` fits on the
    /// inference device (GPU memory, or host RAM for CPU serving).
    pub fn fits_model(&self, bytes: u64) -> bool {
        self.device().profile().fits(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prices_match_the_paper() {
        assert_eq!(InstanceType::CpuE2.monthly_cost(), 108.09);
        assert_eq!(InstanceType::GpuT4.monthly_cost(), 268.09);
        assert_eq!(InstanceType::GpuA100.monthly_cost(), 2_008.80);
    }

    #[test]
    fn paper_cost_comparisons_hold() {
        // Section III-C: five T4s ($1,343) beat two A100s ($4,017).
        let five_t4 = 5.0 * InstanceType::GpuT4.monthly_cost();
        let two_a100 = 2.0 * InstanceType::GpuA100.monthly_cost();
        assert!((five_t4 - 1_340.45).abs() < 0.01);
        assert!((two_a100 - 4_017.60).abs() < 0.01);
        assert!(five_t4 < two_a100);
        // Three CPUs ($324) vs one T4 ($268).
        assert!(3.0 * InstanceType::CpuE2.monthly_cost() > InstanceType::GpuT4.monthly_cost());
    }

    #[test]
    fn names_roundtrip() {
        for t in InstanceType::ALL {
            assert_eq!(InstanceType::parse(t.name()), Some(t));
        }
        assert_eq!(InstanceType::parse("a100"), Some(InstanceType::GpuA100));
        assert_eq!(InstanceType::parse("tpu"), None);
    }

    #[test]
    fn devices_match_instance_class() {
        assert!(!InstanceType::CpuE2.has_gpu());
        assert!(InstanceType::GpuT4.has_gpu());
        assert_eq!(InstanceType::GpuA100.device().name(), "gpu-a100");
    }

    #[test]
    fn capacity_gates_platform_scale_models() {
        // 20M items at d=67 is ~5.4 GB: fits on both GPUs; a hypothetical
        // 20 GB table would only fit on the A100 (40 GB).
        let platform_table = 20_000_000u64 * 67 * 4;
        assert!(InstanceType::GpuT4.fits_model(platform_table));
        assert!(InstanceType::GpuA100.fits_model(platform_table));
        assert!(!InstanceType::GpuT4.fits_model(20 * (1 << 30)));
        assert!(InstanceType::GpuA100.fits_model(20 * (1 << 30)));
    }
}
