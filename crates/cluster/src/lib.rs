//! # etude-cluster
//!
//! The cloud/Kubernetes environment of the ETUDE paper, as a simulation:
//!
//! * [`instances`] — the GCP instance catalog the paper deploys on
//!   (`e2` CPU, `e2` + Tesla T4, A100) with their monthly prices,
//! * [`pod`] — pod lifecycle with model-download/load time and
//!   Kubernetes-style readiness probes ("Once the model deployment is
//!   finished (determined via Kubernetes's readiness probes) ..."),
//! * [`service`] — a ClusterIP service: round-robin routing over ready
//!   replicas,
//! * [`deployment`] — ties a model + instance type + replica count into a
//!   deployable, routable unit with a monthly cost.

pub mod deployment;
pub mod instances;
pub mod pod;
pub mod service;

pub use deployment::{Deployment, DeploymentSpec};
pub use instances::InstanceType;
pub use pod::{Pod, PodLoadStats, PodPhase};
pub use service::ClusterIpService;
