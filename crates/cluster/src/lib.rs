//! # etude-cluster
//!
//! The cloud/Kubernetes environment of the ETUDE paper, as a simulation:
//!
//! * [`instances`] — the GCP instance catalog the paper deploys on
//!   (`e2` CPU, `e2` + Tesla T4, A100) with their monthly prices,
//! * [`pod`] — pod lifecycle with model-download/load time and
//!   Kubernetes-style readiness probes ("Once the model deployment is
//!   finished (determined via Kubernetes's readiness probes) ..."),
//! * [`service`] — a ClusterIP service: round-robin routing over ready
//!   replicas, with optional control-plane outlier ejection,
//! * [`deployment`] — ties a model + instance type + replica count into a
//!   deployable, routable unit with a monthly cost, reconciled at runtime
//!   via `scale_to` and `rolling_update`,
//! * [`rollout`] — the rolling-restart reconciler: replaces pods under
//!   maxSurge/maxUnavailable budgets with drain-before-terminate,
//! * [`shard`] — catalog partitioning: a [`shard::ShardPlan`] splits the
//!   embedding table into contiguous slices and deploys one replica set
//!   per slice, admitting catalogs whose full table the per-node memory
//!   budget rejects.

pub mod deployment;
pub mod instances;
pub mod pod;
pub mod rollout;
pub mod service;
pub mod shard;

pub use deployment::{DeployError, Deployment, DeploymentSpec};
pub use instances::InstanceType;
pub use pod::{Pod, PodLoadStats, PodPhase};
pub use rollout::{RolloutBudget, RolloutHandle};
pub use service::ClusterIpService;
pub use shard::{ShardPlan, ShardSlice, ShardedDeployment};
