//! Deployments: model + instance type + replicas → a routable service.
//!
//! A [`Deployment`] assembles what the paper's `make run_deployed_benchmark`
//! sets up: one inference-server pod per instance, a ClusterIP service in
//! front, readiness gating, and the monthly cost of the whole setup.

use crate::instances::InstanceType;
use crate::pod::Pod;
use crate::service::ClusterIpService;
use etude_serve::simserver::{RustServerConfig, SimRustServer};
use etude_serve::ServiceProfile;
use etude_simnet::{Sim, SimTime};
use std::rc::Rc;

/// What to deploy.
#[derive(Debug, Clone)]
pub struct DeploymentSpec {
    /// Machine type for every replica.
    pub instance: InstanceType,
    /// Number of replicas behind the service.
    pub replicas: usize,
    /// Bytes of the serialised model (drives pod startup time and device
    /// memory feasibility).
    pub model_bytes: u64,
}

impl DeploymentSpec {
    /// A single-replica deployment.
    pub fn single(instance: InstanceType, model_bytes: u64) -> DeploymentSpec {
        DeploymentSpec {
            instance,
            replicas: 1,
            model_bytes,
        }
    }

    /// Monthly cost of the deployment.
    pub fn monthly_cost(&self) -> f64 {
        self.instance.monthly_cost() * self.replicas as f64
    }

    /// Whether the model fits the instance's inference device at all.
    pub fn feasible(&self) -> bool {
        self.replicas > 0 && self.instance.fits_model(self.model_bytes)
    }
}

/// A deployed, routable model service.
pub struct Deployment {
    spec: DeploymentSpec,
    service: Rc<ClusterIpService>,
    pods: Vec<Rc<Pod>>,
    ready_at: SimTime,
}

impl Deployment {
    /// Deploys `replicas` pods, each running the inference server
    /// configured for the instance class (worker pool on CPU, batcher on
    /// GPU), and schedules their startup.
    pub fn create(sim: &mut Sim, spec: DeploymentSpec, profile: &ServiceProfile) -> Deployment {
        let mut pods = Vec::with_capacity(spec.replicas);
        let mut ready_at = sim.now();
        for replica in 0..spec.replicas {
            let server_config = if spec.instance.has_gpu() {
                RustServerConfig::gpu()
            } else {
                RustServerConfig::cpu(spec.instance.vcpus())
            };
            let server = SimRustServer::new(profile.clone(), server_config);
            let pod = Pod::new_with_id(server, spec.model_bytes, replica as u32);
            ready_at = ready_at.max(pod.start(sim));
            pods.push(pod);
        }
        let service = ClusterIpService::new(pods.clone());
        Deployment {
            spec,
            service,
            pods,
            ready_at,
        }
    }

    /// The deployment's spec.
    pub fn spec(&self) -> &DeploymentSpec {
        &self.spec
    }

    /// The ClusterIP service routing to the replicas.
    pub fn service(&self) -> Rc<ClusterIpService> {
        Rc::clone(&self.service)
    }

    /// Virtual time at which every readiness probe passes; the runner
    /// starts the load generator no earlier than this.
    pub fn ready_at(&self) -> SimTime {
        self.ready_at
    }

    /// The deployment's pods.
    pub fn pods(&self) -> &[Rc<Pod>] {
        &self.pods
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etude_serve::simserver::SimService;
    use etude_tensor::Device;
    use std::time::Duration;

    #[test]
    fn deployment_cost_scales_with_replicas() {
        let spec = DeploymentSpec {
            instance: InstanceType::GpuT4,
            replicas: 5,
            model_bytes: 0,
        };
        assert!((spec.monthly_cost() - 1_340.45).abs() < 1e-9);
    }

    #[test]
    fn deployment_becomes_ready_and_serves() {
        let mut sim = Sim::new();
        let profile = ServiceProfile::static_response(&Device::cpu());
        let spec = DeploymentSpec {
            instance: InstanceType::CpuE2,
            replicas: 3,
            model_bytes: 100_000_000,
        };
        let deployment = Deployment::create(&mut sim, spec, &profile);
        assert!(!deployment.service().all_ready());
        sim.run_until(deployment.ready_at());
        assert!(deployment.service().all_ready());
        // And traffic flows.
        let ok = etude_simnet::shared(false);
        let o = Rc::clone(&ok);
        deployment.service().submit(
            &mut sim,
            Box::new(move |_, result| {
                *o.borrow_mut() = result.is_ok();
            }),
        );
        sim.run_to_completion();
        assert!(*ok.borrow());
    }

    #[test]
    fn infeasible_models_are_flagged() {
        // A 20 GB table cannot be served from a T4.
        let spec = DeploymentSpec::single(InstanceType::GpuT4, 20 * (1 << 30));
        assert!(!spec.feasible());
        let spec = DeploymentSpec::single(InstanceType::GpuA100, 20 * (1 << 30));
        assert!(spec.feasible());
    }

    #[test]
    fn startup_time_grows_with_model_size() {
        let mut sim = Sim::new();
        let profile = ServiceProfile::static_response(&Device::cpu());
        let small = Deployment::create(
            &mut sim,
            DeploymentSpec::single(InstanceType::CpuE2, 0),
            &profile,
        );
        let large = Deployment::create(
            &mut sim,
            DeploymentSpec::single(InstanceType::CpuE2, 5_000_000_000),
            &profile,
        );
        assert!(
            large.ready_at().since(small.ready_at()) > Duration::from_secs(10),
            "5 GB of model weights should add noticeable startup time"
        );
    }

    #[test]
    fn replicas_carry_distinct_ids() {
        let mut sim = Sim::new();
        let profile = ServiceProfile::static_response(&Device::cpu());
        let d = Deployment::create(
            &mut sim,
            DeploymentSpec {
                instance: InstanceType::CpuE2,
                replicas: 4,
                model_bytes: 0,
            },
            &profile,
        );
        let ids: Vec<u32> = d.pods().iter().map(|p| p.id()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        let summaries = d.service().pod_summaries();
        assert_eq!(summaries.len(), 4);
        assert!(summaries.iter().all(|s| s.served == 0 && s.refused == 0));
    }

    #[test]
    fn gpu_deployments_enable_batching() {
        let mut sim = Sim::new();
        let profile = ServiceProfile::static_response(&Device::t4());
        let d = Deployment::create(
            &mut sim,
            DeploymentSpec::single(InstanceType::GpuT4, 0),
            &profile,
        );
        assert_eq!(d.pods().len(), 1);
    }
}
