//! Deployments: model + instance type + replicas → a routable service.
//!
//! A [`Deployment`] assembles what the paper's `make run_deployed_benchmark`
//! sets up: one inference-server pod per instance, a ClusterIP service in
//! front, readiness gating, and the monthly cost of the whole setup.
//!
//! Beyond static creation the deployment is now *reconciled*:
//! [`Deployment::scale_to`] grows or shrinks the replica set (scale-down
//! drains before it terminates), and [`Deployment::rolling_update`]
//! replaces every pod under surge/unavailability budgets — the two
//! actuators the control plane's autoscaler and restart machinery drive.

use crate::instances::InstanceType;
use crate::pod::Pod;
use crate::rollout::{run_rollout, RolloutBudget, RolloutHandle};
use crate::service::ClusterIpService;
use etude_control::{ControlAction, DecisionJournal, EjectionConfig};
use etude_serve::simserver::{RustServerConfig, SimRustServer};
use etude_serve::ServiceProfile;
use etude_simnet::{shared, Shared, Sim, SimTime};
use std::fmt;
use std::rc::Rc;
use std::time::Duration;

/// Why a deployment was rejected at admission.
///
/// Every replica of a deployment holds the *entire* model, so a catalog
/// whose embedding table exceeds what one node can dedicate to it cannot
/// be served by replication at any replica count — the fix is a smaller
/// model, a bigger node, or a partitioned ([`crate::shard`]) deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeployError {
    /// Zero replicas were requested.
    NoReplicas,
    /// The model does not fit the instance's inference device at all.
    DeviceCapacity {
        /// Instance class that was asked to hold the model.
        instance: InstanceType,
        /// Bytes the model needs resident.
        model_bytes: u64,
        /// Bytes the device offers.
        capacity: u64,
    },
    /// The model fits the device, but exceeds the operator-configured
    /// per-node memory budget.
    NodeBudgetExceeded {
        /// Bytes each replica would need resident.
        model_bytes: u64,
        /// The configured per-node budget.
        node_budget: u64,
    },
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::NoReplicas => write!(f, "deployment needs at least one replica"),
            DeployError::DeviceCapacity {
                instance,
                model_bytes,
                capacity,
            } => write!(
                f,
                "model needs {model_bytes} bytes but a {} device holds {capacity}; \
                 every replica carries the full model — shard the catalog instead",
                instance.name()
            ),
            DeployError::NodeBudgetExceeded {
                model_bytes,
                node_budget,
            } => write!(
                f,
                "full-catalog replica needs {model_bytes} bytes resident, over the \
                 {node_budget}-byte node budget; replication cannot fix this — \
                 shard the catalog instead"
            ),
        }
    }
}

impl std::error::Error for DeployError {}

/// What to deploy.
#[derive(Debug, Clone)]
pub struct DeploymentSpec {
    /// Machine type for every replica.
    pub instance: InstanceType,
    /// Number of replicas behind the service.
    pub replicas: usize,
    /// Bytes of the serialised model (drives pod startup time and device
    /// memory feasibility).
    pub model_bytes: u64,
    /// Operator-configured per-node memory budget in bytes. `None`
    /// defers to the device capacity alone; `Some(b)` additionally
    /// rejects any replica whose resident model exceeds `b` — the knob
    /// that forces large catalogs onto a sharded deployment.
    pub node_budget: Option<u64>,
}

impl DeploymentSpec {
    /// A single-replica deployment.
    pub fn single(instance: InstanceType, model_bytes: u64) -> DeploymentSpec {
        DeploymentSpec {
            instance,
            replicas: 1,
            model_bytes,
            node_budget: None,
        }
    }

    /// Caps every replica's resident model at `bytes`.
    pub fn with_node_budget(mut self, bytes: u64) -> DeploymentSpec {
        self.node_budget = Some(bytes);
        self
    }

    /// Monthly cost of the deployment.
    pub fn monthly_cost(&self) -> f64 {
        self.instance.monthly_cost() * self.replicas as f64
    }

    /// Admission check: replica count, device capacity, node budget.
    pub fn admit(&self) -> Result<(), DeployError> {
        if self.replicas == 0 {
            return Err(DeployError::NoReplicas);
        }
        if !self.instance.fits_model(self.model_bytes) {
            return Err(DeployError::DeviceCapacity {
                instance: self.instance,
                model_bytes: self.model_bytes,
                capacity: self.instance.device().profile().memory_capacity,
            });
        }
        if let Some(budget) = self.node_budget {
            if self.model_bytes > budget {
                return Err(DeployError::NodeBudgetExceeded {
                    model_bytes: self.model_bytes,
                    node_budget: budget,
                });
            }
        }
        Ok(())
    }

    /// Whether the deployment passes admission at all.
    pub fn feasible(&self) -> bool {
        self.admit().is_ok()
    }
}

/// A deployed, routable model service.
pub struct Deployment {
    spec: DeploymentSpec,
    profile: ServiceProfile,
    service: Rc<ClusterIpService>,
    ready_at: SimTime,
    next_id: Shared<u32>,
    journal: Shared<DecisionJournal>,
}

/// Cadence at which a draining scale-down victim is checked for its
/// last in-flight response.
const DRAIN_POLL: Duration = Duration::from_millis(100);

impl Deployment {
    /// Deploys `replicas` pods, each running the inference server
    /// configured for the instance class (worker pool on CPU, batcher on
    /// GPU), and schedules their startup. Rejects specs that fail
    /// admission ([`DeploymentSpec::admit`]) before any pod is created.
    pub fn create(
        sim: &mut Sim,
        spec: DeploymentSpec,
        profile: &ServiceProfile,
    ) -> Result<Deployment, DeployError> {
        Deployment::build(sim, spec, profile, None, shared(DecisionJournal::new()))
    }

    /// Like [`Deployment::create`], but the service runs the control
    /// plane's outlier-ejection loop and every control decision lands
    /// in `journal`.
    pub fn create_managed(
        sim: &mut Sim,
        spec: DeploymentSpec,
        profile: &ServiceProfile,
        ejection: EjectionConfig,
        journal: Shared<DecisionJournal>,
    ) -> Result<Deployment, DeployError> {
        Deployment::build(sim, spec, profile, Some(ejection), journal)
    }

    fn build(
        sim: &mut Sim,
        spec: DeploymentSpec,
        profile: &ServiceProfile,
        ejection: Option<EjectionConfig>,
        journal: Shared<DecisionJournal>,
    ) -> Result<Deployment, DeployError> {
        spec.admit()?;
        let mut pods = Vec::with_capacity(spec.replicas);
        let mut ready_at = sim.now();
        for replica in 0..spec.replicas {
            let pod = make_pod(sim, &spec, profile, replica as u32);
            ready_at = ready_at.max(sim.now().after(pod.startup_duration()));
            pods.push(pod);
        }
        let service = match ejection {
            Some(config) => ClusterIpService::with_ejection(pods, config, Rc::clone(&journal)),
            None => ClusterIpService::new(pods),
        };
        Ok(Deployment {
            next_id: shared(spec.replicas as u32),
            spec,
            profile: profile.clone(),
            service,
            ready_at,
            journal,
        })
    }

    /// The deployment's spec (replica count as originally deployed;
    /// after scaling, `pods().len()` is the live count).
    pub fn spec(&self) -> &DeploymentSpec {
        &self.spec
    }

    /// The ClusterIP service routing to the replicas.
    pub fn service(&self) -> Rc<ClusterIpService> {
        Rc::clone(&self.service)
    }

    /// Virtual time at which every readiness probe passes; the runner
    /// starts the load generator no earlier than this.
    pub fn ready_at(&self) -> SimTime {
        self.ready_at
    }

    /// The deployment's current pods.
    pub fn pods(&self) -> Vec<Rc<Pod>> {
        self.service.pods()
    }

    /// Live replica count (pods behind the service, ready or not).
    pub fn replicas(&self) -> usize {
        self.service.backends()
    }

    /// The control-decision journal this deployment writes into.
    pub fn journal(&self) -> Shared<DecisionJournal> {
        Rc::clone(&self.journal)
    }

    /// Reconciles the replica set to `n`. Scale-up pods start cold
    /// (model download + readiness gate); scale-down victims drain
    /// before termination, newest first. The autoscaler's decision
    /// itself is journaled by the caller — this journals the pod steps.
    pub fn scale_to(&self, sim: &mut Sim, n: usize) {
        let current = self.service.backends();
        if n > current {
            for _ in current..n {
                let id = {
                    let mut next = self.next_id.borrow_mut();
                    let id = *next;
                    *next += 1;
                    id
                };
                let pod = make_pod_with_id(sim, &self.spec, &self.profile, id);
                self.journal.borrow_mut().push(
                    sim.now().as_duration(),
                    ControlAction::SurgeCreate,
                    id as i64,
                    0,
                );
                self.service.add_pod(pod);
            }
        } else if n < current {
            // Retire the newest pods first (Kubernetes' default victim
            // order for scale-down is effectively youngest-first).
            let mut pods = self.pods();
            pods.sort_by_key(|p| p.id());
            for pod in pods.into_iter().rev().take(current - n) {
                pod.begin_drain();
                self.journal.borrow_mut().push(
                    sim.now().as_duration(),
                    ControlAction::DrainBegin,
                    pod.id() as i64,
                    0,
                );
                watch_drain(
                    sim,
                    Rc::clone(&self.service),
                    Rc::clone(&self.journal),
                    pod,
                    600,
                );
            }
        }
    }

    /// Starts a rolling restart of every current pod under `budget`,
    /// journaling each surge/drain/terminate step. Replacement pods run
    /// the same profile and instance config and start cold.
    pub fn rolling_update(&self, sim: &mut Sim, budget: RolloutBudget) -> RolloutHandle {
        let spec = self.spec.clone();
        let profile = self.profile.clone();
        let next_id = Rc::clone(&self.next_id);
        run_rollout(
            sim,
            self.service(),
            self.journal(),
            budget,
            Box::new(move |sim| {
                let id = {
                    let mut next = next_id.borrow_mut();
                    let id = *next;
                    *next += 1;
                    id
                };
                make_pod_with_id(sim, &spec, &profile, id)
            }),
        )
    }
}

/// Builds and starts one pod for the deployment's instance class.
fn make_pod(sim: &mut Sim, spec: &DeploymentSpec, profile: &ServiceProfile, id: u32) -> Rc<Pod> {
    make_pod_with_id(sim, spec, profile, id)
}

fn make_pod_with_id(
    sim: &mut Sim,
    spec: &DeploymentSpec,
    profile: &ServiceProfile,
    id: u32,
) -> Rc<Pod> {
    let server_config = if spec.instance.has_gpu() {
        RustServerConfig::gpu()
    } else {
        RustServerConfig::cpu(spec.instance.vcpus())
    };
    let server = SimRustServer::new(profile.clone(), server_config);
    let pod = Pod::new_with_id(server, spec.model_bytes, id);
    pod.start(sim);
    pod
}

/// Polls a draining scale-down victim until its in-flight work is gone,
/// then terminates it and removes it from the service. `polls_left`
/// bounds the wait (a minute at the default cadence) so a wedged pod
/// cannot keep the event queue alive forever.
fn watch_drain(
    sim: &mut Sim,
    service: Rc<ClusterIpService>,
    journal: Shared<DecisionJournal>,
    pod: Rc<Pod>,
    polls_left: u32,
) {
    sim.schedule_in(DRAIN_POLL, move |s| {
        if pod.is_drained() || polls_left == 0 {
            pod.terminate();
            journal.borrow_mut().push(
                s.now().as_duration(),
                ControlAction::Terminate,
                pod.id() as i64,
                0,
            );
            service.remove_pod(pod.id());
        } else {
            watch_drain(s, service, journal, pod, polls_left - 1);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use etude_serve::simserver::SimService;
    use etude_tensor::Device;
    use std::time::Duration;

    #[test]
    fn deployment_cost_scales_with_replicas() {
        let spec = DeploymentSpec {
            instance: InstanceType::GpuT4,
            replicas: 5,
            model_bytes: 0,
            node_budget: None,
        };
        assert!((spec.monthly_cost() - 1_340.45).abs() < 1e-9);
    }

    #[test]
    fn deployment_becomes_ready_and_serves() {
        let mut sim = Sim::new();
        let profile = ServiceProfile::static_response(&Device::cpu());
        let spec = DeploymentSpec {
            instance: InstanceType::CpuE2,
            replicas: 3,
            model_bytes: 100_000_000,
            node_budget: None,
        };
        let deployment = Deployment::create(&mut sim, spec, &profile).unwrap();
        assert!(!deployment.service().all_ready());
        sim.run_until(deployment.ready_at());
        assert!(deployment.service().all_ready());
        // And traffic flows.
        let ok = etude_simnet::shared(false);
        let o = Rc::clone(&ok);
        deployment.service().submit(
            &mut sim,
            Box::new(move |_, result| {
                *o.borrow_mut() = result.is_ok();
            }),
        );
        sim.run_to_completion();
        assert!(*ok.borrow());
    }

    #[test]
    fn infeasible_models_are_flagged() {
        // A 20 GB table cannot be served from a T4.
        let spec = DeploymentSpec::single(InstanceType::GpuT4, 20 * (1 << 30));
        assert!(!spec.feasible());
        assert!(matches!(
            spec.admit(),
            Err(DeployError::DeviceCapacity { .. })
        ));
        let spec = DeploymentSpec::single(InstanceType::GpuA100, 20 * (1 << 30));
        assert!(spec.feasible());
        assert_eq!(spec.admit(), Ok(()));
    }

    #[test]
    fn node_budget_rejects_full_catalog_replicas() {
        // C = 10^7 at d = 57: a 2.28 GB table fits the device, but an
        // operator budget of 1 GB per node rejects replication outright.
        let table = 10_000_000u64 * 57 * 4;
        let spec = DeploymentSpec {
            instance: InstanceType::CpuE2,
            replicas: 4,
            model_bytes: table,
            node_budget: None,
        }
        .with_node_budget(1 << 30);
        let err = spec.admit().unwrap_err();
        assert_eq!(
            err,
            DeployError::NodeBudgetExceeded {
                model_bytes: table,
                node_budget: 1 << 30,
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("shard the catalog"), "{msg}");
        // The budget is per node: adding replicas cannot help.
        let mut sim = Sim::new();
        let profile = ServiceProfile::static_response(&Device::cpu());
        let more = DeploymentSpec {
            replicas: 64,
            ..spec.clone()
        };
        assert!(Deployment::create(&mut sim, more, &profile).is_err());
        // A shard-sized slice under the budget is admitted.
        let slice = DeploymentSpec {
            model_bytes: table / 4,
            ..spec
        };
        assert_eq!(slice.admit(), Ok(()));
        assert!(Deployment::create(&mut sim, slice, &profile).is_ok());
    }

    #[test]
    fn zero_replicas_are_rejected() {
        let spec = DeploymentSpec {
            instance: InstanceType::CpuE2,
            replicas: 0,
            model_bytes: 0,
            node_budget: None,
        };
        assert_eq!(spec.admit(), Err(DeployError::NoReplicas));
    }

    #[test]
    fn startup_time_grows_with_model_size() {
        let mut sim = Sim::new();
        let profile = ServiceProfile::static_response(&Device::cpu());
        let small = Deployment::create(
            &mut sim,
            DeploymentSpec::single(InstanceType::CpuE2, 0),
            &profile,
        )
        .unwrap();
        let large = Deployment::create(
            &mut sim,
            DeploymentSpec::single(InstanceType::CpuE2, 5_000_000_000),
            &profile,
        )
        .unwrap();
        assert!(
            large.ready_at().since(small.ready_at()) > Duration::from_secs(10),
            "5 GB of model weights should add noticeable startup time"
        );
    }

    #[test]
    fn replicas_carry_distinct_ids() {
        let mut sim = Sim::new();
        let profile = ServiceProfile::static_response(&Device::cpu());
        let d = Deployment::create(
            &mut sim,
            DeploymentSpec {
                instance: InstanceType::CpuE2,
                replicas: 4,
                model_bytes: 0,
                node_budget: None,
            },
            &profile,
        )
        .unwrap();
        let ids: Vec<u32> = d.pods().iter().map(|p| p.id()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        let summaries = d.service().pod_summaries();
        assert_eq!(summaries.len(), 4);
        assert!(summaries.iter().all(|s| s.served == 0 && s.refused == 0));
    }

    #[test]
    fn gpu_deployments_enable_batching() {
        let mut sim = Sim::new();
        let profile = ServiceProfile::static_response(&Device::t4());
        let d = Deployment::create(
            &mut sim,
            DeploymentSpec::single(InstanceType::GpuT4, 0),
            &profile,
        )
        .unwrap();
        assert_eq!(d.pods().len(), 1);
    }

    #[test]
    fn scale_up_adds_cold_replicas_with_fresh_ids() {
        let mut sim = Sim::new();
        let profile = ServiceProfile::static_response(&Device::cpu());
        let d = Deployment::create(
            &mut sim,
            DeploymentSpec {
                instance: InstanceType::CpuE2,
                replicas: 2,
                model_bytes: 0,
                node_budget: None,
            },
            &profile,
        )
        .unwrap();
        sim.run_until(d.ready_at());
        d.scale_to(&mut sim, 4);
        assert_eq!(d.replicas(), 4);
        let ids: Vec<u32> = d.pods().iter().map(|p| p.id()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        // New pods gate on readiness like any other.
        assert_eq!(d.service().ready_backends(), 2);
        sim.run_until(sim.now().after(Duration::from_secs(10)));
        assert_eq!(d.service().ready_backends(), 4);
        assert_eq!(d.journal().borrow().of(ControlAction::SurgeCreate).len(), 2);
    }

    #[test]
    fn scale_down_drains_then_terminates_newest_first() {
        let mut sim = Sim::new();
        let profile = ServiceProfile::static_response(&Device::cpu());
        let d = Deployment::create(
            &mut sim,
            DeploymentSpec {
                instance: InstanceType::CpuE2,
                replicas: 3,
                model_bytes: 0,
                node_budget: None,
            },
            &profile,
        )
        .unwrap();
        sim.run_until(d.ready_at());
        d.scale_to(&mut sim, 2);
        // Pod 2 drains; with no in-flight work the next poll reaps it.
        sim.run_until(sim.now().after(Duration::from_secs(1)));
        assert_eq!(d.replicas(), 2);
        let ids: Vec<u32> = d.pods().iter().map(|p| p.id()).collect();
        assert_eq!(ids, vec![0, 1], "newest pod retired first");
        let journal = d.journal();
        assert_eq!(journal.borrow().of(ControlAction::DrainBegin).len(), 1);
        assert_eq!(journal.borrow().of(ControlAction::Terminate).len(), 1);
        assert_eq!(journal.borrow().of(ControlAction::DrainBegin)[0].a, 2);
    }

    #[test]
    fn rolling_update_replaces_every_pod_with_zero_downtime() {
        let mut sim = Sim::new();
        let profile = ServiceProfile::static_response(&Device::cpu());
        let d = Deployment::create(
            &mut sim,
            DeploymentSpec {
                instance: InstanceType::CpuE2,
                replicas: 3,
                model_bytes: 0,
                node_budget: None,
            },
            &profile,
        )
        .unwrap();
        sim.run_until(d.ready_at());
        let old_ids: Vec<u32> = d.pods().iter().map(|p| p.id()).collect();
        let handle = d.rolling_update(&mut sim, RolloutBudget::zero_downtime());

        // Watch the invariant while the rollout runs: never fewer than
        // 3 ready pods, never more than 4 total.
        let horizon = sim.now().after(Duration::from_secs(120));
        while !handle.is_done() && sim.now() < horizon {
            sim.run_until(sim.now().after(Duration::from_millis(500)));
            assert!(
                d.service().ready_backends() >= 3,
                "ready set dipped below target mid-rollout"
            );
            assert!(d.replicas() <= 4, "surge budget exceeded");
        }
        assert!(handle.is_done(), "rollout completed");
        assert_eq!(handle.replaced(), 3);
        let new_ids: Vec<u32> = d.pods().iter().map(|p| p.id()).collect();
        assert!(
            new_ids.iter().all(|id| !old_ids.contains(id)),
            "{new_ids:?}"
        );
        assert_eq!(d.replicas(), 3);
        assert!(d.service().all_ready());
        let journal = d.journal();
        assert_eq!(journal.borrow().of(ControlAction::SurgeCreate).len(), 3);
        assert_eq!(journal.borrow().of(ControlAction::DrainBegin).len(), 3);
        assert_eq!(journal.borrow().of(ControlAction::Terminate).len(), 3);
        assert_eq!(journal.borrow().of(ControlAction::RolloutDone).len(), 1);
    }
}
