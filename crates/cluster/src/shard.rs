//! Catalog sharding: partition the embedding table across shard groups.
//!
//! Replication copies the *whole* model onto every node, so the node
//! memory budget caps the catalog size no matter how many replicas are
//! bought ([`DeployError::NodeBudgetExceeded`]). A [`ShardPlan`] instead
//! splits the catalog's row range into `groups` contiguous slices —
//! the same `shard_ranges` partition the kernel layer and the serving
//! router use, so the three layers agree on which rows live where — and
//! [`ShardedDeployment::create`] deploys one replica set per slice, each
//! pod holding only its slice's bytes.
//!
//! The admission story is the point: a full-catalog spec that the node
//! budget rejects becomes deployable once the plan has enough groups
//! that `max_shard_bytes() <= budget`. [`ShardPlan::min_groups`]
//! computes that count.

use crate::deployment::{DeployError, Deployment, DeploymentSpec};
use crate::instances::InstanceType;
use etude_serve::ServiceProfile;
use etude_simnet::{Sim, SimTime};
use etude_tensor::pool::shard_ranges;

/// How to partition a catalog across shard groups.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Total catalog rows.
    pub catalog_size: usize,
    /// Embedding dimension (f32 columns per row).
    pub dim: usize,
    /// Number of shard groups (contiguous catalog slices).
    pub groups: usize,
    /// Replicas per shard group — redundancy *within* a slice.
    pub replicas_per_group: usize,
}

/// One shard group's slice of the catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSlice {
    /// Group index.
    pub group: u32,
    /// First catalog row held by this group.
    pub base: usize,
    /// Rows held by this group.
    pub rows: usize,
    /// Bytes of embedding table resident on each of the group's pods.
    pub model_bytes: u64,
}

impl ShardPlan {
    /// A plan partitioning `catalog_size × dim` f32 rows into `groups`
    /// slices, each served by `replicas_per_group` pods.
    pub fn new(
        catalog_size: usize,
        dim: usize,
        groups: usize,
        replicas_per_group: usize,
    ) -> ShardPlan {
        ShardPlan {
            catalog_size,
            dim,
            groups,
            replicas_per_group,
        }
    }

    /// Bytes of the full (unsharded) embedding table.
    pub fn full_table_bytes(&self) -> u64 {
        4 * self.catalog_size as u64 * self.dim as u64
    }

    /// The contiguous slices, in catalog order. Row counts differ by at
    /// most one; `base` values tile `0..catalog_size` exactly.
    pub fn slices(&self) -> Vec<ShardSlice> {
        shard_ranges(self.catalog_size, self.groups)
            .into_iter()
            .enumerate()
            .map(|(group, range)| ShardSlice {
                group: group as u32,
                base: range.start,
                rows: range.len(),
                model_bytes: 4 * range.len() as u64 * self.dim as u64,
            })
            .collect()
    }

    /// Bytes of the largest slice — what admission checks against the
    /// node budget.
    pub fn max_shard_bytes(&self) -> u64 {
        self.slices()
            .iter()
            .map(|s| s.model_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Fewest groups that bring every slice under `node_budget` bytes.
    /// Returns `None` when even one row per group would not fit (the
    /// budget is smaller than a single embedding row).
    pub fn min_groups(catalog_size: usize, dim: usize, node_budget: u64) -> Option<usize> {
        let row_bytes = 4 * dim as u64;
        if row_bytes > node_budget || catalog_size == 0 {
            return (catalog_size == 0).then_some(1);
        }
        let rows_per_group = (node_budget / row_bytes) as usize;
        Some(catalog_size.div_ceil(rows_per_group))
    }

    /// Total pods the plan deploys.
    pub fn total_pods(&self) -> usize {
        self.groups * self.replicas_per_group
    }
}

/// A deployed shard plan: one [`Deployment`] (replica set + ClusterIP
/// service) per shard group.
pub struct ShardedDeployment {
    plan: ShardPlan,
    slices: Vec<ShardSlice>,
    groups: Vec<Deployment>,
}

impl ShardedDeployment {
    /// Deploys every shard group, each replica admitted against
    /// `node_budget`. The whole point: this succeeds for catalogs whose
    /// *full* table [`DeploymentSpec::admit`] rejects, because each pod
    /// only holds its slice.
    pub fn create(
        sim: &mut Sim,
        plan: ShardPlan,
        instance: InstanceType,
        node_budget: u64,
        profile: &ServiceProfile,
    ) -> Result<ShardedDeployment, DeployError> {
        let slices = plan.slices();
        let mut groups = Vec::with_capacity(slices.len());
        for slice in &slices {
            let spec = DeploymentSpec {
                instance,
                replicas: plan.replicas_per_group,
                model_bytes: slice.model_bytes,
                node_budget: Some(node_budget),
            };
            groups.push(Deployment::create(sim, spec, profile)?);
        }
        Ok(ShardedDeployment {
            plan,
            slices,
            groups,
        })
    }

    /// The plan this deployment realises.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The slices, aligned with [`ShardedDeployment::groups`].
    pub fn slices(&self) -> &[ShardSlice] {
        &self.slices
    }

    /// One deployment per shard group, in catalog order.
    pub fn groups(&self) -> &[Deployment] {
        &self.groups
    }

    /// Virtual time at which every group's every replica is ready.
    pub fn ready_at(&self) -> SimTime {
        self.groups
            .iter()
            .map(|g| g.ready_at())
            .max()
            .expect("a plan has at least one group")
    }

    /// Monthly cost across all groups.
    pub fn monthly_cost(&self) -> f64 {
        self.groups.iter().map(|g| g.spec().monthly_cost()).sum()
    }

    /// Bytes resident per pod, per group — honest slice sizes, not the
    /// full table.
    pub fn resident_bytes(&self) -> Vec<u64> {
        self.slices.iter().map(|s| s.model_bytes).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etude_tensor::Device;

    /// C = 10^7 at d = 57 — the paper's largest scenario: a 2.28 GB
    /// table.
    const C: usize = 10_000_000;
    const D: usize = 57;

    #[test]
    fn slices_tile_the_catalog() {
        let plan = ShardPlan::new(C, D, 7, 2);
        let slices = plan.slices();
        assert_eq!(slices.len(), 7);
        let mut next = 0;
        for (i, s) in slices.iter().enumerate() {
            assert_eq!(s.group, i as u32);
            assert_eq!(s.base, next);
            assert_eq!(s.model_bytes, 4 * s.rows as u64 * D as u64);
            next += s.rows;
        }
        assert_eq!(next, C);
        let total: u64 = slices.iter().map(|s| s.model_bytes).sum();
        assert_eq!(total, plan.full_table_bytes());
    }

    #[test]
    fn min_groups_brings_slices_under_budget() {
        let budget = 1 << 30; // 1 GiB per node
        let full = ShardPlan::new(C, D, 1, 1);
        assert!(full.full_table_bytes() > budget);
        let groups = ShardPlan::min_groups(C, D, budget).unwrap();
        assert_eq!(groups, 3, "2.28 GB over 1 GiB nodes needs 3 slices");
        let plan = ShardPlan::new(C, D, groups, 2);
        assert!(plan.max_shard_bytes() <= budget);
        // One fewer group would not fit.
        let tight = ShardPlan::new(C, D, groups - 1, 2);
        assert!(tight.max_shard_bytes() > budget);
        // Degenerate budgets are refused rather than looping forever.
        assert_eq!(ShardPlan::min_groups(C, D, 8), None);
    }

    #[test]
    fn sharding_admits_catalogs_replication_cannot() {
        let budget = 1u64 << 30;
        let mut sim = Sim::new();
        let profile = ServiceProfile::static_response(&Device::cpu());
        let plan = ShardPlan::new(C, D, 1, 1);

        // Replicated: every node needs the full 2.28 GB — rejected, and
        // more replicas do not help.
        let replicated = DeploymentSpec {
            instance: InstanceType::CpuE2,
            replicas: 6,
            model_bytes: plan.full_table_bytes(),
            node_budget: Some(budget),
        };
        assert!(matches!(
            Deployment::create(&mut sim, replicated, &profile),
            Err(DeployError::NodeBudgetExceeded { .. })
        ));

        // Sharded at min_groups: admitted, honest per-pod bytes.
        let groups = ShardPlan::min_groups(C, D, budget).unwrap();
        let plan = ShardPlan::new(C, D, groups, 2);
        let sharded =
            ShardedDeployment::create(&mut sim, plan, InstanceType::CpuE2, budget, &profile)
                .unwrap();
        assert_eq!(sharded.groups().len(), groups);
        for (deployment, slice) in sharded.groups().iter().zip(sharded.slices()) {
            assert_eq!(deployment.replicas(), 2);
            for pod in deployment.pods() {
                assert_eq!(pod.model_bytes(), slice.model_bytes);
                assert!(pod.model_bytes() <= budget);
            }
        }
        // Pods start; the fleet becomes ready like any deployment.
        sim.run_until(sharded.ready_at());
        for group in sharded.groups() {
            assert!(group.service().all_ready());
        }
        // Cost scales with total pods.
        let expected = InstanceType::CpuE2.monthly_cost() * sharded.plan().total_pods() as f64;
        assert!((sharded.monthly_cost() - expected).abs() < 1e-9);
    }
}
