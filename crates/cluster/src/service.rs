//! The ClusterIP service: round-robin routing over ready backends, with
//! optional outlier ejection.
//!
//! Kubernetes's ClusterIP + kube-proxy distributes connections across the
//! pods backing a service. For the paper's workload (many short requests
//! from one load generator) round-robin per request is the effective
//! behaviour, and it is what makes the "scale out with N cheaper
//! machines" rows of Table I work.
//!
//! With [`ClusterIpService::with_ejection`] the service also runs the
//! control plane's health loop: every routed request's outcome (and
//! every periodic readiness probe, see
//! [`ClusterIpService::schedule_probes`]) feeds an [`OutlierDetector`];
//! a persistently failing backend is ejected from rotation — never below
//! the minimum-healthy floor — and re-admitted after seeded exponential
//! probation. Ejections and re-admissions land in the shared
//! [`DecisionJournal`] so chaos replays can be compared byte-for-byte.

use crate::pod::{Pod, PodLoadStats};
use etude_control::{ControlAction, DecisionJournal, EjectionConfig, HealthEvent, OutlierDetector};
use etude_serve::simserver::{RespondFn, ServeError, SimService};
use etude_simnet::{shared, Shared, Sim, SimTime};
use std::rc::Rc;
use std::time::Duration;

/// A round-robin service over a (mutable) set of pods.
pub struct ClusterIpService {
    pods: Shared<Vec<Rc<Pod>>>,
    next: Shared<usize>,
    outlier: Option<Shared<OutlierDetector>>,
    journal: Shared<DecisionJournal>,
}

impl ClusterIpService {
    /// Creates a service over the given backends (no ejection).
    pub fn new(pods: Vec<Rc<Pod>>) -> Rc<ClusterIpService> {
        Rc::new(ClusterIpService {
            pods: shared(pods),
            next: shared(0),
            outlier: None,
            journal: shared(DecisionJournal::new()),
        })
    }

    /// Creates a service with passive outlier detection: request
    /// outcomes feed the detector, ejected backends leave rotation
    /// until probation ends. Decisions are appended to `journal`.
    pub fn with_ejection(
        pods: Vec<Rc<Pod>>,
        config: EjectionConfig,
        journal: Shared<DecisionJournal>,
    ) -> Rc<ClusterIpService> {
        let detector = OutlierDetector::new(pods.len(), config);
        Rc::new(ClusterIpService {
            pods: shared(pods),
            next: shared(0),
            outlier: Some(shared(detector)),
            journal,
        })
    }

    /// Number of backends (ready or not).
    pub fn backends(&self) -> usize {
        self.pods.borrow().len()
    }

    /// Number of currently ready backends.
    pub fn ready_backends(&self) -> usize {
        self.pods.borrow().iter().filter(|p| p.is_ready()).count()
    }

    /// Whether every backend's readiness probe passes — the condition the
    /// experiment runner waits for before starting the load generator.
    pub fn all_ready(&self) -> bool {
        self.pods.borrow().iter().all(|p| p.is_ready())
    }

    /// Summed queue depth across the backends — what the autoscaler
    /// reads as its capacity signal.
    pub fn queue_depth(&self) -> usize {
        self.pods.borrow().iter().map(|p| p.queue_depth()).sum()
    }

    /// Per-pod load counters, in replica order — the simulated
    /// counterpart of scraping every backend's `/stats`.
    pub fn pod_summaries(&self) -> Vec<PodLoadStats> {
        self.pods.borrow().iter().map(|p| p.load_stats()).collect()
    }

    /// The backends currently behind the service.
    pub fn pods(&self) -> Vec<Rc<Pod>> {
        self.pods.borrow().clone()
    }

    /// Adds a backend (a surge pod during a rolling update, or a
    /// scale-up replica). The detector's pool grows with it.
    pub fn add_pod(&self, pod: Rc<Pod>) {
        self.pods.borrow_mut().push(pod);
        if let Some(outlier) = &self.outlier {
            let mut d = outlier.borrow_mut();
            let n = self
                .pods
                .borrow()
                .iter()
                .map(|p| p.id() + 1)
                .max()
                .unwrap_or(0);
            if (n as usize) > d.len() {
                d.resize(n as usize);
            }
        }
    }

    /// Removes a backend by pod id (after it drained and terminated).
    pub fn remove_pod(&self, id: u32) {
        self.pods.borrow_mut().retain(|p| p.id() != id);
    }

    /// Whether backend `id` currently sits ejected.
    pub fn is_ejected(&self, id: u32, now: Duration) -> bool {
        self.outlier
            .as_ref()
            .is_some_and(|o| o.borrow().is_ejected(id as usize, now))
    }

    /// Total ejections the detector has ordered for backend `id`.
    pub fn ejections(&self, id: u32) -> u32 {
        self.outlier
            .as_ref()
            .map_or(0, |o| o.borrow().ejections(id as usize))
    }

    /// Schedules periodic `/ping` probes: every `interval` each
    /// backend's readiness is fed into the outlier detector as an
    /// active health sample, until `horizon`. A no-op without ejection.
    pub fn schedule_probes(self: &Rc<Self>, sim: &mut Sim, interval: Duration, horizon: SimTime) {
        if self.outlier.is_none() {
            return;
        }
        let service = Rc::clone(self);
        sim.schedule_in(interval, move |s| {
            let now = s.now().as_duration();
            let pods = service.pods.borrow().clone();
            for pod in &pods {
                service.observe(pod.id(), pod.is_ready(), now);
            }
            if s.now() < horizon {
                service.schedule_probes(s, interval, horizon);
            }
        });
    }

    /// Feeds one outcome for backend `id` into the detector, journaling
    /// any ejection it causes.
    fn observe(&self, id: u32, ok: bool, now: Duration) {
        let Some(outlier) = &self.outlier else {
            return;
        };
        let event = {
            let mut d = outlier.borrow_mut();
            if (id as usize) >= d.len() {
                d.resize(id as usize + 1);
            }
            d.record(id as usize, ok, now)
        };
        match event {
            HealthEvent::Ejected(until) => {
                self.journal.borrow_mut().push(
                    now,
                    ControlAction::Eject,
                    id as i64,
                    until.as_millis() as i64,
                );
            }
            HealthEvent::Readmitted => {
                self.journal
                    .borrow_mut()
                    .push(now, ControlAction::Readmit, id as i64, 0);
            }
            HealthEvent::None | HealthEvent::FloorHeld => {}
        }
    }

    /// Picks the next routable backend round-robin: ready, and (with
    /// ejection) not currently serving probation. An ejected backend
    /// whose probation elapsed is re-admitted on the spot and journaled.
    fn pick(&self, now: Duration) -> Option<Rc<Pod>> {
        let pods = self.pods.borrow().clone();
        if pods.is_empty() {
            return None;
        }
        let mut next = self.next.borrow_mut();
        let mut fallback = None;
        for _ in 0..pods.len() {
            let idx = *next % pods.len();
            *next = (*next + 1) % pods.len();
            let pod = &pods[idx];
            if !pod.is_ready() {
                continue;
            }
            if let Some(outlier) = &self.outlier {
                let id = pod.id() as usize;
                let (admitted, readmitted) = {
                    let mut d = outlier.borrow_mut();
                    if id >= d.len() {
                        d.resize(id + 1);
                    }
                    d.admit_noting_readmission(id, now)
                };
                if !admitted {
                    // Fail-open: remember one ejected-but-ready backend
                    // in case *every* routable pod sits on probation.
                    fallback.get_or_insert_with(|| Rc::clone(pod));
                    continue;
                }
                if readmitted {
                    self.journal
                        .borrow_mut()
                        .push(now, ControlAction::Readmit, pod.id() as i64, 0);
                }
            }
            return Some(Rc::clone(pod));
        }
        // Every ready backend is ejected: routing to a sick backend
        // beats routing to nobody (mirrors the detector's floor).
        fallback
    }
}

impl SimService for ClusterIpService {
    fn submit(self: Rc<Self>, sim: &mut Sim, respond: RespondFn) {
        let now = sim.now().as_duration();
        match self.pick(now) {
            Some(pod) => {
                if self.outlier.is_some() {
                    // Score the outcome against the backend that served
                    // it, at response time.
                    let service = Rc::clone(&self);
                    let id = pod.id();
                    let wrapped: RespondFn = Box::new(move |s, result| {
                        service.observe(id, result.is_ok(), s.now().as_duration());
                        respond(s, result);
                    });
                    pod.submit(sim, wrapped);
                } else {
                    pod.submit(sim, respond);
                }
            }
            None => respond(sim, Err(ServeError::Overloaded)),
        }
    }

    fn queue_depth(&self) -> usize {
        ClusterIpService::queue_depth(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etude_serve::simserver::{RustServerConfig, SimRustServer};
    use etude_serve::ServiceProfile;
    use etude_simnet::SimTime;
    use etude_tensor::Device;
    use std::time::Duration;

    fn make_pods(n: usize) -> (Vec<Rc<Pod>>, Vec<Rc<SimRustServer>>) {
        let mut pods = Vec::new();
        let mut servers = Vec::new();
        for id in 0..n {
            let server = SimRustServer::new(
                ServiceProfile::static_response(&Device::cpu()),
                RustServerConfig::cpu(1),
            );
            servers.push(Rc::clone(&server));
            pods.push(Pod::new_with_id(server, 0, id as u32));
        }
        (pods, servers)
    }

    #[test]
    fn requests_round_robin_across_ready_pods() {
        let mut sim = Sim::new();
        let (pods, servers) = make_pods(3);
        for p in &pods {
            p.start(&mut sim);
        }
        sim.run_until(SimTime::ZERO.after(Duration::from_secs(10)));
        let service = ClusterIpService::new(pods);
        assert!(service.all_ready());
        for _ in 0..9 {
            Rc::clone(&service).submit(&mut sim, Box::new(|_, _| {}));
        }
        sim.run_to_completion();
        for s in &servers {
            assert_eq!(s.served(), 3, "uneven round robin");
        }
        // The pods tally the same traffic the servers saw, each under
        // its own id, with a latency sample per served request.
        let summaries = service.pod_summaries();
        assert_eq!(summaries.len(), 3);
        for (idx, s) in summaries.iter().enumerate() {
            assert_eq!(s.id as usize, idx);
            assert_eq!(s.served, 3);
            assert_eq!(s.refused, 0);
            assert_eq!(s.latency.count(), 3);
        }
    }

    #[test]
    fn not_ready_pods_are_skipped() {
        let mut sim = Sim::new();
        let (pods, servers) = make_pods(2);
        pods[0].start(&mut sim); // pod 1 never started: stays unready
        sim.run_until(SimTime::ZERO.after(Duration::from_secs(10)));
        let service = ClusterIpService::new(pods);
        assert_eq!(service.ready_backends(), 1);
        assert!(!service.all_ready());
        for _ in 0..4 {
            Rc::clone(&service).submit(&mut sim, Box::new(|_, _| {}));
        }
        sim.run_to_completion();
        assert_eq!(servers[0].served(), 4);
        assert_eq!(servers[1].served(), 0);
    }

    #[test]
    fn empty_service_fails_requests() {
        let mut sim = Sim::new();
        let service = ClusterIpService::new(vec![]);
        let failed = etude_simnet::shared(false);
        let f = Rc::clone(&failed);
        service.submit(
            &mut sim,
            Box::new(move |_, result| {
                *f.borrow_mut() = result.is_err();
            }),
        );
        sim.run_to_completion();
        assert!(*failed.borrow());
    }

    #[test]
    fn pods_can_be_added_and_removed() {
        let mut sim = Sim::new();
        let (pods, servers) = make_pods(2);
        for p in &pods {
            p.start(&mut sim);
        }
        sim.run_until(SimTime::ZERO.after(Duration::from_secs(10)));
        let service = ClusterIpService::new(pods);
        assert_eq!(service.backends(), 2);

        // A third pod joins and absorbs traffic.
        let (extra, extra_servers) = make_pods(3);
        let newcomer = Rc::clone(&extra[2]);
        newcomer.start(&mut sim);
        sim.run_until(SimTime::ZERO.after(Duration::from_secs(20)));
        service.add_pod(Rc::clone(&newcomer));
        assert_eq!(service.backends(), 3);
        for _ in 0..9 {
            Rc::clone(&service).submit(&mut sim, Box::new(|_, _| {}));
        }
        sim.run_to_completion();
        assert_eq!(extra_servers[2].served(), 3, "newcomer takes its share");

        // Removing it shifts its share back to the others.
        service.remove_pod(newcomer.id());
        assert_eq!(service.backends(), 2);
        for _ in 0..4 {
            Rc::clone(&service).submit(&mut sim, Box::new(|_, _| {}));
        }
        sim.run_to_completion();
        assert_eq!(extra_servers[2].served(), 3, "no traffic after removal");
        assert_eq!(servers[0].served() + servers[1].served(), 10);
    }

    #[test]
    fn probes_eject_a_dead_backend_and_probation_readmits_it() {
        let mut sim = Sim::new();
        let (pods, servers) = make_pods(4);
        for p in &pods {
            p.start(&mut sim);
        }
        sim.run_until(SimTime::ZERO.after(Duration::from_secs(10)));
        let journal = etude_simnet::shared(DecisionJournal::new());
        let config = EjectionConfig {
            consecutive_failures: 3,
            base_probation: Duration::from_secs(5),
            seed: 9,
            ..EjectionConfig::default()
        };
        let service = ClusterIpService::with_ejection(pods.clone(), config, Rc::clone(&journal));
        // Pod 0 goes down hard (terminated, stays down); probes every
        // second feed the detector.
        pods[0].terminate();
        service.schedule_probes(
            &mut sim,
            Duration::from_secs(1),
            SimTime::ZERO.after(Duration::from_secs(60)),
        );
        sim.run_until(SimTime::ZERO.after(Duration::from_secs(14)));
        assert!(
            service.is_ejected(0, sim.now().as_duration()),
            "three failed probes eject"
        );
        let ejects = journal.borrow().of(ControlAction::Eject).len();
        assert!(ejects >= 1, "ejection journaled");

        // Routed traffic only reaches the survivors (pod 0 is both
        // unready and ejected).
        for _ in 0..9 {
            Rc::clone(&service).submit(&mut sim, Box::new(|_, _| {}));
        }
        sim.run_to_completion();
        assert_eq!(servers[0].served(), 0);
        assert_eq!(
            servers[1].served() + servers[2].served() + servers[3].served(),
            9
        );
    }

    #[test]
    fn ejected_but_ready_backends_are_skipped_then_readmitted() {
        let mut sim = Sim::new();
        let (pods, servers) = make_pods(2);
        for p in &pods {
            p.start(&mut sim);
        }
        sim.run_until(SimTime::ZERO.after(Duration::from_secs(10)));
        let journal = etude_simnet::shared(DecisionJournal::new());
        let config = EjectionConfig {
            consecutive_failures: 2,
            floor_fraction: 0.5,
            base_probation: Duration::from_secs(5),
            seed: 3,
            ..EjectionConfig::default()
        };
        let service = ClusterIpService::with_ejection(pods.clone(), config, Rc::clone(&journal));
        // Fail pod 0 by hand (as if its requests had been erroring).
        let now = sim.now().as_duration();
        service.observe(0, false, now);
        service.observe(0, false, now);
        assert!(service.is_ejected(0, now));

        // While ejected, everything routes to pod 1.
        for _ in 0..4 {
            Rc::clone(&service).submit(&mut sim, Box::new(|_, _| {}));
        }
        sim.run_to_completion();
        assert_eq!(servers[0].served(), 0);
        assert_eq!(servers[1].served(), 4);

        // After probation (≤ 5s * 1.25 jitter) pod 0 rejoins rotation
        // and the re-admission is journaled.
        sim.run_until(SimTime::ZERO.after(Duration::from_secs(30)));
        for _ in 0..4 {
            Rc::clone(&service).submit(&mut sim, Box::new(|_, _| {}));
        }
        sim.run_to_completion();
        assert_eq!(servers[0].served(), 2, "readmitted into round robin");
        assert_eq!(journal.borrow().of(ControlAction::Readmit).len(), 1);
    }
}
