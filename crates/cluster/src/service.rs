//! The ClusterIP service: round-robin routing over ready backends.
//!
//! Kubernetes's ClusterIP + kube-proxy distributes connections across the
//! pods backing a service. For the paper's workload (many short requests
//! from one load generator) round-robin per request is the effective
//! behaviour, and it is what makes the "scale out with N cheaper
//! machines" rows of Table I work.

use crate::pod::{Pod, PodLoadStats};
use etude_serve::simserver::{RespondFn, ServeError, SimService};
use etude_simnet::{shared, Shared, Sim};
use std::rc::Rc;

/// A round-robin service over a set of pods.
pub struct ClusterIpService {
    pods: Vec<Rc<Pod>>,
    next: Shared<usize>,
}

impl ClusterIpService {
    /// Creates a service over the given backends.
    pub fn new(pods: Vec<Rc<Pod>>) -> Rc<ClusterIpService> {
        Rc::new(ClusterIpService {
            pods,
            next: shared(0),
        })
    }

    /// Number of backends (ready or not).
    pub fn backends(&self) -> usize {
        self.pods.len()
    }

    /// Number of currently ready backends.
    pub fn ready_backends(&self) -> usize {
        self.pods.iter().filter(|p| p.is_ready()).count()
    }

    /// Whether every backend's readiness probe passes — the condition the
    /// experiment runner waits for before starting the load generator.
    pub fn all_ready(&self) -> bool {
        self.pods.iter().all(|p| p.is_ready())
    }

    /// Per-pod load counters, in replica order — the simulated
    /// counterpart of scraping every backend's `/stats`.
    pub fn pod_summaries(&self) -> Vec<PodLoadStats> {
        self.pods.iter().map(|p| p.load_stats()).collect()
    }

    /// Picks the next ready backend round-robin.
    fn pick(&self) -> Option<Rc<Pod>> {
        if self.pods.is_empty() {
            return None;
        }
        let mut next = self.next.borrow_mut();
        for _ in 0..self.pods.len() {
            let idx = *next % self.pods.len();
            *next = (*next + 1) % self.pods.len();
            if self.pods[idx].is_ready() {
                return Some(Rc::clone(&self.pods[idx]));
            }
        }
        None
    }
}

impl SimService for ClusterIpService {
    fn submit(self: Rc<Self>, sim: &mut Sim, respond: RespondFn) {
        match self.pick() {
            Some(pod) => pod.submit(sim, respond),
            None => respond(sim, Err(ServeError::Overloaded)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etude_serve::simserver::{RustServerConfig, SimRustServer};
    use etude_serve::ServiceProfile;
    use etude_simnet::SimTime;
    use etude_tensor::Device;
    use std::time::Duration;

    fn make_pods(n: usize) -> (Vec<Rc<Pod>>, Vec<Rc<SimRustServer>>) {
        let mut pods = Vec::new();
        let mut servers = Vec::new();
        for id in 0..n {
            let server = SimRustServer::new(
                ServiceProfile::static_response(&Device::cpu()),
                RustServerConfig::cpu(1),
            );
            servers.push(Rc::clone(&server));
            pods.push(Pod::new_with_id(server, 0, id as u32));
        }
        (pods, servers)
    }

    #[test]
    fn requests_round_robin_across_ready_pods() {
        let mut sim = Sim::new();
        let (pods, servers) = make_pods(3);
        for p in &pods {
            p.start(&mut sim);
        }
        sim.run_until(SimTime::ZERO.after(Duration::from_secs(10)));
        let service = ClusterIpService::new(pods);
        assert!(service.all_ready());
        for _ in 0..9 {
            Rc::clone(&service).submit(&mut sim, Box::new(|_, _| {}));
        }
        sim.run_to_completion();
        for s in &servers {
            assert_eq!(s.served(), 3, "uneven round robin");
        }
        // The pods tally the same traffic the servers saw, each under
        // its own id, with a latency sample per served request.
        let summaries = service.pod_summaries();
        assert_eq!(summaries.len(), 3);
        for (idx, s) in summaries.iter().enumerate() {
            assert_eq!(s.id as usize, idx);
            assert_eq!(s.served, 3);
            assert_eq!(s.refused, 0);
            assert_eq!(s.latency.count(), 3);
        }
    }

    #[test]
    fn not_ready_pods_are_skipped() {
        let mut sim = Sim::new();
        let (pods, servers) = make_pods(2);
        pods[0].start(&mut sim); // pod 1 never started: stays unready
        sim.run_until(SimTime::ZERO.after(Duration::from_secs(10)));
        let service = ClusterIpService::new(pods);
        assert_eq!(service.ready_backends(), 1);
        assert!(!service.all_ready());
        for _ in 0..4 {
            Rc::clone(&service).submit(&mut sim, Box::new(|_, _| {}));
        }
        sim.run_to_completion();
        assert_eq!(servers[0].served(), 4);
        assert_eq!(servers[1].served(), 0);
    }

    #[test]
    fn empty_service_fails_requests() {
        let mut sim = Sim::new();
        let service = ClusterIpService::new(vec![]);
        let failed = etude_simnet::shared(false);
        let f = Rc::clone(&failed);
        service.submit(
            &mut sim,
            Box::new(move |_, result| {
                *f.borrow_mut() = result.is_err();
            }),
        );
        sim.run_to_completion();
        assert!(*failed.borrow());
    }
}
