//! Zero-downtime rolling restarts under surge/unavailability budgets.
//!
//! [`RolloutBudget`] mirrors a Kubernetes Deployment's rolling-update
//! strategy: at most `max_surge` pods over the desired count may exist
//! at once, and at most `max_unavailable` of the desired count may be
//! missing from the ready set. The [reconciler](run_rollout) replaces
//! every pod present when the rollout begins:
//!
//! 1. **surge** — create replacement pods while the surge budget
//!    allows; each starts cold (full model download + readiness gate),
//! 2. **drain** — once enough replacements pass readiness that the
//!    unavailability budget holds, flip one old pod to `Draining`:
//!    readiness fails (the service routes nothing new to it) while
//!    accepted requests finish,
//! 3. **terminate** — a drained pod (zero in-flight requests) is torn
//!    down and removed from the service.
//!
//! With `max_surge = 1, max_unavailable = 0` the ready set never dips
//! below the desired count — the zero-downtime configuration the chaos
//! acceptance test drives under live load. Every step is journaled, so
//! a seeded replay reproduces the rollout decision-for-decision.

use crate::pod::Pod;
use crate::service::ClusterIpService;
use etude_control::{ControlAction, DecisionJournal};
use etude_simnet::{shared, Shared, Sim};
use std::collections::VecDeque;
use std::rc::Rc;
use std::time::Duration;

/// How far a rolling update may stray from the desired replica count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RolloutBudget {
    /// Extra pods allowed above the desired count.
    pub max_surge: usize,
    /// Ready pods that may be missing from the desired count.
    pub max_unavailable: usize,
}

impl RolloutBudget {
    /// The zero-downtime strategy: one surge pod, no unavailability.
    pub fn zero_downtime() -> RolloutBudget {
        RolloutBudget {
            max_surge: 1,
            max_unavailable: 0,
        }
    }
}

/// Observable progress of a rolling update.
pub struct RolloutHandle {
    done: Shared<bool>,
    replaced: Shared<usize>,
}

impl RolloutHandle {
    /// Whether the rollout has completed.
    pub fn is_done(&self) -> bool {
        *self.done.borrow()
    }

    /// Pods replaced so far.
    pub fn replaced(&self) -> usize {
        *self.replaced.borrow()
    }
}

/// Factory building (and starting) one replacement pod.
pub type MakePod = Box<dyn Fn(&mut Sim) -> Rc<Pod>>;

struct RolloutState {
    service: Rc<ClusterIpService>,
    journal: Shared<DecisionJournal>,
    budget: RolloutBudget,
    target: usize,
    /// Old pods not yet draining, in replacement order.
    pending: VecDeque<Rc<Pod>>,
    /// Old pods draining, awaiting their last in-flight response.
    draining: Vec<Rc<Pod>>,
    /// Replacement pods created so far.
    new_pods: Vec<Rc<Pod>>,
    to_create: usize,
    make_pod: MakePod,
    done: Shared<bool>,
    replaced: Shared<usize>,
    ticks_left: u32,
}

/// Reconciler ticks before the rollout gives up (an hour of virtual
/// time) — bounds the event queue if a replacement never turns ready.
const MAX_TICKS: u32 = 36_000;

/// Reconciler cadence. Fine enough that drains terminate promptly,
/// coarse enough that a rollout is O(hundreds) of events.
const TICK: Duration = Duration::from_millis(100);

/// Starts a rolling update of every pod currently behind `service`;
/// `make_pod` builds (and is responsible for starting) one replacement
/// pod. Returns a handle the caller can poll for completion.
pub fn run_rollout(
    sim: &mut Sim,
    service: Rc<ClusterIpService>,
    journal: Shared<DecisionJournal>,
    budget: RolloutBudget,
    make_pod: MakePod,
) -> RolloutHandle {
    let old: VecDeque<Rc<Pod>> = service.pods().into();
    let target = old.len();
    // Kubernetes rejects a strategy where both budgets are zero (it
    // could never make progress); normalize to the surge-by-one form.
    let budget = if budget.max_surge == 0 && budget.max_unavailable == 0 {
        RolloutBudget {
            max_surge: 1,
            max_unavailable: 0,
        }
    } else {
        budget
    };
    let done = shared(false);
    let replaced = shared(0usize);
    let state = Rc::new(std::cell::RefCell::new(RolloutState {
        service,
        journal,
        budget,
        target,
        to_create: old.len(),
        pending: old,
        draining: Vec::new(),
        new_pods: Vec::new(),
        make_pod,
        done: Rc::clone(&done),
        replaced: Rc::clone(&replaced),
        ticks_left: MAX_TICKS,
    }));
    if target == 0 {
        *done.borrow_mut() = true;
    } else {
        tick(sim, Rc::clone(&state));
    }
    RolloutHandle { done, replaced }
}

fn tick(sim: &mut Sim, state: Rc<std::cell::RefCell<RolloutState>>) {
    let finished = {
        let mut st = state.borrow_mut();
        let now = sim.now().as_duration();

        // Reap: drained pods are torn down and leave the service.
        let draining = std::mem::take(&mut st.draining);
        for pod in draining {
            if pod.is_drained() {
                pod.terminate();
                st.journal
                    .borrow_mut()
                    .push(now, ControlAction::Terminate, pod.id() as i64, 0);
                st.service.remove_pod(pod.id());
                *st.replaced.borrow_mut() += 1;
            } else {
                st.draining.push(pod);
            }
        }

        // Surge: create replacements while the budget holds.
        while st.new_pods.len() < st.to_create
            && st.service.backends() < st.target + st.budget.max_surge
        {
            let pod = (st.make_pod)(sim);
            st.journal
                .borrow_mut()
                .push(now, ControlAction::SurgeCreate, pod.id() as i64, 0);
            st.service.add_pod(Rc::clone(&pod));
            st.new_pods.push(pod);
        }

        // Drain: retire old pods as long as the ready set stays within
        // the unavailability budget afterwards.
        let mut ready = st.service.ready_backends();
        let floor = st.target.saturating_sub(st.budget.max_unavailable);
        while let Some(pod) = st.pending.front() {
            let is_ready = pod.is_ready();
            // An unready old pod (e.g. crashed) blocks nothing: drain
            // it for free. A ready one must leave `floor` ready pods
            // behind.
            if is_ready && ready.saturating_sub(1) < floor {
                break;
            }
            let pod = st.pending.pop_front().expect("peeked");
            pod.begin_drain();
            st.journal
                .borrow_mut()
                .push(now, ControlAction::DrainBegin, pod.id() as i64, 0);
            if is_ready {
                ready -= 1;
            }
            st.draining.push(pod);
        }

        let finished = st.pending.is_empty()
            && st.draining.is_empty()
            && st.new_pods.len() == st.to_create
            && st.new_pods.iter().all(|p| p.is_ready());
        if finished {
            st.journal.borrow_mut().push(
                now,
                ControlAction::RolloutDone,
                *st.replaced.borrow() as i64,
                0,
            );
            *st.done.borrow_mut() = true;
        }
        st.ticks_left = st.ticks_left.saturating_sub(1);
        finished || st.ticks_left == 0
    };
    if !finished {
        let state = Rc::clone(&state);
        sim.schedule_in(TICK, move |s| tick(s, state));
    }
}
