//! Pod lifecycle with readiness probes.
//!
//! The paper's runner "deploys the model onto a dedicated machine in
//! Kubernetes. Once the model deployment is finished (determined via
//! Kubernetes's readiness probes), a ClusterIP service interface is
//! deployed". A [`Pod`] models that: it spends a startup period
//! downloading the serialised model from the storage bucket and loading
//! it onto the device, then flips to `Ready`; its readiness probe
//! reports the phase, and traffic before readiness is refused.

use etude_faults::{FaultInjector, FaultKind};
use etude_metrics::hdr::Histogram;
use etude_serve::simserver::{RespondFn, ServeError, SimService};
use etude_simnet::{shared, Shared, Sim, SimTime};
use std::rc::Rc;
use std::time::Duration;

/// Kubernetes-style pod phases (the subset the runner observes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PodPhase {
    /// Container starting: model downloading/loading.
    Starting,
    /// Readiness probe passing; traffic may be routed here.
    Ready,
    /// Crashed (fault injection): down until the crash window ends,
    /// then restarts through `Starting` again.
    Crashed,
    /// Being replaced: readiness fails (no new connections) but
    /// requests already accepted run to completion.
    Draining,
    /// Torn down; the pod never serves again.
    Terminated,
}

struct PodState {
    phase: PodPhase,
    refused: u64,
    served: u64,
    in_flight: u64,
    latency: Histogram,
}

/// A pod wrapping an inference server with startup/readiness semantics.
pub struct Pod {
    id: u32,
    state: Shared<PodState>,
    server: Rc<dyn SimService>,
    startup: Duration,
    model_bytes: u64,
}

/// One pod's load counters, as the fleet view reports them: how much
/// traffic the replica absorbed and how its pod-local service time
/// (queueing + compute, network excluded) distributed. Mirrors what a
/// live pod's `/stats` endpoint exposes, so per-replica skew is
/// observable in simulated deployments too.
#[derive(Debug, Clone)]
pub struct PodLoadStats {
    /// Replica index within the deployment.
    pub id: u32,
    /// Requests served successfully.
    pub served: u64,
    /// Requests refused while not ready.
    pub refused: u64,
    /// Pod-local service time distribution in microseconds.
    pub latency: Histogram,
}

/// Bandwidth of pulling a serialised model from the storage bucket
/// (intra-region GCS-to-GCE, ~250 MB/s sustained).
const DOWNLOAD_BANDWIDTH: f64 = 2.5e8;

/// Fixed container + runtime initialisation time.
const BASE_STARTUP: Duration = Duration::from_secs(8);

impl Pod {
    /// Creates a pod around a server; `model_bytes` drives the
    /// download/load portion of startup time.
    pub fn new(server: Rc<dyn SimService>, model_bytes: u64) -> Rc<Pod> {
        Pod::new_with_id(server, model_bytes, 0)
    }

    /// Creates a pod carrying its replica index, so fleet views can
    /// attribute load to the right backend.
    pub fn new_with_id(server: Rc<dyn SimService>, model_bytes: u64, id: u32) -> Rc<Pod> {
        let download = Duration::from_secs_f64(model_bytes as f64 / DOWNLOAD_BANDWIDTH);
        Rc::new(Pod {
            id,
            state: shared(PodState {
                phase: PodPhase::Starting,
                refused: 0,
                served: 0,
                in_flight: 0,
                latency: Histogram::new(),
            }),
            server,
            startup: BASE_STARTUP + download,
            model_bytes,
        })
    }

    /// The pod's replica index.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Bytes of model weights resident on this pod. Replicated pods
    /// report the full table; shard-group pods report only their slice.
    pub fn model_bytes(&self) -> u64 {
        self.model_bytes
    }

    /// Schedules the startup sequence; the pod becomes ready after its
    /// startup time (unless a crash intervened — a crashed pod only
    /// comes back through its own restart sequence).
    pub fn start(self: &Rc<Self>, sim: &mut Sim) -> SimTime {
        let ready_at = sim.now().after(self.startup);
        let state = Rc::clone(&self.state_rc());
        sim.schedule_at(ready_at, move |_| {
            let mut s = state.borrow_mut();
            if s.phase == PodPhase::Starting {
                s.phase = PodPhase::Ready;
            }
        });
        ready_at
    }

    /// Schedules every [`FaultKind::Crash`] window of the injector's
    /// plan onto this pod: the pod drops to `Crashed` at the window
    /// start (refusing traffic) and begins a *full* restart — container
    /// startup plus model download, gated by the readiness probe — when
    /// the window ends. Plan times are relative to virtual time zero.
    pub fn schedule_crashes(self: &Rc<Self>, sim: &mut Sim, injector: &FaultInjector) {
        let crashes: Vec<(Duration, Duration)> = injector
            .plan()
            .windows
            .iter()
            .filter(|w| matches!(w.kind, FaultKind::Crash))
            .map(|w| (w.from, w.until))
            .collect();
        for (from, until) in crashes {
            let state = self.state_rc();
            let inj = injector.clone();
            sim.schedule_at(SimTime::ZERO.after(from), move |_| {
                let mut s = state.borrow_mut();
                if s.phase != PodPhase::Crashed {
                    inj.note_crash();
                }
                s.phase = PodPhase::Crashed;
            });
            let state = self.state_rc();
            let startup = self.startup;
            sim.schedule_at(SimTime::ZERO.after(until), move |sim| {
                state.borrow_mut().phase = PodPhase::Starting;
                let state = Rc::clone(&state);
                sim.schedule_in(startup, move |_| {
                    let mut s = state.borrow_mut();
                    if s.phase == PodPhase::Starting {
                        s.phase = PodPhase::Ready;
                    }
                });
            });
        }
    }

    fn state_rc(&self) -> Shared<PodState> {
        Rc::clone(&self.state)
    }

    /// The readiness probe.
    pub fn phase(&self) -> PodPhase {
        self.state.borrow().phase
    }

    /// Whether the probe passes.
    pub fn is_ready(&self) -> bool {
        self.phase() == PodPhase::Ready
    }

    /// Total startup duration (base + model download).
    pub fn startup_duration(&self) -> Duration {
        self.startup
    }

    /// Flips the pod to `Draining`: the readiness probe starts failing
    /// (the service routes nothing new here) while accepted requests
    /// run to completion. Only a live pod drains; a crashed or already
    /// terminated one has nothing to finish.
    pub fn begin_drain(&self) {
        let mut s = self.state.borrow_mut();
        if matches!(s.phase, PodPhase::Ready | PodPhase::Starting) {
            s.phase = PodPhase::Draining;
        }
    }

    /// Tears the pod down for good.
    pub fn terminate(&self) {
        self.state.borrow_mut().phase = PodPhase::Terminated;
    }

    /// Requests accepted but not yet answered.
    pub fn in_flight(&self) -> u64 {
        self.state.borrow().in_flight
    }

    /// Whether the pod has finished draining: no request it accepted is
    /// still running. (Trivially true for pods that never drained.)
    pub fn is_drained(&self) -> bool {
        let s = self.state.borrow();
        s.phase == PodPhase::Draining && s.in_flight == 0
    }

    /// Requests refused because the pod was not ready.
    pub fn refused(&self) -> u64 {
        self.state.borrow().refused
    }

    /// Requests served successfully.
    pub fn served(&self) -> u64 {
        self.state.borrow().served
    }

    /// A snapshot of the pod's load counters.
    pub fn load_stats(&self) -> PodLoadStats {
        let s = self.state.borrow();
        PodLoadStats {
            id: self.id,
            served: s.served,
            refused: s.refused,
            latency: s.latency.clone(),
        }
    }
}

impl SimService for Pod {
    fn submit(self: Rc<Self>, sim: &mut Sim, respond: RespondFn) {
        if !self.is_ready() {
            self.state.borrow_mut().refused += 1;
            respond(sim, Err(ServeError::Overloaded));
            return;
        }
        // Wrap the continuation so the pod observes its own service
        // time: submit to respond is queueing plus compute on this
        // replica (the wire is the caller's problem).
        let state = self.state_rc();
        let submitted = sim.now();
        state.borrow_mut().in_flight += 1;
        let wrapped: RespondFn = Box::new(move |s, result| {
            {
                let mut st = state.borrow_mut();
                st.in_flight -= 1;
                if result.is_ok() {
                    st.served += 1;
                    st.latency
                        .record(s.now().since(submitted).as_micros() as u64);
                }
            }
            respond(s, result);
        });
        Rc::clone(&self.server).submit(sim, wrapped);
    }

    fn queue_depth(&self) -> usize {
        self.server.queue_depth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etude_serve::simserver::{RustServerConfig, SimRustServer};
    use etude_serve::ServiceProfile;
    use etude_tensor::Device;

    fn pod_with_bytes(bytes: u64) -> Rc<Pod> {
        let server = SimRustServer::new(
            ServiceProfile::static_response(&Device::cpu()),
            RustServerConfig::cpu(1),
        );
        Pod::new(server, bytes)
    }

    #[test]
    fn pod_becomes_ready_after_startup() {
        let mut sim = Sim::new();
        let pod = pod_with_bytes(0);
        pod.start(&mut sim);
        assert!(!pod.is_ready());
        sim.run_until(SimTime::ZERO.after(Duration::from_secs(7)));
        assert!(!pod.is_ready());
        sim.run_until(SimTime::ZERO.after(Duration::from_secs(9)));
        assert!(pod.is_ready());
    }

    #[test]
    fn larger_models_start_slower() {
        // 2.28 GB (the 10M-item table) takes ~9 s to pull at 250 MB/s.
        let small = pod_with_bytes(0);
        let large = pod_with_bytes(2_280_000_000);
        assert!(large.startup_duration() > small.startup_duration() + Duration::from_secs(8));
    }

    #[test]
    fn traffic_before_readiness_is_refused() {
        let mut sim = Sim::new();
        let pod = pod_with_bytes(0);
        pod.start(&mut sim);
        let outcome = etude_simnet::shared(None);
        let o = Rc::clone(&outcome);
        Rc::clone(&pod).submit(
            &mut sim,
            Box::new(move |_, result| {
                *o.borrow_mut() = Some(result.is_err());
            }),
        );
        sim.run_to_completion();
        assert_eq!(*outcome.borrow(), Some(true));
        assert_eq!(pod.refused(), 1);
    }

    #[test]
    fn crash_windows_take_the_pod_down_and_restart_it() {
        use etude_faults::FaultPlan;

        let mut sim = Sim::new();
        let pod = pod_with_bytes(0); // 8 s startup
        pod.start(&mut sim);
        // Crash from t=20s to t=25s; the pod restarts at 25s and needs
        // its full 8 s startup again, so readiness returns at 33s.
        let injector = FaultInjector::new(FaultPlan::seeded(1).with_window(
            Duration::from_secs(20),
            Duration::from_secs(25),
            FaultKind::Crash,
        ));
        pod.schedule_crashes(&mut sim, &injector);
        let at = |s: u64| SimTime::ZERO.after(Duration::from_secs(s));
        sim.run_until(at(10));
        assert_eq!(pod.phase(), PodPhase::Ready, "up before the crash");
        sim.run_until(at(21));
        assert_eq!(pod.phase(), PodPhase::Crashed, "down inside the window");
        sim.run_until(at(26));
        assert_eq!(pod.phase(), PodPhase::Starting, "restarting after it");
        sim.run_until(at(34));
        assert_eq!(pod.phase(), PodPhase::Ready, "restart completed");
        assert_eq!(injector.counters().crashes(), 1);
    }

    #[test]
    fn crashed_pods_refuse_traffic() {
        use etude_faults::FaultPlan;

        let mut sim = Sim::new();
        let pod = pod_with_bytes(0);
        pod.start(&mut sim);
        let injector = FaultInjector::new(FaultPlan::seeded(2).with_window(
            Duration::from_secs(15),
            Duration::from_secs(60),
            FaultKind::Crash,
        ));
        pod.schedule_crashes(&mut sim, &injector);
        let outcome = etude_simnet::shared(None);
        let o = Rc::clone(&outcome);
        let pod2 = Rc::clone(&pod);
        sim.schedule_in(Duration::from_secs(20), move |s| {
            pod2.submit(
                s,
                Box::new(move |_, result| {
                    *o.borrow_mut() = Some(result.is_err());
                }),
            );
        });
        sim.run_until(SimTime::ZERO.after(Duration::from_secs(30)));
        assert_eq!(*outcome.borrow(), Some(true), "crashed pod refused");
        assert_eq!(pod.refused(), 1);
    }

    #[test]
    fn draining_pods_refuse_new_traffic_but_finish_accepted_work() {
        let mut sim = Sim::new();
        let pod = pod_with_bytes(0);
        pod.start(&mut sim);
        sim.run_until(SimTime::ZERO.after(Duration::from_secs(10)));
        assert!(pod.is_ready());

        // Accept one request, then drain before it completes.
        let outcome = etude_simnet::shared(None);
        let o = Rc::clone(&outcome);
        Rc::clone(&pod).submit(
            &mut sim,
            Box::new(move |_, result| {
                *o.borrow_mut() = Some(result.is_ok());
            }),
        );
        assert_eq!(pod.in_flight(), 1);
        pod.begin_drain();
        assert_eq!(pod.phase(), PodPhase::Draining);
        assert!(!pod.is_ready(), "readiness fails while draining");
        assert!(!pod.is_drained(), "one request still running");

        // New traffic is refused while the accepted request completes.
        let refused = etude_simnet::shared(None);
        let r = Rc::clone(&refused);
        Rc::clone(&pod).submit(
            &mut sim,
            Box::new(move |_, result| {
                *r.borrow_mut() = Some(result.is_err());
            }),
        );
        sim.run_to_completion();
        assert_eq!(*outcome.borrow(), Some(true), "in-flight work finished");
        assert_eq!(*refused.borrow(), Some(true), "new work refused");
        assert!(pod.is_drained());

        pod.terminate();
        assert_eq!(pod.phase(), PodPhase::Terminated);
    }

    #[test]
    fn terminated_pods_never_come_back() {
        let mut sim = Sim::new();
        let pod = pod_with_bytes(0);
        pod.start(&mut sim);
        pod.terminate();
        sim.run_to_completion();
        assert_eq!(
            pod.phase(),
            PodPhase::Terminated,
            "startup completion must not resurrect a terminated pod"
        );
    }

    #[test]
    fn traffic_after_readiness_is_served() {
        let mut sim = Sim::new();
        let pod = pod_with_bytes(0);
        pod.start(&mut sim);
        let outcome = etude_simnet::shared(None);
        let o = Rc::clone(&outcome);
        let pod2 = Rc::clone(&pod);
        sim.schedule_in(Duration::from_secs(10), move |s| {
            pod2.submit(
                s,
                Box::new(move |_, result| {
                    *o.borrow_mut() = Some(result.is_ok());
                }),
            );
        });
        sim.run_to_completion();
        assert_eq!(*outcome.borrow(), Some(true));
        assert_eq!(pod.refused(), 0);
    }
}
