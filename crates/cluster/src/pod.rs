//! Pod lifecycle with readiness probes.
//!
//! The paper's runner "deploys the model onto a dedicated machine in
//! Kubernetes. Once the model deployment is finished (determined via
//! Kubernetes's readiness probes), a ClusterIP service interface is
//! deployed". A [`Pod`] models that: it spends a startup period
//! downloading the serialised model from the storage bucket and loading
//! it onto the device, then flips to `Ready`; its readiness probe
//! reports the phase, and traffic before readiness is refused.

use etude_serve::simserver::{RespondFn, ServeError, SimService};
use etude_simnet::{shared, Shared, Sim, SimTime};
use std::rc::Rc;
use std::time::Duration;

/// Kubernetes-style pod phases (the subset the runner observes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PodPhase {
    /// Container starting: model downloading/loading.
    Starting,
    /// Readiness probe passing; traffic may be routed here.
    Ready,
}

struct PodState {
    phase: PodPhase,
    refused: u64,
}

/// A pod wrapping an inference server with startup/readiness semantics.
pub struct Pod {
    state: Shared<PodState>,
    server: Rc<dyn SimService>,
    startup: Duration,
}

/// Bandwidth of pulling a serialised model from the storage bucket
/// (intra-region GCS-to-GCE, ~250 MB/s sustained).
const DOWNLOAD_BANDWIDTH: f64 = 2.5e8;

/// Fixed container + runtime initialisation time.
const BASE_STARTUP: Duration = Duration::from_secs(8);

impl Pod {
    /// Creates a pod around a server; `model_bytes` drives the
    /// download/load portion of startup time.
    pub fn new(server: Rc<dyn SimService>, model_bytes: u64) -> Rc<Pod> {
        let download = Duration::from_secs_f64(model_bytes as f64 / DOWNLOAD_BANDWIDTH);
        Rc::new(Pod {
            state: shared(PodState {
                phase: PodPhase::Starting,
                refused: 0,
            }),
            server,
            startup: BASE_STARTUP + download,
        })
    }

    /// Schedules the startup sequence; the pod becomes ready after its
    /// startup time.
    pub fn start(self: &Rc<Self>, sim: &mut Sim) -> SimTime {
        let ready_at = sim.now().after(self.startup);
        let state = Rc::clone(&self.state_rc());
        sim.schedule_at(ready_at, move |_| {
            state.borrow_mut().phase = PodPhase::Ready;
        });
        ready_at
    }

    fn state_rc(&self) -> Shared<PodState> {
        Rc::clone(&self.state)
    }

    /// The readiness probe.
    pub fn phase(&self) -> PodPhase {
        self.state.borrow().phase
    }

    /// Whether the probe passes.
    pub fn is_ready(&self) -> bool {
        self.phase() == PodPhase::Ready
    }

    /// Total startup duration (base + model download).
    pub fn startup_duration(&self) -> Duration {
        self.startup
    }

    /// Requests refused because the pod was not ready.
    pub fn refused(&self) -> u64 {
        self.state.borrow().refused
    }
}

impl SimService for Pod {
    fn submit(self: Rc<Self>, sim: &mut Sim, respond: RespondFn) {
        if !self.is_ready() {
            self.state.borrow_mut().refused += 1;
            respond(sim, Err(ServeError::Overloaded));
            return;
        }
        Rc::clone(&self.server).submit(sim, respond);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etude_serve::simserver::{RustServerConfig, SimRustServer};
    use etude_serve::ServiceProfile;
    use etude_tensor::Device;

    fn pod_with_bytes(bytes: u64) -> Rc<Pod> {
        let server = SimRustServer::new(
            ServiceProfile::static_response(&Device::cpu()),
            RustServerConfig::cpu(1),
        );
        Pod::new(server, bytes)
    }

    #[test]
    fn pod_becomes_ready_after_startup() {
        let mut sim = Sim::new();
        let pod = pod_with_bytes(0);
        pod.start(&mut sim);
        assert!(!pod.is_ready());
        sim.run_until(SimTime::ZERO.after(Duration::from_secs(7)));
        assert!(!pod.is_ready());
        sim.run_until(SimTime::ZERO.after(Duration::from_secs(9)));
        assert!(pod.is_ready());
    }

    #[test]
    fn larger_models_start_slower() {
        // 2.28 GB (the 10M-item table) takes ~9 s to pull at 250 MB/s.
        let small = pod_with_bytes(0);
        let large = pod_with_bytes(2_280_000_000);
        assert!(large.startup_duration() > small.startup_duration() + Duration::from_secs(8));
    }

    #[test]
    fn traffic_before_readiness_is_refused() {
        let mut sim = Sim::new();
        let pod = pod_with_bytes(0);
        pod.start(&mut sim);
        let outcome = etude_simnet::shared(None);
        let o = Rc::clone(&outcome);
        Rc::clone(&pod).submit(
            &mut sim,
            Box::new(move |_, result| {
                *o.borrow_mut() = Some(result.is_err());
            }),
        );
        sim.run_to_completion();
        assert_eq!(*outcome.borrow(), Some(true));
        assert_eq!(pod.refused(), 1);
    }

    #[test]
    fn traffic_after_readiness_is_served() {
        let mut sim = Sim::new();
        let pod = pod_with_bytes(0);
        pod.start(&mut sim);
        let outcome = etude_simnet::shared(None);
        let o = Rc::clone(&outcome);
        let pod2 = Rc::clone(&pod);
        sim.schedule_in(Duration::from_secs(10), move |s| {
            pod2.submit(
                s,
                Box::new(move |_, result| {
                    *o.borrow_mut() = Some(result.is_ok());
                }),
            );
        });
        sim.run_to_completion();
        assert_eq!(*outcome.borrow(), Some(true));
        assert_eq!(pod.refused(), 0);
    }
}
