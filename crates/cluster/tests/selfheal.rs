//! The chaos acceptance test for the self-healing control plane
//! (DESIGN.md §11): a four-replica managed deployment serves a sustained
//! load while (a) a seeded fault window drops half the client-server
//! messages and (b) a zero-downtime rolling restart replaces every pod
//! mid-run. The resilient (retrying) client must see **zero failed
//! requests**, and the control plane's decision journal must replay
//! byte-for-byte on a second run of the same seeds.

use etude_cluster::{Deployment, DeploymentSpec, InstanceType, RolloutBudget};
use etude_control::{ControlAction, DecisionJournal, EjectionConfig};
use etude_faults::{FaultInjector, FaultKind, FaultPlan, RetryPolicy};
use etude_loadgen::{LoadConfig, LoadTestResult, SimLoadGen};
use etude_serve::ServiceProfile;
use etude_simnet::{shared, Sim};
use etude_tensor::Device;
use etude_workload::{SyntheticWorkload, WorkloadConfig};
use std::rc::Rc;
use std::time::Duration;

/// One full chaos run: 4 replicas, load ramping to `rps`, a 50% drop
/// window over seconds 1–3 of the load phase, and a rolling restart
/// kicked off 500 ms in. Returns the load-test result, the rendered
/// journal and the number of pods the rollout replaced.
fn chaos_run(rps: u64) -> (LoadTestResult, String, usize) {
    let mut sim = Sim::new();
    let profile = ServiceProfile::static_response(&Device::cpu());
    let journal = shared(DecisionJournal::new());
    let deployment = Rc::new(
        Deployment::create_managed(
            &mut sim,
            DeploymentSpec {
                instance: InstanceType::CpuE2,
                replicas: 4,
                model_bytes: 0,
                node_budget: None,
            },
            &profile,
            EjectionConfig::default(),
            Rc::clone(&journal),
        )
        .unwrap(),
    );
    sim.run_until(deployment.ready_at());
    let start = sim.now();

    // The drop window is anchored to the load phase, wherever pod
    // startup put it on the virtual clock.
    let plan = FaultPlan::seeded(17).with_window(
        start.as_duration() + Duration::from_secs(1),
        start.as_duration() + Duration::from_secs(3),
        FaultKind::Drop { prob: 0.5 },
    );
    let policy = RetryPolicy {
        base: Duration::from_millis(100),
        cap: Duration::from_secs(1),
        max_retries: 4,
        jitter: 0.0,
    };
    let log = SyntheticWorkload::new(WorkloadConfig {
        catalog_size: 10_000,
        alpha_length: 2.0,
        alpha_clicks: 1.8,
        max_session_len: 50,
        seed: 5,
    })
    .generate(60_000);
    let handle = SimLoadGen::schedule_resilient(
        &mut sim,
        deployment.service(),
        &log,
        LoadConfig::scaled_rampup(rps, 6),
        start,
        FaultInjector::new(plan),
        policy,
    );

    // Rolling restart of the whole fleet, mid-load.
    let rollout = shared(None);
    let (d2, r2) = (Rc::clone(&deployment), Rc::clone(&rollout));
    sim.schedule_in(Duration::from_millis(500), move |s| {
        *r2.borrow_mut() = Some(d2.rolling_update(s, RolloutBudget::zero_downtime()));
    });

    sim.run_to_completion();
    let result = handle.collect();
    let rollout = rollout.borrow();
    let rollout = rollout.as_ref().expect("rollout was scheduled");
    assert!(rollout.is_done(), "rollout never finished");
    let rendered = journal.borrow().render_json();
    (result, rendered, rollout.replaced())
}

#[test]
fn rolling_restart_under_chaos_loses_no_client_requests() {
    let (result, journal, replaced) = chaos_run(200);

    // The acceptance criterion: every client request eventually
    // succeeded, even with half the messages dropped for two seconds
    // and every pod replaced under zero-downtime budgets.
    assert_eq!(
        result.errors, 0,
        "client-visible failures during rolling restart (sent {}, ok {}, retries {})",
        result.sent, result.ok, result.retries
    );
    assert!(result.sent > 400, "load ran: sent {}", result.sent);
    assert_eq!(result.sent, result.ok);
    assert!(
        result.retries > 10,
        "the drop window should force retries: {}",
        result.retries
    );
    assert_eq!(replaced, 4, "every pod replaced");

    // The journal records the full rollout choreography.
    let parsed = etude_control::parse_journal(&journal).expect("journal parses");
    assert_eq!(parsed.of(ControlAction::SurgeCreate).len(), 4);
    assert_eq!(parsed.of(ControlAction::DrainBegin).len(), 4);
    assert_eq!(parsed.of(ControlAction::Terminate).len(), 4);
    assert_eq!(parsed.of(ControlAction::RolloutDone).len(), 1);
}

#[test]
fn chaos_journal_replays_byte_for_byte() {
    let (a, journal_a, _) = chaos_run(150);
    let (b, journal_b, _) = chaos_run(150);
    assert_eq!(journal_a, journal_b, "journal must be bit-identical");
    assert_eq!(a.sent, b.sent);
    assert_eq!(a.ok, b.ok);
    assert_eq!(a.retries, b.retries);
    assert_eq!(a.corrected.p99(), b.corrected.p99());
}
