//! Bounded exponential backoff with seeded jitter.
//!
//! The resilient client retries transient failures (timeouts, 5xx,
//! dropped connections) under a *per-request deadline budget*: delays
//! double from a base up to a cap, each shrunk by a jitter factor drawn
//! from a seeded RNG so that (a) synchronized retry storms decorrelate
//! and (b) two runs with the same seed produce bit-identical schedules.

use crate::deadline::Deadline;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// A retry policy: how many times, how long, how random.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Nominal delay before the first retry; doubles per attempt.
    pub base: Duration,
    /// Upper bound on any single nominal delay.
    pub cap: Duration,
    /// Maximum retries after the initial attempt (0 = never retry).
    pub max_retries: u32,
    /// Jitter fraction in `[0, 1]`: a delay with nominal value `d` is
    /// drawn uniformly from `[d * (1 - jitter), d]`, then floored at
    /// `d / 2` — full jitter decorrelates retries but never erases the
    /// pause entirely (a zero-delay retry lands back inside the same
    /// overload instant and feeds the storm it was meant to break).
    pub jitter: f64,
}

impl RetryPolicy {
    /// No retries at all: the initial attempt is the only attempt.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            base: Duration::ZERO,
            cap: Duration::ZERO,
            max_retries: 0,
            jitter: 0.0,
        }
    }

    /// A sensible default for chaos runs: 5 retries, 2 ms → 64 ms
    /// exponential, half-width jitter.
    pub fn default_chaos() -> RetryPolicy {
        RetryPolicy {
            base: Duration::from_millis(2),
            cap: Duration::from_millis(64),
            max_retries: 5,
            jitter: 0.5,
        }
    }

    /// Overrides the retry count.
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Overrides the jitter fraction (clamped to `[0, 1]`).
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.clamp(0.0, 1.0);
        self
    }

    /// The nominal (un-jittered) delay before retry `attempt` (0-based):
    /// `min(base * 2^attempt, cap)`, saturating.
    pub fn nominal_delay(&self, attempt: u32) -> Duration {
        let factor = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
        let nanos = (self.base.as_nanos() as u64).saturating_mul(factor);
        Duration::from_nanos(nanos).min(self.cap)
    }
}

/// The per-request backoff state machine: counts attempts and draws
/// jittered delays from a seeded RNG.
#[derive(Debug, Clone)]
pub struct Backoff {
    policy: RetryPolicy,
    attempt: u32,
    rng: SmallRng,
}

impl Backoff {
    /// Starts a backoff schedule for one request.
    pub fn new(policy: RetryPolicy, seed: u64) -> Backoff {
        Backoff {
            policy,
            attempt: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Retries consumed so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// The next jittered delay, or `None` when the retry budget is
    /// exhausted. Each call consumes one retry.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.attempt >= self.policy.max_retries {
            return None;
        }
        let nominal = self.policy.nominal_delay(self.attempt);
        self.attempt += 1;
        if nominal.is_zero() || self.policy.jitter <= 0.0 {
            return Some(nominal);
        }
        // Uniform in [nominal * (1 - jitter), nominal], floored at half
        // the nominal: jitter = 1.0 could otherwise draw a ~0 ms first
        // retry, and an instant retry against an overloaded backend is
        // exactly the synchronized storm the jitter exists to prevent.
        let unit: f64 = self.rng.gen();
        let scale = (1.0 - self.policy.jitter.clamp(0.0, 1.0) * unit).max(0.5);
        Some(Duration::from_secs_f64(nominal.as_secs_f64() * scale))
    }

    /// Like [`Backoff::next_delay`], but clamped to what is left of the
    /// request's deadline budget — so the *total* time spent sleeping
    /// between retries can never exceed the budget. Returns `None` when
    /// either the retry budget or the deadline is exhausted.
    pub fn next_delay_within(&mut self, deadline: &Deadline) -> Option<Duration> {
        if deadline.expired() {
            return None;
        }
        let delay = self.next_delay()?;
        Some(deadline.clamp(delay))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_delays_double_up_to_the_cap() {
        let p = RetryPolicy {
            base: Duration::from_millis(2),
            cap: Duration::from_millis(10),
            max_retries: 8,
            jitter: 0.0,
        };
        assert_eq!(p.nominal_delay(0), Duration::from_millis(2));
        assert_eq!(p.nominal_delay(1), Duration::from_millis(4));
        assert_eq!(p.nominal_delay(2), Duration::from_millis(8));
        assert_eq!(p.nominal_delay(3), Duration::from_millis(10), "capped");
        assert_eq!(p.nominal_delay(63), Duration::from_millis(10));
        // Shift overflow saturates instead of wrapping.
        assert_eq!(p.nominal_delay(200), Duration::from_millis(10));
    }

    #[test]
    fn retry_budget_is_enforced() {
        let mut b = Backoff::new(RetryPolicy::default_chaos().with_max_retries(3), 1);
        assert!(b.next_delay().is_some());
        assert!(b.next_delay().is_some());
        assert!(b.next_delay().is_some());
        assert_eq!(b.next_delay(), None, "4th retry refused");
        assert_eq!(b.attempts(), 3);
    }

    #[test]
    fn no_retry_policy_never_delays() {
        let mut b = Backoff::new(RetryPolicy::none(), 9);
        assert_eq!(b.next_delay(), None);
    }

    #[test]
    fn same_seed_same_schedule() {
        let policy = RetryPolicy::default_chaos();
        let delays = |seed: u64| -> Vec<Duration> {
            let mut b = Backoff::new(policy.clone(), seed);
            std::iter::from_fn(|| b.next_delay()).collect()
        };
        assert_eq!(delays(42), delays(42));
        assert_ne!(delays(42), delays(43), "different seeds jitter apart");
    }

    #[test]
    fn full_jitter_never_collapses_to_an_instant_retry() {
        let policy = RetryPolicy {
            base: Duration::from_millis(4),
            cap: Duration::from_millis(64),
            max_retries: 1,
            jitter: 1.0,
        };
        for seed in 0..512u64 {
            let d = Backoff::new(policy.clone(), seed).next_delay().unwrap();
            assert!(
                d >= policy.base / 2,
                "seed {seed}: first retry delay {d:?} below the {:?} storm floor",
                policy.base / 2
            );
        }
    }

    #[test]
    fn deadline_caps_the_total_sleep() {
        let mut b = Backoff::new(
            RetryPolicy {
                base: Duration::from_secs(10),
                cap: Duration::from_secs(10),
                max_retries: 5,
                jitter: 0.0,
            },
            3,
        );
        let d = Deadline::after(Duration::from_millis(50));
        let delay = b.next_delay_within(&d).unwrap();
        assert!(delay <= Duration::from_millis(50));
    }

    #[test]
    fn expired_deadline_stops_retrying() {
        let mut b = Backoff::new(RetryPolicy::default_chaos(), 3);
        let d = Deadline::after(Duration::ZERO);
        assert_eq!(b.next_delay_within(&d), None);
        assert_eq!(b.attempts(), 0, "no retry consumed once out of budget");
    }
}
