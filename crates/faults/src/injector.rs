//! Runtime evaluation of a [`FaultPlan`].
//!
//! A [`FaultInjector`] answers "does this fault fire for this request,
//! now?" for every decision point in the stack. Two properties matter:
//!
//! 1. **Determinism under concurrency.** Probabilistic draws are *not*
//!    pulled from a shared RNG stream — worker threads would race on the
//!    draw order. Instead each draw is a pure hash of
//!    `(plan seed, correlation id, window index)`, so the decision for a
//!    given request is the same no matter which thread asks or when.
//! 2. **Dual clocks.** The discrete-event simulator runs on virtual
//!    time while `rustserver` runs on wall time, so every decision
//!    method takes an explicit `elapsed` duration; wall-clock callers
//!    use [`FaultInjector::elapsed`] for it.
//!
//! Fired faults are tallied in shared [`FaultCounters`] so tests and
//! `/stats` can assert on exactly how much chaos was delivered.

use crate::plan::{FaultKind, FaultPlan};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Counts of faults actually fired, shared across threads.
#[derive(Debug, Default)]
pub struct FaultCounters {
    spikes: AtomicU64,
    drops: AtomicU64,
    slowdowns: AtomicU64,
    errors: AtomicU64,
    resets: AtomicU64,
    crashes: AtomicU64,
}

impl FaultCounters {
    /// Latency spikes applied to messages.
    pub fn spikes(&self) -> u64 {
        self.spikes.load(Ordering::Relaxed)
    }

    /// Messages dropped (including partition losses).
    pub fn drops(&self) -> u64 {
        self.drops.load(Ordering::Relaxed)
    }

    /// Server-side slow-downs applied to requests.
    pub fn slowdowns(&self) -> u64 {
        self.slowdowns.load(Ordering::Relaxed)
    }

    /// Injected error responses.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Mid-response connection resets.
    pub fn resets(&self) -> u64 {
        self.resets.load(Ordering::Relaxed)
    }

    /// Pod crash windows entered.
    pub fn crashes(&self) -> u64 {
        self.crashes.load(Ordering::Relaxed)
    }

    /// Sum of every fault fired.
    pub fn total(&self) -> u64 {
        self.spikes()
            + self.drops()
            + self.slowdowns()
            + self.errors()
            + self.resets()
            + self.crashes()
    }
}

/// SplitMix64 finalizer: a strong, cheap 64-bit mixer.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` as a pure function of its inputs — the
/// same `(seed, id, salt)` triple always draws the same value, on any
/// thread, in any order.
pub fn unit_draw(seed: u64, id: u64, salt: u64) -> f64 {
    let h = splitmix64(seed ^ splitmix64(id ^ splitmix64(salt)));
    // 53 mantissa bits -> exact double in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Evaluates a [`FaultPlan`] at runtime. Cheap to clone; clones share
/// the same counters and run-start anchor.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: Arc<FaultPlan>,
    start: Instant,
    counters: Arc<FaultCounters>,
}

impl FaultInjector {
    /// Builds an injector anchored at "now" for wall-clock callers.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            plan: Arc::new(plan),
            start: Instant::now(),
            counters: Arc::new(FaultCounters::default()),
        }
    }

    /// An injector for a calm plan: never fires anything.
    pub fn calm() -> FaultInjector {
        FaultInjector::new(FaultPlan::calm())
    }

    /// The plan being evaluated.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The shared fault tallies.
    pub fn counters(&self) -> Arc<FaultCounters> {
        Arc::clone(&self.counters)
    }

    /// Wall-clock elapsed time since the injector was built; the
    /// `elapsed` argument real-time callers pass to decision methods.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Per-window probability check, keyed so each window decides
    /// independently for the same request.
    fn fires(&self, prob: f64, id: u64, window_idx: usize) -> bool {
        prob > 0.0 && unit_draw(self.plan.seed, id, window_idx as u64) < prob
    }

    /// Extra link latency to add to a message sent at `elapsed`.
    /// Sums every active [`FaultKind::LatencySpike`] window.
    pub fn latency_extra(&self, elapsed: Duration) -> Duration {
        let mut extra = Duration::ZERO;
        for w in self.plan.active_at(elapsed) {
            if let FaultKind::LatencySpike { extra_us } = w.kind {
                extra += Duration::from_micros(extra_us);
            }
        }
        if !extra.is_zero() {
            self.counters.spikes.fetch_add(1, Ordering::Relaxed);
        }
        extra
    }

    /// Whether a message with correlation id `id` sent at `elapsed` is
    /// lost. Partitions drop everything; [`FaultKind::Drop`] windows
    /// draw per-message.
    pub fn drops_message(&self, elapsed: Duration, id: u64) -> bool {
        for (idx, w) in self.plan.windows.iter().enumerate() {
            if !w.active_at(elapsed) {
                continue;
            }
            let hit = match w.kind {
                FaultKind::Partition => true,
                FaultKind::Drop { prob } => self.fires(prob, id, idx),
                _ => false,
            };
            if hit {
                self.counters.drops.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Server-side stall to apply to a request arriving at `elapsed`.
    /// Sums every active [`FaultKind::SlowDown`] window.
    pub fn slowdown(&self, elapsed: Duration) -> Duration {
        let mut extra = Duration::ZERO;
        for w in self.plan.active_at(elapsed) {
            if let FaultKind::SlowDown { extra_us } = w.kind {
                extra += Duration::from_micros(extra_us);
            }
        }
        if !extra.is_zero() {
            self.counters.slowdowns.fetch_add(1, Ordering::Relaxed);
        }
        extra
    }

    /// Whether to answer request `id` with an injected error, and which
    /// status. First active window wins.
    pub fn error_response(&self, elapsed: Duration, id: u64) -> Option<u16> {
        for (idx, w) in self.plan.windows.iter().enumerate() {
            if !w.active_at(elapsed) {
                continue;
            }
            if let FaultKind::ErrorResponse { prob, status } = w.kind {
                if self.fires(prob, id, idx) {
                    self.counters.errors.fetch_add(1, Ordering::Relaxed);
                    return Some(status);
                }
            }
        }
        None
    }

    /// Whether to reset the connection mid-response for request `id`.
    pub fn resets_connection(&self, elapsed: Duration, id: u64) -> bool {
        for (idx, w) in self.plan.windows.iter().enumerate() {
            if !w.active_at(elapsed) {
                continue;
            }
            if let FaultKind::ConnReset { prob } = w.kind {
                if self.fires(prob, id, idx) {
                    self.counters.resets.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
            }
        }
        false
    }

    /// Whether a [`FaultKind::Crash`] window covers `elapsed` (the pod
    /// is down; it restarts when the window ends).
    pub fn crashed(&self, elapsed: Duration) -> bool {
        self.plan
            .active_at(elapsed)
            .any(|w| matches!(w.kind, FaultKind::Crash))
    }

    /// Records that a crash window was entered (called once per crash by
    /// whoever owns the pod lifecycle, not per query).
    pub fn note_crash(&self) {
        self.counters.crashes.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Duration {
        Duration::from_millis(ms)
    }

    #[test]
    fn unit_draw_is_a_pure_function() {
        assert_eq!(unit_draw(7, 11, 0), unit_draw(7, 11, 0));
        assert_ne!(unit_draw(7, 11, 0), unit_draw(7, 12, 0));
        assert_ne!(unit_draw(7, 11, 0), unit_draw(8, 11, 0));
        assert_ne!(unit_draw(7, 11, 0), unit_draw(7, 11, 1));
        let d = unit_draw(123, 456, 789);
        assert!((0.0..1.0).contains(&d));
    }

    #[test]
    fn unit_draw_hits_probability_within_tolerance() {
        let hits = (0..10_000).filter(|&id| unit_draw(42, id, 0) < 0.2).count();
        assert!(
            (1_700..2_300).contains(&hits),
            "expected ~2000 hits at p=0.2, got {hits}"
        );
    }

    #[test]
    fn calm_injector_never_fires() {
        let inj = FaultInjector::calm();
        for ms in [0, 10, 1_000, 100_000] {
            assert_eq!(inj.latency_extra(t(ms)), Duration::ZERO);
            assert!(!inj.drops_message(t(ms), ms));
            assert_eq!(inj.slowdown(t(ms)), Duration::ZERO);
            assert_eq!(inj.error_response(t(ms), ms), None);
            assert!(!inj.resets_connection(t(ms), ms));
            assert!(!inj.crashed(t(ms)));
        }
        assert_eq!(inj.counters().total(), 0);
    }

    #[test]
    fn faults_fire_only_inside_their_window() {
        let plan = FaultPlan::seeded(5)
            .with_window(t(100), t(200), FaultKind::LatencySpike { extra_us: 300 })
            .with_window(t(100), t(200), FaultKind::SlowDown { extra_us: 50 })
            .with_window(t(100), t(200), FaultKind::Crash);
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.latency_extra(t(50)), Duration::ZERO);
        assert_eq!(inj.latency_extra(t(150)), Duration::from_micros(300));
        assert_eq!(inj.slowdown(t(150)), Duration::from_micros(50));
        assert_eq!(inj.slowdown(t(250)), Duration::ZERO);
        assert!(inj.crashed(t(150)));
        assert!(!inj.crashed(t(250)));
        assert_eq!(inj.counters().spikes(), 1);
        assert_eq!(inj.counters().slowdowns(), 1);
    }

    #[test]
    fn partition_drops_everything_probabilistic_drop_does_not() {
        let plan = FaultPlan::seeded(5)
            .with_window(t(0), t(100), FaultKind::Partition)
            .with_window(t(200), t(300), FaultKind::Drop { prob: 0.5 });
        let inj = FaultInjector::new(plan);
        assert!((0..100).all(|id| inj.drops_message(t(50), id)));
        let dropped = (0..1_000)
            .filter(|&id| inj.drops_message(t(250), id))
            .count();
        assert!(
            (350..650).contains(&dropped),
            "expected ~500 drops at p=0.5, got {dropped}"
        );
        assert!(!inj.drops_message(t(150), 1), "gap between windows is safe");
    }

    #[test]
    fn decisions_are_identical_across_injector_instances() {
        let plan = || {
            FaultPlan::seeded(77)
                .with_window(t(0), t(1_000), FaultKind::Drop { prob: 0.3 })
                .with_window(t(0), t(1_000), FaultKind::ConnReset { prob: 0.2 })
                .with_window(
                    t(0),
                    t(1_000),
                    FaultKind::ErrorResponse {
                        prob: 0.1,
                        status: 500,
                    },
                )
        };
        let a = FaultInjector::new(plan());
        let b = FaultInjector::new(plan());
        for id in 0..2_000 {
            assert_eq!(a.drops_message(t(500), id), b.drops_message(t(500), id));
            assert_eq!(
                a.resets_connection(t(500), id),
                b.resets_connection(t(500), id)
            );
            assert_eq!(a.error_response(t(500), id), b.error_response(t(500), id));
        }
        assert_eq!(a.counters().total(), b.counters().total());
    }

    #[test]
    fn error_responses_carry_the_configured_status() {
        let plan = FaultPlan::seeded(3).with_window(
            t(0),
            t(100),
            FaultKind::ErrorResponse {
                prob: 1.0,
                status: 503,
            },
        );
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.error_response(t(50), 9), Some(503));
        assert_eq!(inj.counters().errors(), 1);
    }

    #[test]
    fn clones_share_counters() {
        let plan =
            FaultPlan::seeded(1).with_window(t(0), t(100), FaultKind::SlowDown { extra_us: 10 });
        let a = FaultInjector::new(plan);
        let b = a.clone();
        a.slowdown(t(10));
        b.slowdown(t(20));
        assert_eq!(a.counters().slowdowns(), 2);
    }
}
