//! Declarative, scenario-level fault schedules.
//!
//! A [`FaultPlan`] is what an experiment spec carries: a master seed plus
//! a list of time windows, each activating one fault kind. Plans have a
//! JSON wire format (hand-rolled like the `/stats` document — this
//! workspace vendors no serde) so benches and tests can persist and
//! replay *identical* chaos runs; [`parse_plan`] is the exact inverse of
//! [`FaultPlan::render_json`], property-tested for round-tripping.

use std::time::Duration;

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Extra one-way link latency while the window is active.
    LatencySpike {
        /// Added latency in microseconds.
        extra_us: u64,
    },
    /// Packet/connection loss with a per-message probability.
    Drop {
        /// Drop probability in `[0, 1]`.
        prob: f64,
    },
    /// Total network partition: every message in the window is lost.
    Partition,
    /// Server-side slow-down: the handler stalls this long per request.
    SlowDown {
        /// Added handler latency in microseconds.
        extra_us: u64,
    },
    /// The server answers with an error status instead of serving.
    ErrorResponse {
        /// Injection probability in `[0, 1]`.
        prob: f64,
        /// HTTP status to answer with (500, 503, ...).
        status: u16,
    },
    /// The server resets the connection mid-response.
    ConnReset {
        /// Injection probability in `[0, 1]`.
        prob: f64,
    },
    /// A pod crash: the instance is down for the window and restarts at
    /// its end.
    Crash,
}

impl FaultKind {
    /// Stable lowercase label used on the wire.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::LatencySpike { .. } => "latency_spike",
            FaultKind::Drop { .. } => "drop",
            FaultKind::Partition => "partition",
            FaultKind::SlowDown { .. } => "slow_down",
            FaultKind::ErrorResponse { .. } => "error_response",
            FaultKind::ConnReset { .. } => "conn_reset",
            FaultKind::Crash => "crash",
        }
    }
}

/// A fault kind active during `[from, until)` of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultWindow {
    /// Window start, relative to run start (inclusive).
    pub from: Duration,
    /// Window end, relative to run start (exclusive).
    pub until: Duration,
    /// The fault active inside the window.
    pub kind: FaultKind,
}

impl FaultWindow {
    /// Whether the window covers elapsed time `t`.
    pub fn active_at(&self, t: Duration) -> bool {
        self.from <= t && t < self.until
    }
}

/// A declarative fault schedule for one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Master seed every probabilistic fault draw derives from.
    pub seed: u64,
    /// The scheduled fault windows.
    pub windows: Vec<FaultWindow>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::calm()
    }
}

impl FaultPlan {
    /// An empty plan: no faults, ever (the happy path).
    pub fn calm() -> FaultPlan {
        FaultPlan {
            seed: 0,
            windows: Vec::new(),
        }
    }

    /// An empty plan with a seed, ready for [`FaultPlan::with_window`].
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            windows: Vec::new(),
        }
    }

    /// Adds a fault window.
    pub fn with_window(mut self, from: Duration, until: Duration, kind: FaultKind) -> Self {
        self.windows.push(FaultWindow { from, until, kind });
        self
    }

    /// A shard-loss chaos plan: one [`FaultKind::Crash`] window over
    /// `[from, until)`. Applied to *every* pod of a single shard group
    /// it takes the whole catalog slice offline at once — no replica
    /// failover can mask it — which is exactly the scenario the
    /// scatter/gather router must degrade through rather than fail.
    pub fn shard_loss(seed: u64, from: Duration, until: Duration) -> FaultPlan {
        FaultPlan::seeded(seed).with_window(from, until, FaultKind::Crash)
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_calm(&self) -> bool {
        self.windows.is_empty()
    }

    /// The windows active at elapsed time `t`.
    pub fn active_at(&self, t: Duration) -> impl Iterator<Item = &FaultWindow> {
        self.windows.iter().filter(move |w| w.active_at(t))
    }

    /// Renders the JSON wire format (inverse of [`parse_plan`]).
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str(&format!("{{\n  \"seed\": {},\n  \"windows\": [", self.seed));
        for (i, w) in self.windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let extras = match w.kind {
                FaultKind::LatencySpike { extra_us } | FaultKind::SlowDown { extra_us } => {
                    format!(", \"extra_us\": {extra_us}")
                }
                FaultKind::Drop { prob } | FaultKind::ConnReset { prob } => {
                    format!(", \"prob\": {prob}")
                }
                FaultKind::ErrorResponse { prob, status } => {
                    format!(", \"prob\": {prob}, \"status\": {status}")
                }
                FaultKind::Partition | FaultKind::Crash => String::new(),
            };
            out.push_str(&format!(
                "\n    {{\"kind\": \"{}\", \"from_us\": {}, \"until_us\": {}{extras}}}",
                w.kind.name(),
                w.from.as_micros(),
                w.until.as_micros()
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Extracts `"key": <value>` from a flat JSON object fragment.
fn field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = obj.find(&needle)? + needle.len();
    let rest = obj[at..].trim_start();
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn num_field<T: std::str::FromStr>(obj: &str, key: &str) -> Option<T> {
    field(obj, key)?.parse().ok()
}

fn str_field(obj: &str, key: &str) -> Option<String> {
    Some(field(obj, key)?.trim_matches('"').to_string())
}

fn parse_kind(obj: &str) -> Option<FaultKind> {
    match str_field(obj, "kind")?.as_str() {
        "latency_spike" => Some(FaultKind::LatencySpike {
            extra_us: num_field(obj, "extra_us")?,
        }),
        "drop" => Some(FaultKind::Drop {
            prob: num_field(obj, "prob")?,
        }),
        "partition" => Some(FaultKind::Partition),
        "slow_down" => Some(FaultKind::SlowDown {
            extra_us: num_field(obj, "extra_us")?,
        }),
        "error_response" => Some(FaultKind::ErrorResponse {
            prob: num_field(obj, "prob")?,
            status: num_field(obj, "status")?,
        }),
        "conn_reset" => Some(FaultKind::ConnReset {
            prob: num_field(obj, "prob")?,
        }),
        "crash" => Some(FaultKind::Crash),
        _ => None,
    }
}

/// Parses a document produced by [`FaultPlan::render_json`].
///
/// Not a general JSON parser — the exact inverse of our own renderer,
/// tolerant of whitespace. Returns `None` for anything else.
pub fn parse_plan(body: &str) -> Option<FaultPlan> {
    let seed = num_field(body, "seed")?;
    let windows_at = body.find("\"windows\"")?;
    let mut windows = Vec::new();
    let mut rest = &body[windows_at..];
    while let Some(open) = rest.find('{') {
        let close = rest[open..].find('}')? + open;
        let obj = &rest[open..=close];
        windows.push(FaultWindow {
            from: Duration::from_micros(num_field(obj, "from_us")?),
            until: Duration::from_micros(num_field(obj, "until_us")?),
            kind: parse_kind(obj)?,
        });
        rest = &rest[close + 1..];
    }
    Some(FaultPlan { seed, windows })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FaultPlan {
        FaultPlan::seeded(99)
            .with_window(
                Duration::from_millis(100),
                Duration::from_millis(600),
                FaultKind::Drop { prob: 0.125 },
            )
            .with_window(
                Duration::ZERO,
                Duration::from_secs(1),
                FaultKind::LatencySpike { extra_us: 750 },
            )
            .with_window(
                Duration::from_secs(2),
                Duration::from_secs(3),
                FaultKind::ErrorResponse {
                    prob: 0.25,
                    status: 503,
                },
            )
            .with_window(
                Duration::from_secs(4),
                Duration::from_secs(5),
                FaultKind::Crash,
            )
    }

    #[test]
    fn json_roundtrips_exactly() {
        let plan = sample();
        let parsed = parse_plan(&plan.render_json()).unwrap();
        assert_eq!(parsed, plan);
    }

    #[test]
    fn calm_plan_roundtrips() {
        let plan = FaultPlan::calm();
        assert!(plan.is_calm());
        assert_eq!(parse_plan(&plan.render_json()).unwrap(), plan);
    }

    #[test]
    fn windows_are_half_open() {
        let w = FaultWindow {
            from: Duration::from_secs(1),
            until: Duration::from_secs(2),
            kind: FaultKind::Partition,
        };
        assert!(!w.active_at(Duration::from_millis(999)));
        assert!(w.active_at(Duration::from_secs(1)), "start is inclusive");
        assert!(w.active_at(Duration::from_millis(1999)));
        assert!(!w.active_at(Duration::from_secs(2)), "end is exclusive");
    }

    #[test]
    fn active_at_filters_by_time() {
        let plan = sample();
        assert_eq!(plan.active_at(Duration::from_millis(50)).count(), 1);
        assert_eq!(plan.active_at(Duration::from_millis(200)).count(), 2);
        assert_eq!(plan.active_at(Duration::from_secs(10)).count(), 0);
    }

    #[test]
    fn garbage_does_not_parse() {
        assert!(parse_plan("hello").is_none());
        assert!(parse_plan("{}").is_none());
        assert!(parse_plan("{\"seed\": 1}").is_none());
    }

    #[test]
    fn shard_loss_is_a_total_crash_window() {
        let plan = FaultPlan::shard_loss(7, Duration::from_secs(1), Duration::from_secs(3));
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.windows.len(), 1);
        assert_eq!(plan.windows[0].kind, FaultKind::Crash);
        assert_eq!(plan.active_at(Duration::from_secs(2)).count(), 1);
        assert_eq!(plan.active_at(Duration::from_secs(3)).count(), 0);
        // Chaos plans persist and replay like any other.
        assert_eq!(parse_plan(&plan.render_json()).unwrap(), plan);
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(FaultKind::Partition.name(), "partition");
        assert_eq!(FaultKind::Drop { prob: 0.5 }.name(), "drop");
        assert_eq!(FaultKind::Crash.name(), "crash");
    }
}
