//! # etude-faults
//!
//! Seedable, deterministic fault injection for the ETUDE serving stack.
//!
//! The paper's latency/throughput envelopes only mean something under
//! realistic operating conditions — overload, failures, retries — yet a
//! happy-path benchmark never exercises them. This crate is the shared
//! substrate the rest of the workspace injects chaos through:
//!
//! * [`plan`] — [`plan::FaultPlan`], a declarative, scenario-level fault
//!   schedule (latency spikes, drops, partitions, server slow-downs,
//!   injected error responses, mid-response connection resets, pod
//!   crashes) with a JSON wire format so benches can replay identical
//!   chaos runs,
//! * [`injector`] — [`injector::FaultInjector`], the runtime evaluator:
//!   every probabilistic draw is a pure function of the plan seed and
//!   the request correlation id, so two runs of the same seeded schedule
//!   make bit-identical decisions regardless of thread interleaving,
//! * [`backoff`] — [`backoff::RetryPolicy`] and [`backoff::Backoff`],
//!   bounded exponential backoff with jitter drawn from a seeded RNG,
//! * [`deadline`] — [`deadline::Deadline`], the single budget helper
//!   behind every retry loop and `recv_timeout` wait in the workspace
//!   (expiry exactly *at* the boundary, saturating remainders).
//!
//! Everything here is deterministic given a seed; the chaos/regression
//! test suites lean on that to assert bit-for-bit reproducibility.

pub mod backoff;
pub mod deadline;
pub mod injector;
pub mod plan;

pub use backoff::{Backoff, RetryPolicy};
pub use deadline::Deadline;
pub use injector::{FaultCounters, FaultInjector};
pub use plan::{parse_plan, FaultKind, FaultPlan, FaultWindow};
