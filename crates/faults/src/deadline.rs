//! The one deadline/budget helper behind every bounded wait.
//!
//! Before this existed, `rustserver.rs` and `batching.rs` each grew their
//! own ad-hoc `Instant::now() + constant` loops; unifying them makes the
//! boundary semantics (expiry exactly *at* the deadline, saturating
//! remainders, step clamping) testable in one place.

use std::time::{Duration, Instant};

/// An absolute point in time a bounded operation must finish by.
///
/// Semantics chosen once, used everywhere:
/// * a deadline is **expired exactly at its boundary** (`now >= at`),
/// * [`Deadline::remaining`] saturates to zero, never panics,
/// * [`Deadline::clamp`] bounds a polling step so a sleep can never
///   overshoot the budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Deadline {
        Deadline::at(Instant::now() + budget)
    }

    /// A deadline at an absolute instant.
    pub fn at(at: Instant) -> Deadline {
        Deadline { at }
    }

    /// The absolute instant of the deadline.
    pub fn instant(&self) -> Instant {
        self.at
    }

    /// Whether the deadline has passed. The boundary itself counts as
    /// expired: a wait with a zero budget never spins.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left before expiry, saturating to zero.
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }

    /// Clamps a polling/backoff step to the remaining budget, so the
    /// caller can sleep `step` at a time without ever overshooting.
    pub fn clamp(&self, step: Duration) -> Duration {
        step.min(self.remaining())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_counts_as_expired() {
        // Expiry-at-boundary: a deadline at `now` (or any past instant)
        // is already expired and leaves no remaining budget.
        let d = Deadline::at(Instant::now());
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
        let zero = Deadline::after(Duration::ZERO);
        assert!(zero.expired());
    }

    #[test]
    fn future_deadlines_report_remaining_budget() {
        let d = Deadline::after(Duration::from_secs(60));
        assert!(!d.expired());
        let rem = d.remaining();
        assert!(rem > Duration::from_secs(59));
        assert!(rem <= Duration::from_secs(60));
    }

    #[test]
    fn remaining_saturates_after_expiry() {
        let d = Deadline::at(Instant::now() - Duration::from_millis(5));
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
        assert_eq!(d.clamp(Duration::from_secs(1)), Duration::ZERO);
    }

    #[test]
    fn clamp_bounds_steps_by_the_budget() {
        let d = Deadline::after(Duration::from_secs(10));
        assert_eq!(d.clamp(Duration::from_millis(1)), Duration::from_millis(1));
        assert!(d.clamp(Duration::from_secs(100)) <= Duration::from_secs(10));
    }

    #[test]
    fn expiry_flips_across_the_boundary() {
        let d = Deadline::after(Duration::from_millis(10));
        assert!(!d.expired());
        std::thread::sleep(Duration::from_millis(12));
        assert!(d.expired());
    }
}
