//! Property tests for the fault layer: the retry-schedule invariants the
//! resilient client depends on, and the `FaultPlan` wire format.
//!
//! These are the claims the chaos tests build on — if any of them broke,
//! "deterministic replay" and "never exceed the deadline budget" would be
//! silently false, so they are checked over randomized policies rather
//! than a handful of examples.

use etude_faults::{parse_plan, Backoff, Deadline, FaultKind, FaultPlan, RetryPolicy};
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    /// Nominal (un-jittered) delays double, so they are monotone
    /// non-decreasing in the attempt number — and never exceed the cap.
    #[test]
    fn nominal_delays_are_monotone_and_capped(
        base_us in 0u64..100_000,
        cap_us in 0u64..200_000,
        attempts in 1u32..80,
    ) {
        let policy = RetryPolicy {
            base: Duration::from_micros(base_us),
            cap: Duration::from_micros(cap_us),
            max_retries: attempts,
            jitter: 0.0,
        };
        let mut prev = Duration::ZERO;
        for attempt in 0..attempts {
            let d = policy.nominal_delay(attempt);
            prop_assert!(d >= prev, "attempt {attempt}: {d:?} < {prev:?}");
            prop_assert!(d <= policy.cap, "attempt {attempt}: {d:?} above cap");
            prev = d;
        }
    }

    /// Every jittered delay lands in `[nominal * (1 - jitter), nominal]`
    /// (up to 1 ns of float rounding), and the schedule spends exactly
    /// `max_retries` attempts before refusing.
    #[test]
    fn jittered_delays_stay_within_bounds(
        seed in any::<u64>(),
        base_us in 1u64..50_000,
        cap_mult in 1u32..64,
        jitter in 0.0f64..=1.0,
        retries in 1u32..40,
    ) {
        let policy = RetryPolicy {
            base: Duration::from_micros(base_us),
            cap: Duration::from_micros(base_us) * cap_mult,
            max_retries: retries,
            jitter,
        };
        let mut backoff = Backoff::new(policy.clone(), seed);
        let slop = Duration::from_nanos(1);
        let mut attempt = 0u32;
        while let Some(d) = backoff.next_delay() {
            let nominal = policy.nominal_delay(attempt);
            let floor = Duration::from_secs_f64(nominal.as_secs_f64() * (1.0 - jitter));
            prop_assert!(d <= nominal + slop, "attempt {attempt}: {d:?} > {nominal:?}");
            prop_assert!(d + slop >= floor, "attempt {attempt}: {d:?} < {floor:?}");
            attempt += 1;
        }
        prop_assert_eq!(attempt, retries);
        prop_assert_eq!(backoff.attempts(), retries);
    }

    /// The retry-storm floor: no seed, jitter fraction, or attempt
    /// number may ever produce a delay under half its nominal — in
    /// particular the *first* retry always waits at least `base / 2`,
    /// so a fleet of clients hitting the same overloaded backend can
    /// never re-arrive in the same instant they were refused.
    #[test]
    fn jittered_delays_never_drop_below_half_nominal(
        seed in any::<u64>(),
        base_us in 1u64..50_000,
        cap_mult in 1u32..64,
        jitter in 0.0f64..=1.0,
        retries in 1u32..40,
    ) {
        let policy = RetryPolicy {
            base: Duration::from_micros(base_us),
            cap: Duration::from_micros(base_us) * cap_mult,
            max_retries: retries,
            jitter,
        };
        let mut backoff = Backoff::new(policy.clone(), seed);
        let slop = Duration::from_nanos(1);
        let mut attempt = 0u32;
        while let Some(d) = backoff.next_delay() {
            let floor = policy.nominal_delay(attempt) / 2;
            prop_assert!(d + slop >= floor, "attempt {attempt}: {d:?} < {floor:?}");
            if attempt == 0 {
                prop_assert!(
                    d + slop >= policy.base / 2,
                    "first retry {d:?} below base/2 = {:?}",
                    policy.base / 2
                );
            }
            attempt += 1;
        }
    }

    /// Two backoffs with the same (policy, seed) produce bit-identical
    /// schedules; a different seed diverges somewhere (with jitter on and
    /// enough retries, a full-schedule collision is astronomically
    /// unlikely — and would be caught here if the RNG ignored its seed).
    #[test]
    fn schedules_are_pure_functions_of_policy_and_seed(
        seed in any::<u64>(),
        base_us in 100u64..10_000,
        retries in 4u32..20,
    ) {
        let policy = RetryPolicy {
            base: Duration::from_micros(base_us),
            cap: Duration::from_micros(base_us) * 256,
            max_retries: retries,
            jitter: 0.5,
        };
        let schedule = |s: u64| -> Vec<Duration> {
            let mut b = Backoff::new(policy.clone(), s);
            std::iter::from_fn(|| b.next_delay()).collect()
        };
        prop_assert_eq!(schedule(seed), schedule(seed));
        prop_assert_ne!(schedule(seed), schedule(seed ^ 0x9e3779b97f4a7c15));
    }
}

proptest! {
    // Fewer cases: this property sleeps for real (budgets are a few ms).
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sleeping every delay handed out by `next_delay_within` keeps the
    /// *total* time spent backing off inside the deadline budget, no
    /// matter how generous the policy is.
    #[test]
    fn total_retry_sleep_never_exceeds_the_budget(
        seed in any::<u64>(),
        budget_ms in 1u64..15,
        base_us in 100u64..5_000,
        retries in 1u32..10,
    ) {
        let policy = RetryPolicy {
            base: Duration::from_micros(base_us),
            cap: Duration::from_micros(base_us) * 8,
            max_retries: retries,
            jitter: 0.5,
        };
        let budget = Duration::from_millis(budget_ms);
        let deadline = Deadline::after(budget);
        let mut backoff = Backoff::new(policy, seed);
        let mut total = Duration::ZERO;
        while let Some(d) = backoff.next_delay_within(&deadline) {
            total += d;
            std::thread::sleep(d);
        }
        prop_assert!(
            total <= budget,
            "slept {total:?} against a budget of {budget:?}"
        );
    }
}

fn kind_strategy() -> impl Strategy<Value = FaultKind> {
    prop_oneof![
        (0u64..1_000_000).prop_map(|extra_us| FaultKind::LatencySpike { extra_us }),
        (0.0f64..=1.0).prop_map(|prob| FaultKind::Drop { prob }),
        Just(FaultKind::Partition),
        (0u64..1_000_000).prop_map(|extra_us| FaultKind::SlowDown { extra_us }),
        ((0.0f64..=1.0), 100u16..600)
            .prop_map(|(prob, status)| FaultKind::ErrorResponse { prob, status }),
        (0.0f64..=1.0).prop_map(|prob| FaultKind::ConnReset { prob }),
        Just(FaultKind::Crash),
    ]
}

proptest! {
    /// `parse_plan` is the exact inverse of `render_json` for every plan
    /// the builder can construct — seeds, window bounds, every fault kind
    /// and its parameters (float probabilities included: `f64::Display`
    /// is round-trip precise).
    #[test]
    fn fault_plans_roundtrip_through_json(
        seed in any::<u64>(),
        windows in proptest::collection::vec(
            (0u64..10_000_000, 0u64..10_000_000, kind_strategy()),
            0..6,
        ),
    ) {
        let plan = windows
            .into_iter()
            .fold(FaultPlan::seeded(seed), |plan, (from, until, kind)| {
                plan.with_window(
                    Duration::from_micros(from),
                    Duration::from_micros(until),
                    kind,
                )
            });
        let parsed = parse_plan(&plan.render_json());
        prop_assert_eq!(parsed, Some(plan));
    }
}
