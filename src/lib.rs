//! Facade crate re-exporting the full ETUDE reproduction workspace.
pub use etude_cluster as cluster;
pub use etude_control as control;
pub use etude_core as core;
pub use etude_faults as faults;
pub use etude_loadgen as loadgen;
pub use etude_metrics as metrics;
pub use etude_models as models;
pub use etude_obs as obs;
pub use etude_serve as serve;
pub use etude_simnet as simnet;
pub use etude_tensor as tensor;
pub use etude_workload as workload;
