//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives and strips lock poisoning, matching the
//! `parking_lot` API the workspace uses: `lock()`/`read()`/`write()`
//! return guards directly instead of `Result`s.

/// A mutual-exclusion lock whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning from panicked holders.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value.
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

/// A reader-writer lock whose accessors never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }
}
