//! Offline stand-in for the `bytes` crate.
//!
//! Provides `Bytes` (cheaply clonable immutable buffer) and `BytesMut`
//! (growable buffer with `split_to`/`freeze`) covering the API surface
//! the HTTP layer uses. `Bytes` shares its backing store via `Arc` so
//! response bodies clone without copying, like the real crate.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// An immutable, cheaply clonable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.into() }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "b\"{}\"",
            String::from_utf8_lossy(&self.data).escape_debug()
        )
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.data[..] == *other
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(v: BytesMut) -> Bytes {
        v.freeze()
    }
}

/// A growable byte buffer supporting prefix splitting.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Appends `extend` to the buffer.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Clears the buffer, keeping capacity.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Removes and returns the first `at` bytes.
    ///
    /// Panics when `at > len`, matching the real crate.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.data.len(), "split_to out of bounds");
        let tail = self.data.split_off(at);
        let head = std::mem::replace(&mut self.data, tail);
        BytesMut { data: head }
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> BytesMut {
        BytesMut { data: v.to_vec() }
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "b\"{}\"",
            String::from_utf8_lossy(&self.data).escape_debug()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_to_removes_the_prefix() {
        let mut buf = BytesMut::from(&b"HEADbody"[..]);
        let head = buf.split_to(4);
        assert_eq!(&head[..], b"HEAD");
        assert_eq!(&buf[..], b"body");
    }

    #[test]
    fn freeze_preserves_contents() {
        let mut buf = BytesMut::with_capacity(8);
        buf.extend_from_slice(b"hello");
        let frozen = buf.freeze();
        assert_eq!(&frozen[..], b"hello");
        let clone = frozen.clone();
        assert_eq!(frozen, clone);
    }

    #[test]
    fn conversions_cover_common_sources() {
        assert_eq!(&Bytes::from("abc")[..], b"abc");
        assert_eq!(&Bytes::from(String::from("abc"))[..], b"abc");
        assert_eq!(&Bytes::from(vec![1u8, 2])[..], &[1, 2]);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    #[should_panic(expected = "split_to out of bounds")]
    fn split_past_the_end_panics() {
        let mut buf = BytesMut::from(&b"ab"[..]);
        let _ = buf.split_to(3);
    }
}
