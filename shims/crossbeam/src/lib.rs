//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the `channel` module the workspace uses: clonable MPMC
//! [`channel::Sender`]/[`channel::Receiver`] pairs from
//! [`channel::bounded`] and [`channel::unbounded`], with blocking,
//! non-blocking and timed receives and disconnect semantics matching
//! crossbeam (receives fail once all senders are gone *and* the queue is
//! drained; sends fail once all receivers are gone).

pub mod channel {
    //! MPMC channels on a `Mutex<VecDeque>` + two `Condvar`s.

    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] on a drained, closed channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity; the message is handed back.
        Full(T),
        /// Every receiver has been dropped; the message is handed back.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the timeout.
        Timeout,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        /// `usize::MAX` for unbounded channels.
        capacity: usize,
        not_empty: Condvar,
        not_full: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of a channel. Clonable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Clonable.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates a channel holding at most `cap` queued messages.
    ///
    /// `bounded(0)` is treated as a capacity-1 channel rather than a
    /// true rendezvous channel; the workspace only uses zero-capacity
    /// channels as immediately disconnected placeholders.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(cap.max(1))
    }

    /// Creates a channel with no capacity limit.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(usize::MAX)
    }

    fn with_capacity<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            match self.queue.lock() {
                Ok(g) => g,
                Err(poison) => poison.into_inner(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while the channel is full. Fails only
        /// when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let shared = &*self.shared;
            let mut queue = shared.lock();
            loop {
                if shared.receivers.load(Ordering::Acquire) == 0 {
                    return Err(SendError(value));
                }
                if queue.len() < shared.capacity {
                    queue.push_back(value);
                    drop(queue);
                    shared.not_empty.notify_one();
                    return Ok(());
                }
                queue = match shared.not_full.wait(queue) {
                    Ok(g) => g,
                    Err(poison) => poison.into_inner(),
                };
            }
        }

        /// Sends `value` without blocking: fails with [`TrySendError::Full`]
        /// when the channel is at capacity instead of waiting for space.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let shared = &*self.shared;
            let mut queue = shared.lock();
            if shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if queue.len() >= shared.capacity {
                return Err(TrySendError::Full(value));
            }
            queue.push_back(value);
            drop(queue);
            shared.not_empty.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.lock().len()
        }

        /// Whether no messages are currently queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one arrives or every
        /// sender is dropped and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let shared = &*self.shared;
            let mut queue = shared.lock();
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    shared.not_full.notify_one();
                    return Ok(value);
                }
                if shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = match shared.not_empty.wait(queue) {
                    Ok(g) => g,
                    Err(poison) => poison.into_inner(),
                };
            }
        }

        /// Receives a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let shared = &*self.shared;
            let mut queue = shared.lock();
            if let Some(value) = queue.pop_front() {
                drop(queue);
                shared.not_full.notify_one();
                return Ok(value);
            }
            if shared.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receives a message, giving up after `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let shared = &*self.shared;
            let deadline = Instant::now() + timeout;
            let mut queue = shared.lock();
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    shared.not_full.notify_one();
                    return Ok(value);
                }
                if shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, result) = match shared.not_empty.wait_timeout(queue, remaining) {
                    Ok(pair) => pair,
                    Err(poison) => {
                        let pair = poison.into_inner();
                        (pair.0, pair.1)
                    }
                };
                queue = guard;
                if result.timed_out() && queue.is_empty() {
                    if shared.senders.load(Ordering::Acquire) == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.lock().len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.shared.lock().is_empty()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Wake receivers blocked on an empty queue so they see
                // the disconnect.
                let _guard = self.shared.lock();
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Wake senders blocked on a full queue so they see the
                // disconnect.
                let _guard = self.shared.lock();
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn round_trips_in_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_fails_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_fails_after_all_receivers_drop() {
            let (tx, rx) = bounded(4);
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn try_recv_distinguishes_empty_from_closed() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u32>();
            let err = rx.recv_timeout(Duration::from_millis(10));
            assert_eq!(err, Err(RecvTimeoutError::Timeout));
        }

        #[test]
        fn try_send_reports_full_and_disconnected() {
            let (tx, rx) = bounded(1);
            assert_eq!(tx.try_send(1), Ok(()));
            assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(tx.try_send(3), Ok(()));
            drop(rx);
            assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
        }

        #[test]
        fn bounded_send_blocks_until_a_recv_frees_space() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = std::thread::spawn(move || tx.send(2).is_ok());
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            assert!(t.join().unwrap());
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn mpmc_delivery_covers_all_messages() {
            let (tx, rx) = bounded(8);
            let mut consumers = Vec::new();
            for _ in 0..4 {
                let rx = rx.clone();
                consumers.push(std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                }));
            }
            drop(rx);
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut all: Vec<u32> = consumers
                .into_iter()
                .flat_map(|c| c.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
        }
    }
}
