//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no access to crates.io, so
//! the external `rand` dependency is replaced by this path crate. It
//! implements exactly the API surface the workspace uses — `SmallRng`
//! (a xoshiro256++ generator seeded via SplitMix64), `SeedableRng::
//! seed_from_u64`, and the `Rng` extension methods `gen`, `gen_range`,
//! `gen_bool` and `fill` — with the same determinism guarantees (same
//! seed, same stream). Value streams are NOT identical to the real
//! `rand` crate; workspace tests are statistical or self-consistent and
//! do not depend on exact upstream streams.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: a source of uniformly distributed bits.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, deterministic across runs.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from their "standard" range:
/// `[0, 1)` for floats, the full domain for integers and `bool`.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as StandardSample>::standard_sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as StandardSample>::standard_sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing extension methods, blanket-implemented for every core
/// generator exactly like the real crate.
pub trait Rng: RngCore {
    /// Draws a value from the type's standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as StandardSample>::standard_sample(self) < p
    }

    /// Fills `dest` with standard samples.
    fn fill<T: StandardSample>(&mut self, dest: &mut [T]) {
        for slot in dest {
            *slot = T::standard_sample(self);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++), mirroring
    /// the role of `rand::rngs::SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = Self::splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 2);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f32 = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i: u64 = rng.gen_range(5u64..=5);
            assert_eq!(i, 5);
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
