//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API this workspace's benches
//! use — `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, `Throughput`, `BenchmarkId`,
//! `black_box` and the `criterion_group!`/`criterion_main!` macros — as
//! a compact wall-clock harness: short warm-up to size iteration
//! batches, then a fixed number of timed samples reported as
//! `[min median max]`. Statistical machinery (outlier analysis, HTML
//! reports) is intentionally absent; timings are real.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group, rendered as `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter(param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Work-per-iteration hint used to report a rate next to the time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Measures one benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine`, storing per-iteration samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until ~10 ms have elapsed to estimate the
        // per-iteration cost (at least one run).
        let warmup_budget = Duration::from_millis(10);
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        loop {
            black_box(routine());
            warmup_iters += 1;
            if warmup_start.elapsed() >= warmup_budget {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;

        // Size each sample so all samples fit the measurement budget.
        let samples = self.sample_size.max(2);
        let budget = self.measurement_time.as_secs_f64() / samples as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        self.samples.clear();
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed / iters_per_sample as u32);
        }
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{label:<50} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let min = sorted[0];
        let med = sorted[sorted.len() / 2];
        let max = sorted[sorted.len() - 1];
        let mut line = format!(
            "{label:<50} time: [{} {} {}]",
            fmt_duration(min),
            fmt_duration(med),
            fmt_duration(max)
        );
        if let Some(t) = throughput {
            let secs = med.as_secs_f64().max(1e-12);
            match t {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  thrpt: {:.3} Melem/s", n as f64 / secs / 1e6));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!(
                        "  thrpt: {:.3} MiB/s",
                        n as f64 / secs / (1 << 20) as f64
                    ));
                }
            }
        }
        println!("{line}");
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Benchmark registry entry point, mirroring `criterion::Criterion`.
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // cargo bench passes its own flags (`--bench`, the bench name);
        // the first free-standing argument is a substring filter, like
        // real criterion.
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if !arg.starts_with('-') {
                filter = Some(arg);
                break;
            }
        }
        Criterion {
            filter,
            default_sample_size: 10,
            default_measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Applies command-line configuration (already done in `default`).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            measurement_time: None,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Criterion {
        let sample_size = self.default_sample_size;
        let measurement_time = self.default_measurement_time;
        let label = id.into().id;
        self.run_one(&label, sample_size, measurement_time, None, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &self,
        label: &str,
        sample_size: usize,
        measurement_time: Duration,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size,
            measurement_time,
        };
        f(&mut bencher);
        bencher.report(label, throughput);
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = Some(t);
        self
    }

    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        self.criterion.run_one(
            &label,
            self.sample_size
                .unwrap_or(self.criterion.default_sample_size),
            self.measurement_time
                .unwrap_or(self.criterion.default_measurement_time),
            self.throughput,
            f,
        );
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (reports are printed as benchmarks run).
    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion {
            filter: None,
            default_sample_size: 3,
            default_measurement_time: Duration::from_millis(5),
        };
        let mut ran = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut c = Criterion {
            filter: Some("other".into()),
            default_sample_size: 3,
            default_measurement_time: Duration::from_millis(5),
        };
        let mut ran = false;
        let mut group = c.benchmark_group("grp");
        group.bench_function("this_one", |b| {
            ran = true;
            b.iter(|| black_box(1));
        });
        group.finish();
        assert!(!ran);
    }

    #[test]
    fn benchmark_ids_render_as_name_slash_param() {
        assert_eq!(BenchmarkId::new("dot", 1024).id, "dot/1024");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }

    #[test]
    fn durations_format_with_sensible_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
