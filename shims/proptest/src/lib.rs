//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of proptest this workspace uses: the
//! `proptest! { #![proptest_config(...)] #[test] fn case(x in strategy) {...} }`
//! macro, numeric range strategies, `proptest::collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!` macros. Cases are
//! generated from a deterministic per-test seed (FNV of the test name ×
//! case index), so failures reproduce exactly on re-run. Shrinking is
//! not implemented: a failing case panics with its values via the
//! assertion message.

pub mod test_runner {
    //! Test configuration and the deterministic case generator.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of randomised cases to run per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// Deterministic SplitMix64 generator driving value strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator for one named test case.
        pub fn for_case(test_name: &str, case: u64) -> TestRng {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                state: hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Produces one random value per test case.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// A strategy that always yields a clone of a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * (rng.unit_f64() as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    lo + (hi - lo) * (rng.unit_f64() as $t)
                }
            }
        )*};
    }

    float_strategy!(f32, f64);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec()`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy generating `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span > 0 {
                    (rng.next_u64() % span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Single-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines deterministic randomised tests.
///
/// Accepts an optional `#![proptest_config(expr)]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $(
        #[test]
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let __config = $config;
            for __case in 0..__config.cases as u64 {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                $(
                    let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);
                )+
                // The body runs once per generated case; assertion
                // failures name the case for reproduction.
                let __run = || $body;
                __run();
            }
        }
    )*};
}

/// `assert!` that reports the failing property.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// `assert_eq!` for properties.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// `assert_ne!` for properties.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("bounds", 0);
        for _ in 0..500 {
            let v = (3usize..17).new_value(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f32..2.0).new_value(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_length_spec() {
        let mut rng = crate::test_runner::TestRng::for_case("lens", 1);
        let fixed = crate::collection::vec(0u32..10, 5).new_value(&mut rng);
        assert_eq!(fixed.len(), 5);
        for _ in 0..100 {
            let ranged = crate::collection::vec(0u32..10, 1..4).new_value(&mut rng);
            assert!((1..4).contains(&ranged.len()));
        }
    }

    #[test]
    fn same_case_reproduces_identical_values() {
        let mut a = crate::test_runner::TestRng::for_case("repro", 7);
        let mut b = crate::test_runner::TestRng::for_case("repro", 7);
        let va = crate::collection::vec(0u64..1000, 10).new_value(&mut a);
        let vb = crate::collection::vec(0u64..1000, 10).new_value(&mut b);
        assert_eq!(va, vb);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_itself_runs_cases(x in 0u32..100, xs in crate::collection::vec(0i32..5, 1..6)) {
            prop_assert!(x < 100);
            prop_assert!(!xs.is_empty() && xs.len() < 6);
            prop_assert_eq!(xs.len(), xs.iter().filter(|v| **v < 5).count());
        }
    }
}
