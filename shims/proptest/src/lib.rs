//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of proptest this workspace uses: the
//! `proptest! { #![proptest_config(...)] #[test] fn case(x in strategy) {...} }`
//! macro, numeric range strategies, `any::<T>()` for integers,
//! `Strategy::prop_map`, tuple strategies, `prop_oneof!`,
//! `proptest::collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!` macros. Cases are
//! generated from a deterministic per-test seed (FNV of the test name ×
//! case index), so failures reproduce exactly on re-run. Shrinking is
//! not implemented: a failing case panics with its values via the
//! assertion message.

pub mod test_runner {
    //! Test configuration and the deterministic case generator.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of randomised cases to run per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// Deterministic SplitMix64 generator driving value strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator for one named test case.
        pub fn for_case(test_name: &str, case: u64) -> TestRng {
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                state: hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Produces one random value per test case.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (proptest's `prop_map`,
        /// without shrinking).
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { strategy: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        strategy: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.strategy.new_value(rng))
        }
    }

    /// Full-range strategy for a type, returned by [`any()`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    /// `any::<T>()`: every value of `T` is equally likely.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy,
    {
        Any(core::marker::PhantomData)
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (S0 0, S1 1)
        (S0 0, S1 1, S2 2)
        (S0 0, S1 1, S2 2, S3 3)
    }

    /// A boxed generator closure — one `prop_oneof!` alternative.
    pub type UnionArm<T> = Box<dyn Fn(&mut TestRng) -> T>;

    /// A uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<UnionArm<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given generators; must be non-empty.
        pub fn new(options: Vec<UnionArm<T>>) -> Union<T> {
            assert!(!options.is_empty(), "empty prop_oneof!");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let pick = (rng.next_u64() % self.options.len() as u64) as usize;
            (self.options[pick])(rng)
        }
    }

    /// A strategy that always yields a clone of a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * (rng.unit_f64() as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    lo + (hi - lo) * (rng.unit_f64() as $t)
                }
            }
        )*};
    }

    float_strategy!(f32, f64);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec()`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy generating `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span > 0 {
                    (rng.next_u64() % span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Single-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines deterministic randomised tests.
///
/// Accepts an optional `#![proptest_config(expr)]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $(
        $(#[doc = $doc:expr])*
        #[test]
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[doc = $doc])*
        #[test]
        fn $name() {
            let __config = $config;
            for __case in 0..__config.cases as u64 {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                $(
                    let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);
                )+
                // The body runs once per generated case; assertion
                // failures name the case for reproduction.
                let __run = || $body;
                __run();
            }
        }
    )*};
}

/// Uniform choice between strategies (real proptest also accepts
/// weighted arms; this shim supports the unweighted form only).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $({
                let __s = $strat;
                ::std::boxed::Box::new(
                    move |__rng: &mut $crate::test_runner::TestRng| {
                        $crate::strategy::Strategy::new_value(&__s, __rng)
                    },
                ) as ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
            }),+
        ])
    };
}

/// `assert!` that reports the failing property.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// `assert_eq!` for properties.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// `assert_ne!` for properties.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("bounds", 0);
        for _ in 0..500 {
            let v = (3usize..17).new_value(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f32..2.0).new_value(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_length_spec() {
        let mut rng = crate::test_runner::TestRng::for_case("lens", 1);
        let fixed = crate::collection::vec(0u32..10, 5).new_value(&mut rng);
        assert_eq!(fixed.len(), 5);
        for _ in 0..100 {
            let ranged = crate::collection::vec(0u32..10, 1..4).new_value(&mut rng);
            assert!((1..4).contains(&ranged.len()));
        }
    }

    #[test]
    fn same_case_reproduces_identical_values() {
        let mut a = crate::test_runner::TestRng::for_case("repro", 7);
        let mut b = crate::test_runner::TestRng::for_case("repro", 7);
        let va = crate::collection::vec(0u64..1000, 10).new_value(&mut a);
        let vb = crate::collection::vec(0u64..1000, 10).new_value(&mut b);
        assert_eq!(va, vb);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Doc comments inside the macro block are accepted.
        #[test]
        fn the_macro_itself_runs_cases(x in 0u32..100, xs in crate::collection::vec(0i32..5, 1..6)) {
            prop_assert!(x < 100);
            prop_assert!(!xs.is_empty() && xs.len() < 6);
            prop_assert_eq!(xs.len(), xs.iter().filter(|v| **v < 5).count());
        }

        #[test]
        fn combinators_compose(
            seed in any::<u64>(),
            pair in (0u32..10, (0.0f64..=1.0).prop_map(|p| p * 2.0)),
            label in prop_oneof![Just("a"), Just("b"), (0u32..5).prop_map(|_| "c")],
        ) {
            let _ = seed;
            prop_assert!(pair.0 < 10);
            prop_assert!((0.0..=2.0).contains(&pair.1));
            prop_assert!(["a", "b", "c"].contains(&label));
        }
    }
}
