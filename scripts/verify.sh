#!/usr/bin/env bash
# Full verification gate: build, tests, formatting, lints.
# Run from anywhere; operates on the workspace root.
# Pass --chaos to add the seeded fault-injection smoke stage.
# Pass --fleet to add the fleet observability smoke stage (tracing,
# fleet aggregation, SLO timeline).
# Pass --selfheal to add the control-plane smoke stage (autoscaler
# timeline, rolling-restart chaos acceptance, breaker/ejection props).
# Pass --simd to add the SIMD kernel-layer stage (backend equivalence
# property suite on both backends, fused-scan smoke bench).
# Pass --scatter to add the scatter/gather sharding stage (partial
# top-k merge proptests, router integration tests, shard-loss chaos
# acceptance, smoke bench).
# Pass --reactor to add the reactor/continuous-batching stage (protocol
# parity suite, batching equivalence proptests, saturation shed
# regression, smoke saturation bench).
# Pass --overload to add the overload-control stage (flash-crowd chaos
# acceptance + bit-identical replay, admission/ladder unit suites,
# smoke brownout-ladder sweep, bench_diff regression guard).
# The --profile stage (continuous profiler, reactor telemetry, tail
# forensics: reactor under load, /debug/profile + /debug/slow scrapes,
# loop utilization in (0,1], zero-allocation gates) runs as part of the
# default sequence; pass --profile to request it explicitly.
set -euo pipefail
cd "$(dirname "$0")/.."

CHAOS=0
FLEET=0
SELFHEAL=0
SIMD=0
SCATTER=0
REACTOR=0
OVERLOAD=0
PROFILE=1
for arg in "$@"; do
    case "$arg" in
        --chaos) CHAOS=1 ;;
        --fleet) FLEET=1 ;;
        --selfheal) SELFHEAL=1 ;;
        --simd) SIMD=1 ;;
        --scatter) SCATTER=1 ;;
        --reactor) REACTOR=1 ;;
        --overload) OVERLOAD=1 ;;
        --profile) PROFILE=1 ;;
        *) echo "unknown flag: $arg" >&2; exit 2 ;;
    esac
done

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> latency_breakdown --smoke (live observability loop)"
cargo run --release -q -p etude-bench --bin latency_breakdown -- --smoke

if [ "$CHAOS" = "1" ]; then
    echo "==> ablation_faults --smoke (seeded 2 s fault-injection run)"
    cargo run --release -q -p etude-bench --bin ablation_faults -- --smoke
    echo "==> chaos integration tests (live server + resilient client)"
    cargo test -q -p etude-loadgen --test chaos
fi

if [ "$FLEET" = "1" ]; then
    echo "==> fleet_timeline --smoke (SLO burn-rate timeline under chaos)"
    cargo run --release -q -p etude-bench --bin fleet_timeline -- --smoke
    echo "==> fleet aggregation tests (multi-pod /fleet over sockets)"
    cargo test -q -p etude-serve --test fleet
    echo "==> chaos tracing test (span trees + Chrome trace export)"
    cargo test -q -p etude-loadgen --test tracing
    echo "==> checking results/trace_chaos.json is a trace_event file"
    grep -q '"traceEvents"' results/trace_chaos.json
fi

if [ "$SIMD" = "1" ]; then
    echo "==> SIMD equivalence property suite (dispatched backend)"
    cargo test -q --release -p etude-tensor --test simd_equivalence
    echo "==> SIMD equivalence property suite (forced scalar backend)"
    ETUDE_SIMD=scalar cargo test -q --release -p etude-tensor --test simd_equivalence
    echo "==> parallel_mips --smoke (fused-scan cross-check bench)"
    cargo bench -q -p etude-bench --bench parallel_mips -- --smoke
fi

if [ "$SELFHEAL" = "1" ]; then
    echo "==> autoscale_timeline --smoke (SLO-driven autoscaler vs fixed fleet)"
    cargo run --release -q -p etude-bench --bin autoscale_timeline -- --smoke
    echo "==> rolling-restart chaos acceptance (zero client-visible failures)"
    cargo test -q -p etude-cluster --test selfheal
    echo "==> control-plane property tests (ejection floor, breaker transitions)"
    cargo test -q -p etude-control
    echo "==> checking results/BENCH_autoscale.json was produced"
    grep -q '"bench": "autoscale_timeline"' results/BENCH_autoscale.json
fi

if [ "$SCATTER" = "1" ]; then
    echo "==> partial top-k merge equivalence proptests"
    cargo test -q --release -p etude-tensor --test merge_equivalence
    echo "==> scatter/gather router integration tests (sockets, tracing)"
    cargo test -q -p etude-serve --test router
    echo "==> shard-loss chaos acceptance (zero client-visible failures)"
    cargo test -q -p etude-loadgen --test shard_chaos
    echo "==> scatter_gather --smoke (replicated vs sharded bench)"
    cargo run --release -q -p etude-bench --bin scatter_gather -- --smoke
    echo "==> checking results/BENCH_scatter_gather.json was produced"
    grep -q '"bench": "scatter_gather"' results/BENCH_scatter_gather.json
fi

if [ "$REACTOR" = "1" ]; then
    echo "==> reactor protocol parity suite (blocking vs reactor transcripts)"
    cargo test -q --release -p etude-serve --test reactor_protocol
    echo "==> continuous-batching equivalence proptests"
    cargo test -q --release -p etude-serve --test continuous_equivalence
    echo "==> saturation shed regression (deadline admission under overload)"
    cargo test -q --release -p etude-loadgen --test saturation
    echo "==> saturation --smoke (open-connection capacity bench)"
    cargo run --release -q -p etude-bench --bin saturation -- --smoke
    echo "==> checking results/BENCH_saturation.json was produced"
    grep -q '"bench": "saturation"' results/BENCH_saturation.json
fi

if [ "$OVERLOAD" = "1" ]; then
    echo "==> admission controller + brownout ladder unit suites"
    cargo test -q -p etude-control admission
    cargo test -q -p etude-serve overload
    echo "==> flash-crowd chaos acceptance (critical goodput, priority sheds, replay)"
    cargo test -q --release -p etude-loadgen --test overload
    echo "==> overload_brownout --smoke (off / admission / full-ladder sweep)"
    cargo run --release -q -p etude-bench --bin overload_brownout -- --smoke
    echo "==> checking results/BENCH_overload.json was produced"
    grep -q '"bench": "overload_brownout"' results/BENCH_overload.json
    echo "==> bench_diff (p99 regression guard vs committed results)"
    scripts/bench_diff.sh
fi

if [ "$PROFILE" = "1" ]; then
    echo "==> profiling & tail forensics (reactor under load: folded stacks name the fused kernel, loop utilization in (0,1], /debug/slow serves complete span trees as Chrome JSON)"
    cargo test -q --release -p etude-serve --test forensics
    echo "==> profiler + exemplar zero-steady-state-allocation gate"
    cargo test -q --release -p etude-obs --test zero_alloc_profile
fi

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q --workspace

if cargo fmt --version >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt --all -- --check
else
    echo "==> cargo fmt unavailable, skipping"
fi

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "==> cargo clippy unavailable, skipping"
fi

echo "verify: OK"
