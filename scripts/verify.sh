#!/usr/bin/env bash
# Full verification gate: build, tests, formatting, lints.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> latency_breakdown --smoke (live observability loop)"
cargo run --release -q -p etude-bench --bin latency_breakdown -- --smoke

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q --workspace

if cargo fmt --version >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt --all -- --check
else
    echo "==> cargo fmt unavailable, skipping"
fi

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "==> cargo clippy unavailable, skipping"
fi

echo "verify: OK"
