#!/usr/bin/env bash
# Bench regression guard: compare every working-tree results/BENCH_*.json
# against its committed (HEAD) baseline and fail on a p99 regression of
# more than 15% (override with BENCH_DIFF_TOLERANCE_PCT).
#
# Rules, in order, per file:
#   * not committed at HEAD            -> skipped (new bench, no baseline)
#   * byte-identical to HEAD           -> skipped (no fresh run to judge)
#   * "mode" differs (smoke vs full)   -> skipped (not comparable)
#   * p99 count differs                -> skipped (bench shape changed)
#   * any p99_us > baseline * (1+tol)  -> FAIL (with a 200us absolute
#     floor so micro-stage jitter on single-digit p99s cannot trip it)
#
# Exit 0 when nothing regressed, 1 otherwise. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

TOL_PCT="${BENCH_DIFF_TOLERANCE_PCT:-15}"
FLOOR_US=200
FAILED=0
CHECKED=0

extract_p99() {
    # Ordered p99_us values, one per line.
    grep -o '"p99_us": *[0-9][0-9]*' | grep -o '[0-9][0-9]*$' || true
}

extract_mode() {
    grep -o '"mode": *"[a-z]*"' | head -1 | grep -o '"[a-z]*"$' || true
}

for file in results/BENCH_*.json; do
    [ -e "$file" ] || continue
    if ! base=$(git show "HEAD:$file" 2>/dev/null); then
        echo "bench_diff: $file — no committed baseline, skipping"
        continue
    fi
    if printf '%s' "$base" | cmp -s - "$file"; then
        continue # unchanged since HEAD: nothing new to judge
    fi
    base_mode=$(printf '%s' "$base" | extract_mode)
    cur_mode=$(extract_mode <"$file")
    if [ "$base_mode" != "$cur_mode" ]; then
        echo "bench_diff: $file — mode $base_mode -> $cur_mode, not comparable, skipping"
        continue
    fi
    base_p99=$(printf '%s' "$base" | extract_p99)
    cur_p99=$(extract_p99 <"$file")
    if [ -z "$base_p99" ] && [ -z "$cur_p99" ]; then
        continue # bench carries no p99s: out of scope
    fi
    if [ "$(printf '%s\n' "$base_p99" | wc -l)" != "$(printf '%s\n' "$cur_p99" | wc -l)" ]; then
        echo "bench_diff: $file — p99 count changed, bench shape differs, skipping"
        continue
    fi
    CHECKED=$((CHECKED + 1))
    # Pairwise compare in emission order.
    verdict=$(paste <(printf '%s\n' "$base_p99") <(printf '%s\n' "$cur_p99") |
        awk -v tol="$TOL_PCT" -v floor="$FLOOR_US" '
            {
                limit = $1 * (1 + tol / 100);
                if ($2 > limit && $2 > $1 + floor) {
                    printf "  p99 #%d regressed: %dus -> %dus (>%s%% over baseline)\n",
                           NR, $1, $2, tol;
                    bad = 1;
                }
            }
            END { exit bad ? 1 : 0 }
        ') && status=0 || status=1
    if [ "$status" = "1" ]; then
        echo "bench_diff: FAIL $file"
        printf '%s\n' "$verdict"
        FAILED=1
    else
        echo "bench_diff: OK   $file (within ${TOL_PCT}% of baseline)"
    fi
done

if [ "$FAILED" = "1" ]; then
    echo "bench_diff: p99 regression detected"
    exit 1
fi
echo "bench_diff: no regressions ($CHECKED file(s) compared)"
